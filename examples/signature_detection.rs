//! The LUCID Signature Detection pipeline (paper §II-B) end to end at reduced scale.
//!
//! Fifteen VCF samples (three at this scale) are VEP-annotated concurrently, enriched
//! against pathway databases, and finally compared through an LLM service that generates
//! hypotheses about radiation-induced mutational signatures.
//!
//! Run with: `cargo run --example signature_detection`

use std::time::Duration;

use hpcml::prelude::*;

fn main() {
    let session = Session::builder("signature-detection")
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(5000.0))
        .seed(13)
        .build()
        .expect("session");
    session
        .submit_pilot(
            PilotDescription::new(PlatformId::Delta)
                .nodes(4)
                .runtime_secs(7200.0),
        )
        .expect("pilot");

    let mut config = SignatureDetectionConfig::test_scale();
    config.samples = 5;
    config.llm_model = "llama-8b".to_string();
    config.llm_requests_per_sample = 3;

    let pipeline = signature_detection_pipeline(&config);
    println!(
        "running pipeline '{}' over {} samples ({} tasks total)",
        pipeline.name,
        config.samples,
        pipeline.total_tasks()
    );

    let report = PipelineRunner::new(&session)
        .stage_timeout(Duration::from_secs(300))
        .run(&pipeline)
        .expect("pipeline run");
    print!("{}", report.render());

    let metrics = session.metrics();
    println!("LLM comparison requests: {}", metrics.response_count());
    println!("inference time: {}", metrics.inference_summary().report());
    session.close();
}
