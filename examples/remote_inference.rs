//! Hybrid local/remote deployment: the same client tasks use a service on the local
//! pilot and a service hosted on the remote R3 cloud platform, side by side — the
//! scenario behind the paper's Figs. 5 and 6.
//!
//! Run with: `cargo run --example remote_inference`

use std::time::Duration;

use hpcml::prelude::*;
use hpcml::serving::ModelSpec;

fn main() {
    let session = Session::builder("remote-inference")
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(1000.0))
        .seed(23)
        .build()
        .expect("session");
    session
        .submit_pilot(
            PilotDescription::new(PlatformId::Delta)
                .nodes(2)
                .runtime_secs(3600.0),
        )
        .expect("pilot");

    // One NOOP service on the local pilot, one on the remote cloud host.
    let local = session
        .submit_service(
            ServiceDescription::new("noop-local")
                .model(ModelSpec::noop())
                .cores(1),
        )
        .expect("local service");
    let remote = session
        .submit_service(
            ServiceDescription::new("noop-remote")
                .model(ModelSpec::noop())
                .remote(PlatformId::R3Cloud),
        )
        .expect("remote service");
    local.wait_ready().expect("local ready");
    remote.wait_ready().expect("remote ready");

    // Two clients, one per service, measuring the response-time decomposition.
    for target in ["noop-local", "noop-remote"] {
        let task = session
            .submit_task(
                TaskDescription::new(format!("client-{target}"))
                    .kind(TaskKind::inference_client(target, 64))
                    .cores(1),
            )
            .expect("client task");
        task.wait_done_timeout(Duration::from_secs(120))
            .expect("client done");
    }

    let metrics = session.metrics();
    println!(
        "response-time decomposition over {} requests:",
        metrics.response_count()
    );
    for (component, summary) in metrics.response_summaries() {
        println!(
            "  {component:<14} mean={:.6}s p95={:.6}s",
            summary.mean, summary.p95
        );
    }
    println!();
    println!(
        "communication dominates for NOOP calls, and the remote half of the requests pushes the\n\
         communication mean well above the intra-platform latency — while inference stays ~0."
    );
    session.close();
}
