//! The LUCID Uncertainty Quantification pipeline (paper §II-C) end to end at reduced
//! scale: a multi-node MPI ensemble-simulation stage (DeepDriveMD-style hybrid
//! MD-then-ML), a three-level hierarchy of GPU fine-tuning tasks (models × UQ methods
//! × seeds), and service-assisted post-processing.
//!
//! Run with: `cargo run --example uq_pipeline`

use std::time::Duration;

use hpcml::prelude::*;

fn main() {
    let session = Session::builder("uq")
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(5000.0))
        .seed(17)
        // Serve up to 4 queued placements out of order so single-node fine-tuning
        // tasks keep flowing while a 2-node MPI gang waits for idle nodes.
        .scheduler_lookahead(4)
        .build()
        .expect("session");
    session
        .submit_pilot(
            PilotDescription::new(PlatformId::Delta)
                .nodes(4)
                .runtime_secs(7200.0),
        )
        .expect("pilot");

    let mut config = UqConfig::test_scale();
    config.methods = vec![
        "bayesian-lora".to_string(),
        "lora-ensemble".to_string(),
        "mc-dropout".to_string(),
    ];
    config.seeds = 3;
    config.models = vec!["llama-8b".to_string(), "mistral-7b".to_string()];
    config.finetune_secs = 20.0;
    // Three MPI ensemble members, each an atomic gang of 2 whole Delta nodes: with a
    // 4-node pilot, two gangs simulate concurrently and the third follows.
    config = config.with_mpi_simulation(3, 2, 15.0);
    println!(
        "UQ pipeline: {} MPI ensemble members ({}x{} ranks each) + {} GPU fine-tuning tasks",
        config.mpi_sim_tasks,
        config.mpi_sim_nodes,
        config.mpi_ranks_per_node,
        config.total_uq_tasks()
    );

    let pipeline = uncertainty_quantification_pipeline(&config);
    let report = PipelineRunner::new(&session)
        .stage_timeout(Duration::from_secs(600))
        .run(&pipeline)
        .expect("pipeline run");
    print!("{}", report.render());

    let metrics = session.metrics();
    let gang_waits = metrics.scalar_values("task.gang.placement_wait_secs");
    println!(
        "MPI gang placements: {} (spanning {} nodes total)",
        gang_waits.len(),
        metrics.scalar_values("task.gang.nodes").iter().sum::<f64>() as usize
    );
    println!("post-processing LLM requests: {}", metrics.response_count());
    session.close();
}
