//! The LUCID Uncertainty Quantification pipeline (paper §II-C) end to end at reduced
//! scale: a three-level hierarchy of GPU fine-tuning tasks (models × UQ methods ×
//! seeds) followed by service-assisted post-processing.
//!
//! Run with: `cargo run --example uq_pipeline`

use std::time::Duration;

use hpcml::prelude::*;

fn main() {
    let session = Session::builder("uq")
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(5000.0))
        .seed(17)
        .build()
        .expect("session");
    session
        .submit_pilot(
            PilotDescription::new(PlatformId::Delta)
                .nodes(4)
                .runtime_secs(7200.0),
        )
        .expect("pilot");

    let mut config = UqConfig::test_scale();
    config.methods = vec![
        "bayesian-lora".to_string(),
        "lora-ensemble".to_string(),
        "mc-dropout".to_string(),
    ];
    config.seeds = 3;
    config.models = vec!["llama-8b".to_string(), "mistral-7b".to_string()];
    config.finetune_secs = 20.0;
    println!(
        "UQ hierarchy expands to {} GPU fine-tuning tasks",
        config.total_uq_tasks()
    );

    let pipeline = uncertainty_quantification_pipeline(&config);
    let report = PipelineRunner::new(&session)
        .stage_timeout(Duration::from_secs(600))
        .run(&pipeline)
        .expect("pipeline run");
    print!("{}", report.render());

    let metrics = session.metrics();
    println!("post-processing LLM requests: {}", metrics.response_count());
    session.close();
}
