//! The LUCID Uncertainty Quantification pipeline (paper §II-C) end to end at reduced
//! scale: a multi-node MPI ensemble-simulation stage (DeepDriveMD-style hybrid
//! MD-then-ML), a three-level hierarchy of GPU fine-tuning tasks (models × UQ methods
//! × seeds), and service-assisted post-processing.
//!
//! The example runs the pipeline twice to contrast the gang packing policies:
//!
//! 1. **whole-node members** (the paper's classic shape): each 2-node ensemble member
//!    reserves fully idle nodes;
//! 2. **half-node members under partial packing** (the default policy): each member
//!    asks for 32 of Delta's 64 cores per node, so two members — or a member and the
//!    GPU fine-tuning tasks — co-locate on the same nodes instead of serialising on
//!    idle-node availability (`task.gang.partial_nodes` counts the co-resident
//!    members).
//!
//! Run with: `cargo run --example uq_pipeline`

use std::time::Duration;

use hpcml::prelude::*;

/// Build a session + 4-node Delta pilot, run the configured UQ pipeline, and print
/// its report plus the gang-placement telemetry.
fn run_variant(label: &str, config: &UqConfig) {
    let session = Session::builder(format!("uq-{label}"))
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(5000.0))
        .seed(17)
        // Serve up to 4 queued placements out of order so single-node fine-tuning
        // tasks keep flowing while a multi-node MPI gang waits for capacity.
        .scheduler_lookahead(4)
        // Partial is already the default; stated here because this example is about
        // the packing contrast (the Whole variant pins its policy per task).
        .gang_packing(GangPacking::Partial)
        .build()
        .expect("session");
    session
        .submit_pilot(
            PilotDescription::new(PlatformId::Delta)
                .nodes(4)
                .runtime_secs(7200.0),
        )
        .expect("pilot");

    println!(
        "[{label}] UQ pipeline: {} MPI ensemble members ({}x{} ranks each) + {} GPU fine-tuning tasks",
        config.mpi_sim_tasks,
        config.mpi_sim_nodes,
        config.mpi_ranks_per_node,
        config.total_uq_tasks()
    );

    let pipeline = uncertainty_quantification_pipeline(config);
    let report = PipelineRunner::new(&session)
        .stage_timeout(Duration::from_secs(600))
        .run(&pipeline)
        .expect("pipeline run");
    print!("{}", report.render());

    let metrics = session.metrics();
    let gang_waits = metrics.scalar_values("task.gang.placement_wait_secs");
    let partial_nodes: f64 = metrics
        .scalar_values("task.gang.partial_nodes")
        .iter()
        .sum();
    println!(
        "[{label}] MPI gang placements: {} (spanning {} nodes total, {} members co-resident)",
        gang_waits.len(),
        metrics.scalar_values("task.gang.nodes").iter().sum::<f64>() as usize,
        partial_nodes as usize,
    );
    println!(
        "[{label}] post-processing LLM requests: {}",
        metrics.response_count()
    );
    session.close();
}

fn main() {
    let mut base = UqConfig::test_scale();
    base.methods = vec![
        "bayesian-lora".to_string(),
        "lora-ensemble".to_string(),
        "mc-dropout".to_string(),
    ];
    base.seeds = 3;
    base.models = vec!["llama-8b".to_string(), "mistral-7b".to_string()];
    base.finetune_secs = 20.0;

    // Variant 1 — whole-node members: three ensemble members, each an atomic gang
    // reserving 2 fully idle Delta nodes; with a 4-node pilot, two gangs simulate
    // concurrently and the third follows.
    let whole = base
        .clone()
        .with_mpi_simulation(3, 2, 15.0)
        .with_mpi_packing(GangPacking::Whole);
    run_variant("whole-node", &whole);

    // Variant 2 — half-node members under the default partial packing: the same
    // three members ask for 32 of 64 cores per node, so their gangs best-fit beside
    // each other (and beside the fine-tuning tasks) instead of waiting for idle
    // nodes — all three can simulate concurrently on the same 4-node pilot.
    let mut half = base.with_mpi_simulation(3, 2, 15.0);
    half.mpi_ranks_per_node = 32; // half of a 64-core Delta node
    run_variant("half-node", &half);
}
