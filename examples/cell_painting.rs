//! The LUCID Cell Painting pipeline (paper §II-A) end to end at reduced scale.
//!
//! Stage 1 stages cell-painting image shards over the (simulated) wide-area network and
//! pre-processes them on CPU cores; stage 2 fine-tunes a ViT under hyper-parameter
//! optimisation on GPUs while a feature-extraction service answers classification
//! requests through the runtime's service interface.
//!
//! Run with: `cargo run --example cell_painting`

use std::time::Duration;

use hpcml::prelude::*;

fn main() {
    let session = Session::builder("cell-painting")
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(5000.0))
        .seed(11)
        .build()
        .expect("session");
    session
        .submit_pilot(
            PilotDescription::new(PlatformId::Delta)
                .nodes(4)
                .runtime_secs(7200.0),
        )
        .expect("pilot");

    // A reduced-scale configuration; swap in `CellPaintingConfig::paper_scale()` to run
    // the 1.6 TB / 32-trial version (still fine under a scaled clock, just slower).
    let mut config = CellPaintingConfig::test_scale();
    config.shards = 8;
    config.hpo_trials = 6;
    config.inference_requests = 16;

    let pipeline = cell_painting_pipeline(&config);
    println!(
        "running pipeline '{}' with {} stages, {} tasks, {} services",
        pipeline.name,
        pipeline.stages.len(),
        pipeline.total_tasks(),
        pipeline.total_services()
    );

    let report = PipelineRunner::new(&session)
        .stage_timeout(Duration::from_secs(300))
        .run(&pipeline)
        .expect("pipeline run");
    print!("{}", report.render());

    let metrics = session.metrics();
    println!(
        "staged data: {}",
        metrics.scalar_summary("staging.mib").report()
    );
    println!(
        "classification requests served: {}",
        metrics.response_count()
    );
    session.close();
}
