//! Serving-plane walkthrough: continuous micro-batching, replica pools and
//! deadline-aware admission control.
//!
//! The same llama-8b model is deployed twice — once in the legacy unbatched
//! single-replica shape, once as a batched two-replica pool — and both serve the same
//! concurrent client load. The batched pool amortises decode cost across batch members
//! and splits the load over its replicas, so its clients finish in a fraction of the
//! unbatched wall time; the serving metrics recorded by the runtime show the batch
//! sizes and queue depths behind that difference.
//!
//! Run with: `cargo run --example serving`

use std::time::Duration;

use hpcml::prelude::*;
use hpcml::serving::ModelSpec;

fn run_clients(session: &Session, service: &str, clients: usize, requests: u32) -> f64 {
    let t0 = session.clock().now();
    let tasks: Vec<_> = (0..clients)
        .map(|i| {
            session
                .submit_task(
                    TaskDescription::new(format!("{service}-client-{i}"))
                        .kind(TaskKind::inference_client(service, requests))
                        .cores(1),
                )
                .expect("client task")
        })
        .collect();
    for t in &tasks {
        t.wait_done_timeout(Duration::from_secs(3600))
            .expect("client done");
    }
    session.clock().now().since(t0).as_secs_f64()
}

fn main() {
    let session = Session::builder("serving-walkthrough")
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(2000.0))
        .seed(7)
        .build()
        .expect("session");
    session
        .submit_pilot(
            PilotDescription::new(PlatformId::Delta)
                .nodes(4)
                .runtime_secs(14400.0),
        )
        .expect("pilot");

    // Legacy shape: one replica, one request per backend dispatch (the default
    // ServingConfig — exactly the seed-era service).
    let unbatched = session
        .submit_service(
            ServiceDescription::new("llm-unbatched")
                .model(ModelSpec::sim_llama_8b())
                .gpus(1),
        )
        .expect("unbatched service");

    // Serving plane: up to 8 requests per dispatch, 100 ms of batching budget, two
    // replicas behind one endpoint with least-outstanding-requests routing.
    let batched = session
        .submit_service(
            ServiceDescription::new("llm-batched")
                .model(ModelSpec::sim_llama_8b())
                .gpus(1)
                .replicas(2)
                .max_batch_size(8)
                .batch_latency_budget_secs(0.1),
        )
        .expect("batched service");

    unbatched.wait_ready().expect("unbatched ready");
    batched.wait_ready().expect("batched ready");

    let unbatched_secs = run_clients(&session, "llm-unbatched", 4, 4);
    let batched_secs = run_clients(&session, "llm-batched", 4, 4);

    println!("== serving plane walkthrough (virtual seconds) ==");
    println!("unbatched 1x1 service : {unbatched_secs:8.1} s for 16 requests");
    println!("batched   2x8 pool    : {batched_secs:8.1} s for 16 requests");
    println!(
        "speedup               : {:8.2}x",
        unbatched_secs / batched_secs.max(1e-9)
    );

    let metrics = session.metrics();
    let batch = metrics.scalar_summary("serving.batch.size");
    let depth = metrics.scalar_summary("serving.queue.depth");
    println!(
        "batch size            : mean {:.2}, max {:.0}",
        batch.mean, batch.max
    );
    println!(
        "assembler queue depth : mean {:.2}, max {:.0}",
        depth.mean, depth.max
    );
    println!(
        "replica outstanding   : max {:.0}",
        metrics.scalar_summary("serving.replica.outstanding").max
    );

    session.close();
}
