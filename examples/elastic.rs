//! Elastic pilots under node failures: grow a pilot while work is queued, lose a
//! node mid-gang to a seeded fault plan, watch the evicted gang requeue and
//! complete within its retry budget, then shed the failed node and grow back.
//!
//! Run with: `cargo run --example elastic`

use std::time::Duration;

use hpcml::prelude::*;

fn main() {
    // A seeded fault plan injects node failures against the first pilot's
    // allocation on the session clock: node 0 dies 5 virtual seconds after the
    // pilot becomes active, while the gang below is mid-execution.
    let session = Session::builder("elastic")
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(200.0))
        .seed(99)
        .fault_plan(FaultPlan::new().fail_at(5.0, 0))
        .build()
        .expect("session");

    // ① Start small: a 3-node pilot on Delta.
    let pilot = session
        .submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(3))
        .expect("pilot");
    println!(
        "pilot {} active with {} nodes",
        pilot.id(),
        pilot.num_nodes()
    );

    // ② A 4-node gang is submitted against the 3-node pilot: it parks in the
    // scheduler's wait queue because the pilot is too small for it.
    let gang = session
        .submit_task(
            TaskDescription::new("training-gang")
                .kind(TaskKind::compute_secs(60.0))
                .nodes(4)
                .gang_packing(GangPacking::Whole)
                // Budget for surviving one node failure plus one bad retry.
                .max_retries(2),
        )
        .expect("gang");

    // ③ Grow the pilot at runtime: two fresh nodes join the allocation, the
    // scheduler is nudged, and the parked gang places.
    let attached = pilot.resize(5).expect("grow");
    println!("pilot grown to {attached} nodes — parked gang can now place");

    // ④ The fault plan kills node 0 mid-run. The co-resident gang slot is
    // evicted, the task requeues at the front of its class, and the retry
    // re-places it on the healthy remainder.
    gang.wait_done_timeout(Duration::from_secs(600))
        .expect("gang done");
    println!(
        "gang finished after {} retr{} ({} node failure{} injected)",
        gang.retries(),
        if gang.retries() == 1 { "y" } else { "ies" },
        session.metrics().scalar_values("node.failures").len(),
        if session.metrics().scalar_values("node.failures").len() == 1 {
            ""
        } else {
            "s"
        },
    );
    println!(
        "pilot now: {} healthy + {} failed node(s) attached",
        pilot.num_nodes(),
        pilot.failed_nodes()
    );

    // `wait_done` returns when the task state flips; the executor thread
    // releases the gang slot just after. Let the release land before reading
    // occupancy, so the final numbers show a quiesced pilot.
    let clock = session.clock();
    while pilot.idle_nodes() < 4 {
        clock.sleep(Duration::from_millis(50));
    }

    // ⑤ Repair the pilot: shrinking retires the failed node first, growing
    // back attaches a fresh healthy one.
    pilot.resize(4).expect("shed failed node");
    println!(
        "after shrink: {} healthy, {} failed",
        pilot.num_nodes(),
        pilot.failed_nodes()
    );
    pilot.resize(5).expect("grow back");
    println!(
        "after regrow: {} healthy, {} idle, {} free cores",
        pilot.num_nodes(),
        pilot.idle_nodes(),
        pilot.free_cores()
    );

    session.close();
    println!("done");
}
