//! Quickstart: one pilot, one model service, one inference-client task.
//!
//! This is the smallest end-to-end use of the runtime's service extension: acquire
//! resources through a pilot, stand up a model service on them, send it inference
//! requests from a task, and read back the response-time metrics.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use hpcml::prelude::*;

fn main() {
    // Compress virtual time 2000x so the llama-8b load (~30 virtual seconds) and the
    // inference calls finish in well under a second of real time.
    //
    // `allocator_shards` stripes the pilot allocation's placement state into that
    // many independently locked shards, so placements from many submitting threads
    // stop serialising on one allocator lock (the number is clamped to the node
    // count — this 2-node pilot gets 2). Left unset, the count is derived from the
    // host parallelism and the allocation size; `allocator_shards(1)` is the
    // escape hatch that pins the classic single-lock allocator and its exact
    // placement order.
    let session = Session::builder("quickstart")
        .platform(PlatformId::Local)
        .clock(ClockSpec::scaled(2000.0))
        .seed(7)
        .allocator_shards(4)
        .build()
        .expect("session");

    // ① Acquire resources: a 2-node pilot on the local test platform.
    let pilot = session
        .submit_pilot(
            PilotDescription::new(PlatformId::Local)
                .nodes(2)
                .runtime_secs(3600.0),
        )
        .expect("pilot");
    println!(
        "pilot {} active with {} nodes",
        pilot.id(),
        pilot.num_nodes()
    );

    // ② Stand up a model service on one GPU and wait until it is ready.
    let service = session
        .submit_service(
            ServiceDescription::new("llm-0")
                .model(hpcml::serving::ModelSpec::sim_llama_8b())
                .gpus(1),
        )
        .expect("service");
    service.wait_ready().expect("service ready");
    let bootstrap = service.bootstrap_times().expect("bootstrap measured");
    println!(
        "service {} ready: launch={:.2}s init={:.2}s publish={:.2}s (virtual)",
        service.name(),
        bootstrap.launch_secs,
        bootstrap.init_secs,
        bootstrap.publish_secs
    );

    // ③ A client task sends eight inference requests through the service API.
    let task = session
        .submit_task(
            TaskDescription::new("client-0")
                .kind(TaskKind::inference_client("llm-0", 8))
                .cores(1)
                .after_service("llm-0"),
        )
        .expect("task");
    task.wait_done_timeout(Duration::from_secs(120))
        .expect("task done");

    // ④ Inspect the collected response-time decomposition.
    let metrics = session.metrics();
    println!("collected {} response samples", metrics.response_count());
    for (component, summary) in metrics.response_summaries() {
        println!(
            "  {component:<14} mean={:.4}s p95={:.4}s",
            summary.mean, summary.p95
        );
    }
    println!(
        "inference time (IT): {}",
        metrics.inference_summary().report()
    );

    session.close();
    println!("done");
}
