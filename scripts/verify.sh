#!/usr/bin/env bash
# Tier-1 verify path for this repository.
#
# Beyond build + tests, this checks formatting, compiles every bench target
# (`cargo bench --no-run`) and lints with `-D warnings`, so benches and shims cannot
# bit-rot silently between PRs. Set BENCH_GUARD=1 to additionally run the scheduler
# bench-regression guard (scripts/bench_guard.sh), which CI runs as its own job.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (root package: integration suites)"
cargo test -q

echo "==> cargo test -q --workspace (all crates incl. shims)"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run (bench targets must keep compiling)"
cargo bench --no-run

echo "==> cargo doc --workspace --no-deps (RUSTDOCFLAGS=-D warnings: docs must not bit-rot)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [[ "${BENCH_GUARD:-0}" == "1" ]]; then
    echo "==> BENCH_GUARD=1: scripts/bench_guard.sh"
    scripts/bench_guard.sh
fi

echo "verify: OK"
