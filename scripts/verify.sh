#!/usr/bin/env bash
# Tier-1 verify path for this repository.
#
# Beyond build + tests, this compiles every bench target (`cargo bench --no-run`) and
# lints with `-D warnings`, so benches and shims cannot bit-rot silently between PRs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (root package: integration suites)"
cargo test -q

echo "==> cargo test -q --workspace (all crates incl. shims)"
cargo test -q --workspace

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --no-run (bench targets must keep compiling)"
cargo bench --no-run

echo "verify: OK"
