#!/usr/bin/env bash
# Bench-regression guard for the scheduler hot paths.
#
# Runs the criterion hot-path benches and fails when:
#   1. any scheduler/allocate_release sweep point regresses more than
#      BENCH_GUARD_THRESHOLD (default 2x) against the committed baseline in
#      BENCH_scheduler.json — compared machine-independently: each value is first
#      normalised by the same run's registry/lookup_64 reference bench, so a slower
#      CI runner scales the reference and the measurement alike instead of
#      false-failing on absolute nanoseconds; or
#   2. scheduler/gang_allocate stops being flat (max/min beyond the same threshold)
#      across the 4/256/4096-node sweep — gang placement must stay O(gang size); or
#   3. scheduler/gang_partial is missing from the parsed results (the bench cannot
#      silently drop out of the suite) or stops being flat across the same sweep —
#      partial-packing best-fit claims must stay O(gang size + GPU levels),
#      independent of allocation width; or
#   4. scheduler/gang_backfill stops being flat across the same sweep — the
#      backfill-reservation cycle (begin_drain + allocate_reserved + release) must
#      stay O(gang size + pinned nodes), independent of allocation width; or
#   5. the scheduler/churn thread sweep (1/2/4/8/16 threads on 256 nodes, sharded
#      16-shard allocator vs the allocator_shards=1 baseline) is missing from the
#      parsed results, or 8-thread sharded churn fails its speedup bound against
#      the 1-shard configuration measured in the same run. The bound is
#      hardware-aware because lock sharding can only buy wall-clock parallelism
#      the host actually has: >=8 CPUs must show >=1.5x, >=4 CPUs >=1.1x, and
#      below that the check degrades to "not pathologically slower" (>=0.8x).
#      Override with BENCH_CHURN_MIN_SPEEDUP; or
#   6. the scheduler/churn queue_sharded sweep (16 queue shards over the same
#      16-shard allocator) is missing, or 8-thread queue-sharded churn fails the
#      same hardware-aware speedup bound against the scheduler/churn/sharded
#      point — identical allocator, one queue shard — measured in the same run.
#      Override with BENCH_QUEUE_CHURN_MIN_SPEEDUP; or
#   7. the scheduler/admission_batch datapoints (batched vs individual admission
#      of a 10^4 burst) are missing from the parsed results, or the batched path
#      stops beating one-by-one admission (>= BENCH_ADMISSION_MIN_SPEEDUP,
#      default 1.0x — batching trades per-item lock round trips for one per
#      shard, which pays on any host); or
#   8. any of the four serving-plane datapoints (serving/unbatched,
#      serving/batched/8, serving/overload_p99/shed_on, .../shed_off) is missing
#      from the serving bench's parsed results, or continuous micro-batching
#      stops beating the unbatched service (unbatched/batched per-request time
#      >= BENCH_SERVING_MIN_SPEEDUP, default 1.5x), or deadline shedding stops
#      bounding the overload tail (shed_off p99 / shed_on p99 >=
#      BENCH_SERVING_MIN_TAIL_IMPROVEMENT, default 1.5x). These measure
#      **virtual** time — the simulation's deterministic cost model — so the
#      bounds are machine-independent and flat; the env overrides exist for
#      intentional cost-model changes, not slow hardware. Recorded in their own
#      baseline, BENCH_serving.json; or
#   9. any comm_fabric datapoint (comm/fanout/{encode_once,clone_each}/{1,8,64},
#      comm/batch/roundtrip/{singleton,batched_16}, comm/registry/lookup_churn)
#      is missing from the comm bench's parsed results, or zero-copy fan-out at
#      64 subscribers stops beating the clone-per-subscriber baseline
#      (clone_each/64 / encode_once/64 >= BENCH_COMM_MIN_FANOUT_SPEEDUP, default
#      1.5x — the saving is N-1 avoided deep clones, allocation-bound and so
#      host-independent), or batched round trips stop beating singletons
#      (singleton / batched_16 >= BENCH_COMM_MIN_BATCH_SPEEDUP, default 1.5x —
#      virtual-time coalescing-rule pricing, machine-independent). Recorded in
#      their own baseline, BENCH_comm.json.
#
# Every run also writes its raw criterion output, the parsed results, and the
# candidate baseline JSON under target/bench-guard/ so CI can upload them as a
# workflow artifact for trajectory inspection.
#
# The baseline is only (re)written when it does not exist yet or when
# BENCH_BASELINE_UPDATE=1 is set, so a passing-but-slower run cannot silently
# ratchet the baseline: refreshing the trajectory datapoint is an explicit act to
# commit alongside an intentional perf change.
#
# Usage: scripts/bench_guard.sh
#        BENCH_BASELINE_UPDATE=1 scripts/bench_guard.sh   # refresh both baselines
# Also reachable through `BENCH_GUARD=1 scripts/verify.sh`.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="BENCH_scheduler.json"
SERVING_BASELINE="BENCH_serving.json"
COMM_BASELINE="BENCH_comm.json"
THRESHOLD="${BENCH_GUARD_THRESHOLD:-2.0}"
REFERENCE="registry/lookup_64"
ARTIFACTS="target/bench-guard"
mkdir -p "$ARTIFACTS"

echo "==> cargo bench -p hpcml-bench --bench runtime_hotpaths (guard threshold ${THRESHOLD}x)"
RAW="$(cargo bench -p hpcml-bench --bench runtime_hotpaths 2>&1)"
echo "$RAW"
echo "$RAW" > "$ARTIFACTS/criterion-output.txt"

# The criterion shim (and the serving bench's reporter) print
# `name  time: [  XXX.XX <unit>/iter]  samples: N`.
# Normalise every such line to "name <ns/iter>" pairs.
parse_results() { # parse_results <raw bench output> -> "name ns" lines on stdout
    echo "$1" | awk '
    /time: \[/ {
        name = $1
        if (match($0, /\[ *[0-9.]+ +[a-zA-Zµ]+\/iter\]/)) {
            s = substr($0, RSTART + 1, RLENGTH - 2)
            sub(/^ +/, "", s)
            split(s, parts, /[ \/]+/)
            value = parts[1] + 0
            unit = parts[2]
            if (unit == "µs") value *= 1000
            else if (unit == "ms") value *= 1000000
            else if (unit != "ns") next
            printf "%s %.2f\n", name, value
        }
    }'
}
RESULTS="$(parse_results "$RAW")"

echo "$RESULTS" > "$ARTIFACTS/results-parsed.txt"

if ! echo "$RESULTS" | grep -q "^scheduler/allocate_release/"; then
    echo "bench_guard: FAILED — could not parse scheduler/allocate_release results" >&2
    exit 1
fi

lookup() { # lookup <results-or-baseline-text> <bench name> -> value or empty
    echo "$1" | sed -n "s|^[[:space:]]*\"\?$2\"\?[: ] *\([0-9.]*\).*|\1|p" | head -1
}

NEW_REF="$(lookup "$RESULTS" "$REFERENCE")"
if [[ -z "$NEW_REF" ]]; then
    echo "bench_guard: FAILED — reference bench $REFERENCE missing from results" >&2
    exit 1
fi

OLD=""
if [[ -f "$BASELINE" ]]; then
    # Strip JSON punctuation so lookup() sees `"name": value` lines uniformly.
    OLD="$(sed 's/,$//' "$BASELINE")"
fi

fail=0

# Guard 1: allocate_release sweep points vs the committed baseline, normalised by the
# reference bench measured in the same run/on the same machine as each side.
if [[ -n "$OLD" ]]; then
    OLD_REF="$(lookup "$OLD" "$REFERENCE")"
    if [[ -z "$OLD_REF" ]]; then
        echo "guard: baseline predates reference normalisation — comparing raw ns"
        OLD_REF="$NEW_REF"
    fi
    while read -r name value; do
        case "$name" in
        scheduler/allocate_release/*)
            old_value="$(lookup "$OLD" "$name")"
            if [[ -n "$old_value" ]]; then
                awk -v new="$value" -v old="$old_value" \
                    -v new_ref="$NEW_REF" -v old_ref="$OLD_REF" \
                    -v t="$THRESHOLD" -v n="$name" '
                    BEGIN {
                        norm_new = (new_ref > 0) ? new / new_ref : 0
                        norm_old = (old_ref > 0) ? old / old_ref : 0
                        ratio = (norm_old > 0) ? norm_new / norm_old : 0
                        printf "guard: %-38s %9.1f ns (%.2fx ref) vs baseline %9.1f ns (%.2fx ref): %.2fx, bound %.1fx\n", \
                            n, new, norm_new, old, norm_old, ratio, t
                        exit !(ratio <= t)
                    }' || fail=1
            else
                echo "guard: $name has no committed baseline yet"
            fi
            ;;
        esac
    done <<<"$RESULTS"
else
    echo "guard: no committed baseline — recording the first trajectory datapoint"
fi

# Guards 2-4: gang placement, partial-packing, and backfill-reservation flatness
# across the node-count sweep (same machine, same run — absolute comparison is
# correct here).
flatness_guard() { # flatness_guard <bench group name>
    echo "$RESULTS" | awk -v t="$THRESHOLD" -v g="$1" '
        $1 ~ "^scheduler/" g "/" {
            if (!n || $2 < min) min = $2
            if (!n || $2 > max) max = $2
            n++
        }
        END {
            if (n < 2) { printf "guard: %s sweep has fewer than 2 points\n", g >"/dev/stderr"; exit 1 }
            ratio = max / min
            printf "guard: %s flatness %.2fx across %d sweep points (bound %.1fx)\n", g, ratio, n, t
            exit !(ratio <= t)
        }'
}
# Existence assertion: the partial-packing bench must be present in the parsed
# results at all — a refactor that renames or drops the group must fail loudly
# here, not silently shrink the guarded surface.
if ! echo "$RESULTS" | grep -q "^scheduler/gang_partial/"; then
    echo "bench_guard: FAILED — scheduler/gang_partial missing from parsed results" >&2
    fail=1
fi
flatness_guard "gang_allocate" || fail=1
flatness_guard "gang_partial" || fail=1
flatness_guard "gang_backfill" || fail=1

# Guard 5: the contention-scaling churn sweep. Existence first — a refactor that
# renames or drops the sharded-vs-single sweep must fail loudly — then the
# 8-thread speedup of the sharded allocator over the 1-shard baseline, both
# measured in this run on this machine.
for point in "scheduler/churn/sharded/8" "scheduler/churn/single/8"; do
    if ! echo "$RESULTS" | grep -q "^$point "; then
        echo "bench_guard: FAILED — $point missing from parsed results" >&2
        fail=1
    fi
done
CHURN_SHARDED="$(lookup "$RESULTS" "scheduler/churn/sharded/8")"
CHURN_SINGLE="$(lookup "$RESULTS" "scheduler/churn/single/8")"
if [[ -n "$CHURN_SHARDED" && -n "$CHURN_SINGLE" ]]; then
    CPUS="$(nproc 2>/dev/null || echo 1)"
    if [[ -n "${BENCH_CHURN_MIN_SPEEDUP:-}" ]]; then
        MIN_SPEEDUP="$BENCH_CHURN_MIN_SPEEDUP"
    elif [[ "$CPUS" -ge 8 ]]; then
        MIN_SPEEDUP="1.5"
    elif [[ "$CPUS" -ge 4 ]]; then
        MIN_SPEEDUP="1.1"
    else
        MIN_SPEEDUP="0.8"
    fi
    awk -v sharded="$CHURN_SHARDED" -v single="$CHURN_SINGLE" \
        -v min="$MIN_SPEEDUP" -v cpus="$CPUS" '
        BEGIN {
            speedup = (sharded > 0) ? single / sharded : 0
            printf "guard: churn 8-thread sharded %.0f ns vs 1-shard %.0f ns: %.2fx speedup (bound %.2fx on %d CPUs)\n", \
                sharded, single, speedup, min, cpus
            exit !(speedup >= min)
        }' || fail=1
fi

# Guard 6: the queue-shard contention sweep. Existence first, then the 8-thread
# speedup of 16 queue shards over the 1-queue-shard configuration on the same
# 16-shard allocator (scheduler/churn/sharded), both measured in this run. The
# bound is hardware-aware for the same reason as guard 5.
for point in "scheduler/churn/queue_sharded/8"; do
    if ! echo "$RESULTS" | grep -q "^$point "; then
        echo "bench_guard: FAILED — $point missing from parsed results" >&2
        fail=1
    fi
done
CHURN_QUEUE_SHARDED="$(lookup "$RESULTS" "scheduler/churn/queue_sharded/8")"
if [[ -n "$CHURN_QUEUE_SHARDED" && -n "$CHURN_SHARDED" ]]; then
    CPUS="$(nproc 2>/dev/null || echo 1)"
    if [[ -n "${BENCH_QUEUE_CHURN_MIN_SPEEDUP:-}" ]]; then
        QUEUE_MIN_SPEEDUP="$BENCH_QUEUE_CHURN_MIN_SPEEDUP"
    elif [[ "$CPUS" -ge 8 ]]; then
        QUEUE_MIN_SPEEDUP="1.5"
    elif [[ "$CPUS" -ge 4 ]]; then
        QUEUE_MIN_SPEEDUP="1.1"
    else
        QUEUE_MIN_SPEEDUP="0.8"
    fi
    awk -v queue="$CHURN_QUEUE_SHARDED" -v single="$CHURN_SHARDED" \
        -v min="$QUEUE_MIN_SPEEDUP" -v cpus="$CPUS" '
        BEGIN {
            speedup = (queue > 0) ? single / queue : 0
            printf "guard: churn 8-thread queue-sharded %.0f ns vs 1-queue-shard %.0f ns: %.2fx speedup (bound %.2fx on %d CPUs)\n", \
                queue, single, speedup, min, cpus
            exit !(speedup >= min)
        }' || fail=1
fi

# Guard 7: batched admission. Existence first — the admission_batch group must
# stay in the suite — then batched vs one-by-one admission of the same burst,
# both measured in this run. Unlike the contention guards this bound is flat:
# the batched saving is lock round trips per item, not parallelism.
for point in "scheduler/admission_batch/batched/10000" "scheduler/admission_batch/individual/10000"; do
    if ! echo "$RESULTS" | grep -q "^$point "; then
        echo "bench_guard: FAILED — $point missing from parsed results" >&2
        fail=1
    fi
done
ADMIT_BATCHED="$(lookup "$RESULTS" "scheduler/admission_batch/batched/10000")"
ADMIT_INDIVIDUAL="$(lookup "$RESULTS" "scheduler/admission_batch/individual/10000")"
if [[ -n "$ADMIT_BATCHED" && -n "$ADMIT_INDIVIDUAL" ]]; then
    ADMIT_MIN_SPEEDUP="${BENCH_ADMISSION_MIN_SPEEDUP:-1.0}"
    awk -v batched="$ADMIT_BATCHED" -v individual="$ADMIT_INDIVIDUAL" \
        -v min="$ADMIT_MIN_SPEEDUP" '
        BEGIN {
            speedup = (batched > 0) ? individual / batched : 0
            printf "guard: admission 10^4 burst batched %.0f ns vs individual %.0f ns: %.2fx speedup (bound %.2fx)\n", \
                batched, individual, speedup, min
            exit !(speedup >= min)
        }' || fail=1
fi

# Guard 8: the serving plane. A separate bench binary because it measures virtual
# (simulated) time rather than host nanoseconds: the batched/unbatched ratio and the
# shed-on/shed-off tail ratio are properties of the serving cost model, deterministic
# up to mild thread-interleaving effects, so the bounds are flat and the trajectory
# lives in its own baseline file.
echo "==> cargo bench -p hpcml-bench --bench serving_plane"
SERVING_RAW="$(cargo bench -p hpcml-bench --bench serving_plane 2>&1)"
echo "$SERVING_RAW"
echo "$SERVING_RAW" > "$ARTIFACTS/serving-output.txt"
SERVING_RESULTS="$(parse_results "$SERVING_RAW")"
echo "$SERVING_RESULTS" > "$ARTIFACTS/serving-parsed.txt"

for point in "serving/unbatched" "serving/batched/8" \
    "serving/overload_p99/shed_on" "serving/overload_p99/shed_off"; do
    if ! echo "$SERVING_RESULTS" | grep -q "^$point "; then
        echo "bench_guard: FAILED — $point missing from serving bench results" >&2
        fail=1
    fi
done
SERVING_UNBATCHED="$(lookup "$SERVING_RESULTS" "serving/unbatched")"
SERVING_BATCHED="$(lookup "$SERVING_RESULTS" "serving/batched/8")"
if [[ -n "$SERVING_UNBATCHED" && -n "$SERVING_BATCHED" ]]; then
    SERVING_MIN_SPEEDUP="${BENCH_SERVING_MIN_SPEEDUP:-1.5}"
    awk -v batched="$SERVING_BATCHED" -v unbatched="$SERVING_UNBATCHED" \
        -v min="$SERVING_MIN_SPEEDUP" '
        BEGIN {
            speedup = (batched > 0) ? unbatched / batched : 0
            printf "guard: serving per-request unbatched %.0f ns vs batched-8 %.0f ns (virtual): %.2fx speedup (bound %.2fx)\n", \
                unbatched, batched, speedup, min
            exit !(speedup >= min)
        }' || fail=1
fi
SHED_ON_P99="$(lookup "$SERVING_RESULTS" "serving/overload_p99/shed_on")"
SHED_OFF_P99="$(lookup "$SERVING_RESULTS" "serving/overload_p99/shed_off")"
if [[ -n "$SHED_ON_P99" && -n "$SHED_OFF_P99" ]]; then
    SERVING_MIN_TAIL="${BENCH_SERVING_MIN_TAIL_IMPROVEMENT:-1.5}"
    awk -v on="$SHED_ON_P99" -v off="$SHED_OFF_P99" -v min="$SERVING_MIN_TAIL" '
        BEGIN {
            ratio = (on > 0) ? off / on : 0
            printf "guard: overload p99 shed_off %.0f ns vs shed_on %.0f ns (virtual): %.2fx tail improvement (bound %.2fx)\n", \
                off, on, ratio, min
            exit !(ratio >= min)
        }' || fail=1
fi

# Guard 9: the comm fabric. Mixed measurement kinds in one binary: the fan-out and
# registry points are real nanoseconds of allocation-bound CPU work (host-independent
# ratios), the batch round-trip points are virtual time from the link coalescing rule
# (deterministic). Existence of every point first, then the two ratio bounds.
echo "==> cargo bench -p hpcml-bench --bench comm_fabric"
COMM_RAW="$(cargo bench -p hpcml-bench --bench comm_fabric 2>&1)"
echo "$COMM_RAW"
echo "$COMM_RAW" > "$ARTIFACTS/comm-output.txt"
COMM_RESULTS="$(parse_results "$COMM_RAW")"
echo "$COMM_RESULTS" > "$ARTIFACTS/comm-parsed.txt"

for point in \
    "comm/fanout/encode_once/1" "comm/fanout/encode_once/8" "comm/fanout/encode_once/64" \
    "comm/fanout/clone_each/1" "comm/fanout/clone_each/8" "comm/fanout/clone_each/64" \
    "comm/batch/roundtrip/singleton" "comm/batch/roundtrip/batched_16" \
    "comm/registry/lookup_churn"; do
    if ! echo "$COMM_RESULTS" | grep -q "^$point "; then
        echo "bench_guard: FAILED — $point missing from comm bench results" >&2
        fail=1
    fi
done
FANOUT_ENCODE_ONCE="$(lookup "$COMM_RESULTS" "comm/fanout/encode_once/64")"
FANOUT_CLONE_EACH="$(lookup "$COMM_RESULTS" "comm/fanout/clone_each/64")"
if [[ -n "$FANOUT_ENCODE_ONCE" && -n "$FANOUT_CLONE_EACH" ]]; then
    COMM_MIN_FANOUT="${BENCH_COMM_MIN_FANOUT_SPEEDUP:-1.5}"
    awk -v once="$FANOUT_ENCODE_ONCE" -v clone="$FANOUT_CLONE_EACH" \
        -v min="$COMM_MIN_FANOUT" '
        BEGIN {
            speedup = (once > 0) ? clone / once : 0
            printf "guard: fan-out to 64 encode-once %.0f ns vs clone-each %.0f ns: %.2fx speedup (bound %.2fx)\n", \
                once, clone, speedup, min
            exit !(speedup >= min)
        }' || fail=1
fi
BATCH_SINGLETON="$(lookup "$COMM_RESULTS" "comm/batch/roundtrip/singleton")"
BATCH_BATCHED="$(lookup "$COMM_RESULTS" "comm/batch/roundtrip/batched_16")"
if [[ -n "$BATCH_SINGLETON" && -n "$BATCH_BATCHED" ]]; then
    COMM_MIN_BATCH="${BENCH_COMM_MIN_BATCH_SPEEDUP:-1.5}"
    awk -v batched="$BATCH_BATCHED" -v singleton="$BATCH_SINGLETON" \
        -v min="$COMM_MIN_BATCH" '
        BEGIN {
            speedup = (batched > 0) ? singleton / batched : 0
            printf "guard: 16-request round trips singleton %.0f ns vs batched %.0f ns (virtual): %.2fx speedup (bound %.2fx)\n", \
                singleton, batched, speedup, min
            exit !(speedup >= min)
        }' || fail=1
fi

# The candidate baseline is always written to the artifact dir (inspectable from the
# Actions UI next to the committed baseline), whatever the guard verdict.
write_baseline() { # write_baseline <path>
    echo "$RESULTS" | awk -v ref="$REFERENCE" '
        BEGIN { print "{"; print "  \"unit\": \"ns_per_iter\"," }
        $1 == ref || /^scheduler\// {
            if (n++) printf ",\n"
            printf "  \"%s\": %s", $1, $2
        }
        END { print ""; print "}" }' > "$1"
}
write_baseline "$ARTIFACTS/BENCH_scheduler.candidate.json"
if [[ -f "$BASELINE" ]]; then
    cp "$BASELINE" "$ARTIFACTS/BENCH_scheduler.committed.json"
fi

write_serving_baseline() { # write_serving_baseline <path>
    echo "$SERVING_RESULTS" | awk '
        BEGIN { print "{"; print "  \"unit\": \"virtual_ns_per_iter\"," }
        /^serving\// {
            if (n++) printf ",\n"
            printf "  \"%s\": %s", $1, $2
        }
        END { print ""; print "}" }' > "$1"
}
write_serving_baseline "$ARTIFACTS/BENCH_serving.candidate.json"
if [[ -f "$SERVING_BASELINE" ]]; then
    cp "$SERVING_BASELINE" "$ARTIFACTS/BENCH_serving.committed.json"
fi

write_comm_baseline() { # write_comm_baseline <path>
    echo "$COMM_RESULTS" | awk '
        BEGIN { print "{"; print "  \"unit\": \"ns_per_iter (comm/batch/* virtual)\"," }
        /^comm\// {
            if (n++) printf ",\n"
            printf "  \"%s\": %s", $1, $2
        }
        END { print ""; print "}" }' > "$1"
}
write_comm_baseline "$ARTIFACTS/BENCH_comm.candidate.json"
if [[ -f "$COMM_BASELINE" ]]; then
    cp "$COMM_BASELINE" "$ARTIFACTS/BENCH_comm.committed.json"
fi

if [[ "$fail" != 0 ]]; then
    echo "bench_guard: FAILED (baselines $BASELINE / $SERVING_BASELINE / $COMM_BASELINE left untouched)" >&2
    exit 1
fi

if [[ ! -f "$BASELINE" || "${BENCH_BASELINE_UPDATE:-0}" == "1" ]]; then
    write_baseline "$BASELINE"
    echo "==> wrote $BASELINE"
else
    echo "==> baseline unchanged (set BENCH_BASELINE_UPDATE=1 to record a new datapoint)"
fi
if [[ ! -f "$SERVING_BASELINE" || "${BENCH_BASELINE_UPDATE:-0}" == "1" ]]; then
    write_serving_baseline "$SERVING_BASELINE"
    echo "==> wrote $SERVING_BASELINE"
else
    echo "==> serving baseline unchanged (set BENCH_BASELINE_UPDATE=1 to record a new datapoint)"
fi
if [[ ! -f "$COMM_BASELINE" || "${BENCH_BASELINE_UPDATE:-0}" == "1" ]]; then
    write_comm_baseline "$COMM_BASELINE"
    echo "==> wrote $COMM_BASELINE"
else
    echo "==> comm baseline unchanged (set BENCH_BASELINE_UPDATE=1 to record a new datapoint)"
fi
echo "bench_guard: OK"
