//! Failure-injection integration tests: the runtime must degrade gracefully when
//! services cannot start, crash mid-run, or when workloads over-subscribe resources.

use std::time::Duration;

use hpcml::prelude::*;
use hpcml::serving::ModelSpec;

mod common;
use common::wait_until;

fn session() -> Session {
    Session::builder("failures")
        .platform(PlatformId::Local)
        .clock(ClockSpec::scaled(2000.0))
        .seed(99)
        .build()
        .expect("session")
}

#[test]
fn service_fails_when_model_exceeds_gpu_memory() {
    let s = session();
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1))
        .expect("pilot");
    // llama-70b (140 GiB) cannot fit the local platform's 16 GiB GPUs.
    let svc = s
        .submit_service(
            ServiceDescription::new("too-big")
                .model(ModelSpec::sim_llama_70b())
                .gpus(1),
        )
        .expect("submitted");
    let state = svc.wait_final(Duration::from_secs(60)).expect("terminal");
    assert_eq!(state, ServiceState::Failed);
    assert!(svc.error().unwrap().contains("GPU"));
    // The failed service must not leak its slot: a new, correctly sized service fits.
    let ok = s
        .submit_service(
            ServiceDescription::new("fits")
                .model(ModelSpec::noop())
                .gpus(1),
        )
        .expect("submitted");
    ok.wait_ready_timeout(Duration::from_secs(60))
        .expect("ready");
    s.close();
}

#[test]
fn crashed_service_fails_liveness_probe_and_dependent_clients() {
    let s = session();
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1))
        .expect("pilot");
    let svc = s
        .submit_service(
            ServiceDescription::new("crashy")
                .model(ModelSpec::noop())
                .cores(1),
        )
        .expect("service");
    svc.wait_ready().expect("ready");
    assert!(s.service_manager().probe("crashy").unwrap());

    // Simulate a crash: stop the serve loop without going through the manager, so the
    // endpoint disappears from the registry once the loop exits.
    svc.request_stop();
    // Wait until the endpoint is gone.
    let registry = s.endpoint_registry();
    assert!(
        wait_until(&s, 120.0, || registry.lookup("service.crashy").is_none()),
        "endpoint must be unpublished"
    );

    // Probing now reports a communication error (endpoint not found).
    assert!(matches!(
        s.service_manager().probe("crashy"),
        Err(RuntimeError::Comm(_))
    ));
    s.close();
}

#[test]
fn unknown_service_dependency_fails_the_task() {
    let s = session();
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1))
        .expect("pilot");
    // Oversized resource request fails fast (never satisfiable by the node shape).
    let t = s
        .submit_task(TaskDescription::new("impossible").cores(4096))
        .expect("submitted");
    let state = t.wait_final(Duration::from_secs(30)).expect("terminal");
    assert_eq!(state, TaskState::Failed);
    assert!(t.error().is_some());
    s.close();
}

#[test]
fn duplicate_service_names_fail_the_second_instance() {
    let s = session();
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(2))
        .expect("pilot");
    let first = s
        .submit_service(
            ServiceDescription::new("same-name")
                .model(ModelSpec::noop())
                .cores(1),
        )
        .expect("first");
    first.wait_ready().expect("ready");
    let second = s
        .submit_service(
            ServiceDescription::new("same-name")
                .model(ModelSpec::noop())
                .cores(1),
        )
        .expect("second submitted");
    let state = second
        .wait_final(Duration::from_secs(60))
        .expect("terminal");
    assert_eq!(state, ServiceState::Failed);
    assert!(second.error().unwrap().contains("already registered"));
    s.close();
}

#[test]
fn oversubscribed_gpus_serialize_but_complete() {
    let s = session();
    // 1 local node = 2 GPUs; 6 GPU tasks must still all complete by queueing.
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1))
        .expect("pilot");
    let tasks: Vec<_> = (0..6)
        .map(|i| {
            s.submit_task(
                TaskDescription::new(format!("gpu-task-{i}"))
                    .kind(TaskKind::compute_secs(2.0))
                    .gpus(1),
            )
            .expect("task")
        })
        .collect();
    s.wait_tasks(Duration::from_secs(120))
        .expect("all tasks finish");
    assert!(tasks.iter().all(|t| t.state() == TaskState::Done));
    s.close();
}

/// End-to-end elasticity under a seeded fault plan: a 4-node gang on a 5-node
/// pilot loses a member mid-run, is requeued at the front of its class, and
/// completes within its retry budget; the pilot then sheds the failed node and
/// grows back to size. The occupancy oracle at the end confirms nothing leaked
/// across the eviction, requeue, shrink, and expand.
fn elastic_gang_survives_node_failure(shards: usize) {
    let s = Session::builder("elastic")
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(200.0))
        .seed(99)
        .allocator_shards(shards)
        // Node 0 fails 5 virtual seconds after the pilot becomes active, while
        // the gang (which spans it — placement is seeded) is mid-execution.
        .fault_plan(FaultPlan::new().fail_at(5.0, 0))
        .build()
        .expect("session");
    let pilot = s
        .submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(5))
        .expect("pilot");
    let gang = s
        .submit_task(
            TaskDescription::new("gang")
                .kind(TaskKind::compute_secs(60.0))
                .nodes(4)
                .gang_packing(GangPacking::Whole)
                .max_retries(2),
        )
        .expect("gang");
    gang.wait_done_timeout(Duration::from_secs(600))
        .expect("done");
    assert_eq!(gang.state(), TaskState::Done);
    assert_eq!(gang.retries(), 1, "gang lost a member once and requeued");
    assert_eq!(s.metrics().scalar_values("node.failures"), vec![1.0]);
    assert_eq!(pilot.failed_nodes(), 1);
    assert_eq!(pilot.attached_nodes(), 5);
    // `wait_done` observes the state flip; the executor thread releases the
    // gang's slot just after. Let the release land before reading occupancy.
    assert!(
        wait_until(&s, 60.0, || pilot.idle_nodes() == 4),
        "gang slot must be released after completion"
    );

    // Shrink sheds the failed node first; growing back attaches a fresh one.
    assert_eq!(pilot.resize(4).expect("shrink"), 4);
    assert_eq!(pilot.failed_nodes(), 0);
    assert_eq!(pilot.resize(5).expect("expand"), 5);

    // Occupancy oracle: five healthy, fully idle nodes and no reservations.
    assert_eq!(pilot.num_nodes(), 5);
    assert_eq!(pilot.idle_nodes(), 5);
    assert_eq!(pilot.free_cores(), 5 * 64);
    assert_eq!(pilot.reserved_nodes(), 0);
    s.close();
}

#[test]
fn gang_survives_node_failure_and_pilot_resizes_single_shard() {
    elastic_gang_survives_node_failure(1);
}

#[test]
fn gang_survives_node_failure_and_pilot_resizes_four_shards() {
    elastic_gang_survives_node_failure(4);
}

#[test]
fn pilot_request_larger_than_platform_fails_cleanly() {
    let s = session();
    let err = s
        .submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1000))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::Batch(_)));
    // The session remains usable afterwards.
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1))
        .expect("pilot");
    let t = s.submit_task(TaskDescription::new("ok")).expect("task");
    assert_eq!(
        t.wait_done_timeout(Duration::from_secs(30)).unwrap(),
        TaskState::Done
    );
    s.close();
}
