//! Failure-injection integration tests: the runtime must degrade gracefully when
//! services cannot start, crash mid-run, or when workloads over-subscribe resources.

use std::time::Duration;

use hpcml::prelude::*;
use hpcml::serving::ModelSpec;

fn session() -> Session {
    Session::builder("failures")
        .platform(PlatformId::Local)
        .clock(ClockSpec::scaled(2000.0))
        .seed(99)
        .build()
        .expect("session")
}

#[test]
fn service_fails_when_model_exceeds_gpu_memory() {
    let s = session();
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1))
        .expect("pilot");
    // llama-70b (140 GiB) cannot fit the local platform's 16 GiB GPUs.
    let svc = s
        .submit_service(
            ServiceDescription::new("too-big")
                .model(ModelSpec::sim_llama_70b())
                .gpus(1),
        )
        .expect("submitted");
    let state = svc.wait_final(Duration::from_secs(60)).expect("terminal");
    assert_eq!(state, ServiceState::Failed);
    assert!(svc.error().unwrap().contains("GPU"));
    // The failed service must not leak its slot: a new, correctly sized service fits.
    let ok = s
        .submit_service(
            ServiceDescription::new("fits")
                .model(ModelSpec::noop())
                .gpus(1),
        )
        .expect("submitted");
    ok.wait_ready_timeout(Duration::from_secs(60))
        .expect("ready");
    s.close();
}

#[test]
fn crashed_service_fails_liveness_probe_and_dependent_clients() {
    let s = session();
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1))
        .expect("pilot");
    let svc = s
        .submit_service(
            ServiceDescription::new("crashy")
                .model(ModelSpec::noop())
                .cores(1),
        )
        .expect("service");
    svc.wait_ready().expect("ready");
    assert!(s.service_manager().probe("crashy").unwrap());

    // Simulate a crash: stop the serve loop without going through the manager, so the
    // endpoint disappears from the registry once the loop exits.
    svc.request_stop();
    // Wait until the endpoint is gone.
    let registry = s.endpoint_registry();
    for _ in 0..200 {
        if registry.lookup("service.crashy").is_none() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        registry.lookup("service.crashy").is_none(),
        "endpoint must be unpublished"
    );

    // Probing now reports a communication error (endpoint not found).
    assert!(matches!(
        s.service_manager().probe("crashy"),
        Err(RuntimeError::Comm(_))
    ));
    s.close();
}

#[test]
fn unknown_service_dependency_fails_the_task() {
    let s = session();
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1))
        .expect("pilot");
    // Oversized resource request fails fast (never satisfiable by the node shape).
    let t = s
        .submit_task(TaskDescription::new("impossible").cores(4096))
        .expect("submitted");
    let state = t.wait_final(Duration::from_secs(30)).expect("terminal");
    assert_eq!(state, TaskState::Failed);
    assert!(t.error().is_some());
    s.close();
}

#[test]
fn duplicate_service_names_fail_the_second_instance() {
    let s = session();
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(2))
        .expect("pilot");
    let first = s
        .submit_service(
            ServiceDescription::new("same-name")
                .model(ModelSpec::noop())
                .cores(1),
        )
        .expect("first");
    first.wait_ready().expect("ready");
    let second = s
        .submit_service(
            ServiceDescription::new("same-name")
                .model(ModelSpec::noop())
                .cores(1),
        )
        .expect("second submitted");
    let state = second
        .wait_final(Duration::from_secs(60))
        .expect("terminal");
    assert_eq!(state, ServiceState::Failed);
    assert!(second.error().unwrap().contains("already registered"));
    s.close();
}

#[test]
fn oversubscribed_gpus_serialize_but_complete() {
    let s = session();
    // 1 local node = 2 GPUs; 6 GPU tasks must still all complete by queueing.
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1))
        .expect("pilot");
    let tasks: Vec<_> = (0..6)
        .map(|i| {
            s.submit_task(
                TaskDescription::new(format!("gpu-task-{i}"))
                    .kind(TaskKind::compute_secs(2.0))
                    .gpus(1),
            )
            .expect("task")
        })
        .collect();
    s.wait_tasks(Duration::from_secs(120))
        .expect("all tasks finish");
    assert!(tasks.iter().all(|t| t.state() == TaskState::Done));
    s.close();
}

#[test]
fn pilot_request_larger_than_platform_fails_cleanly() {
    let s = session();
    let err = s
        .submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1000))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::Batch(_)));
    // The session remains usable afterwards.
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(1))
        .expect("pilot");
    let t = s.submit_task(TaskDescription::new("ok")).expect("task");
    assert_eq!(
        t.wait_done_timeout(Duration::from_secs(30)).unwrap(),
        TaskState::Done
    );
    s.close();
}
