//! Integration tests running the three LUCID pipelines end to end at reduced scale.

use std::time::Duration;

use hpcml::prelude::*;

fn session(name: &str) -> Session {
    let s = Session::builder(name)
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(10_000.0))
        .seed(2024)
        .build()
        .expect("session");
    s.submit_pilot(
        PilotDescription::new(PlatformId::Delta)
            .nodes(4)
            .runtime_secs(36_000.0),
    )
    .expect("pilot");
    s
}

#[test]
fn cell_painting_pipeline_runs_to_completion() {
    let s = session("cp");
    let config = CellPaintingConfig::test_scale();
    let pipeline = cell_painting_pipeline(&config);
    let report = PipelineRunner::new(&s)
        .stage_timeout(Duration::from_secs(300))
        .run(&pipeline)
        .expect("run");
    assert!(report.all_succeeded(), "{}", report.render());
    assert_eq!(report.stages.len(), 2);
    assert_eq!(report.tasks_done(), pipeline.total_tasks());
    // Stage 1 staged the imagery shards.
    assert!(s.metrics().scalar_summary("staging.mib").count >= config.shards);
    // The feature-extraction service answered the classification client.
    assert_eq!(
        s.metrics().response_count() as u32,
        config.inference_requests
    );
    s.close();
}

#[test]
fn signature_detection_pipeline_runs_to_completion() {
    let s = session("sd");
    let config = SignatureDetectionConfig::test_scale();
    let pipeline = signature_detection_pipeline(&config);
    let report = PipelineRunner::new(&s)
        .stage_timeout(Duration::from_secs(300))
        .run(&pipeline)
        .expect("run");
    assert!(report.all_succeeded(), "{}", report.render());
    assert_eq!(report.stages.len(), 3);
    // Every sample sent its LLM comparison requests.
    let expected_requests = config.samples as u32 * config.llm_requests_per_sample;
    assert_eq!(s.metrics().response_count() as u32, expected_requests);
    // Stage ordering: VEP annotation finished before the LLM comparison started.
    assert!(report.stages[0].name.contains("vep") || report.stages[0].name.contains("data"));
    s.close();
}

#[test]
fn uncertainty_quantification_pipeline_runs_to_completion() {
    let s = session("uq");
    let config = UqConfig::test_scale();
    let pipeline = uncertainty_quantification_pipeline(&config);
    let report = PipelineRunner::new(&s)
        .stage_timeout(Duration::from_secs(300))
        .run(&pipeline)
        .expect("run");
    assert!(report.all_succeeded(), "{}", report.render());
    assert_eq!(report.stages.len(), 3);
    // The three-level hierarchy ran every (model, method, seed) combination.
    assert_eq!(report.stages[1].tasks_done, config.total_uq_tasks());
    assert_eq!(
        s.metrics().response_count() as u32,
        config.postprocess_requests
    );
    s.close();
}

#[test]
fn all_three_pipelines_share_one_session_sequentially() {
    // The paper's vision: one runtime session hosting several hybrid pipelines.
    let s = session("all");
    let runner = PipelineRunner::new(&s).stage_timeout(Duration::from_secs(300));
    let mut total_tasks = 0;

    let cp = cell_painting_pipeline(&CellPaintingConfig::test_scale());
    total_tasks += cp.total_tasks();
    assert!(runner.run(&cp).expect("cp").all_succeeded());

    let sd = signature_detection_pipeline(&SignatureDetectionConfig::test_scale());
    total_tasks += sd.total_tasks();
    assert!(runner.run(&sd).expect("sd").all_succeeded());

    let uq = uncertainty_quantification_pipeline(&UqConfig::test_scale());
    total_tasks += uq.total_tasks();
    assert!(runner.run(&uq).expect("uq").all_succeeded());

    assert_eq!(s.task_manager().len(), total_tasks);
    assert_eq!(s.task_manager().finished(), total_tasks);
    s.close();
}
