//! Shape tests: reduced-scale versions of the paper's experiments asserting the
//! qualitative results the figures report (who dominates, where the knees are, how
//! strong/weak scaling behaves). The full sweeps live in the `hpcml-bench` binaries.

use hpcml::serving::ModelSpec;
use hpcml_bench::exp1::{run_one as bootstrap_one, BootstrapConfig};
use hpcml_bench::exp2::{run_one as scaling_one, Deployment, ScalingConfig};
use hpcml_bench::tables::{experiment_setup_table, table1_rows};

fn noop_config(deployment: Deployment) -> ScalingConfig {
    ScalingConfig {
        service_counts: vec![],
        strong_clients: 4,
        requests_per_client: 16,
        model: ModelSpec::noop(),
        deployment,
        // Dilate time 4x (like `ScalingConfig::paper_noop`) so the simulated WAN
        // latency dominates real scheduling jitter: wall-clock hiccups leak into the
        // sim-domain component means at `clock_scale`, and a loaded single-core
        // runner can inject ~1 ms of wall noise into the local measurement.
        clock_scale: 0.25,
        max_tokens: 1,
        serving: hpcml::serving::ServingConfig::default(),
        seed: 77,
    }
}

fn llm_config(deployment: Deployment) -> ScalingConfig {
    ScalingConfig {
        service_counts: vec![],
        strong_clients: 4,
        requests_per_client: 4,
        model: ModelSpec::sim_llama_8b(),
        deployment,
        // Mild compression: real scheduling jitter on a single-core runner stays small
        // relative to the seconds of inference time being asserted on.
        clock_scale: 100.0,
        max_tokens: 64,
        serving: hpcml::serving::ServingConfig::default(),
        seed: 77,
    }
}

#[test]
fn fig3_shape_init_dominates_and_publish_stays_below_launch() {
    let config = BootstrapConfig {
        instance_counts: vec![],
        clock_scale: 3000.0,
        seed: 21,
        model: ModelSpec::sim_llama_8b(),
    };
    let r = bootstrap_one(8, &config);
    let launch = r.components["launch"].mean;
    let init = r.components["init"].mean;
    let publish = r.components["publish"].mean;
    assert!(
        init > 5.0 * launch,
        "init ({init:.1}s) dominates launch ({launch:.1}s)"
    );
    assert!(
        publish < launch,
        "publish ({publish:.2}s) stays below launch ({launch:.2}s)"
    );
}

#[test]
fn fig4_fig5_shape_remote_communication_exceeds_local() {
    let local = scaling_one(4, 4, &noop_config(Deployment::Local));
    let remote = scaling_one(4, 4, &noop_config(Deployment::Remote));
    // NOOP: inference ~ 0 everywhere; communication is the dominant component and the
    // remote deployment pays the WAN latency.
    assert!(local.components["inference"].mean < 1e-6);
    assert!(remote.components["inference"].mean < 1e-6);
    assert!(local.components["communication"].mean > local.components["service"].mean);
    assert!(
        remote.components["communication"].mean > 2.0 * local.components["communication"].mean,
        "remote {:.6} vs local {:.6}",
        remote.components["communication"].mean,
        local.components["communication"].mean
    );
}

#[test]
fn fig4_strong_scaling_reduces_queueing_for_noop() {
    // More services behind the same number of clients should never increase per-request
    // service time (queueing); totals stay in the sub-millisecond regime.
    let one = scaling_one(4, 1, &noop_config(Deployment::Local));
    let four = scaling_one(4, 4, &noop_config(Deployment::Local));
    assert!(four.components["service"].mean <= one.components["service"].mean * 1.5);
    assert!(one.total.mean < 0.05 && four.total.mean < 0.05);
}

#[test]
fn fig6_shape_inference_dominates_and_locality_is_secondary() {
    let local = scaling_one(2, 2, &llm_config(Deployment::Local));
    let remote = scaling_one(2, 2, &llm_config(Deployment::Remote));
    for r in [&local, &remote] {
        assert!(
            r.components["inference"].mean > 5.0 * r.components["communication"].mean,
            "inference must dominate communication: {:?}",
            r.components
        );
    }
    // Model locality is a secondary concern once inference dominates (paper §IV-D).
    let ratio = remote.total.mean / local.total.mean;
    assert!(
        (0.5..2.0).contains(&ratio),
        "total RT local vs remote should be comparable, ratio {ratio}"
    );
}

#[test]
fn fig6_strong_scaling_single_service_queues_requests() {
    let scarce = scaling_one(4, 1, &llm_config(Deployment::Local));
    let ample = scaling_one(4, 4, &llm_config(Deployment::Local));
    // With one single-threaded backend behind four clients the queueing (service
    // component) must be far larger than with four services.
    assert!(
        scarce.components["service"].mean > 2.0 * ample.components["service"].mean,
        "scarce {:.2}s vs ample {:.2}s",
        scarce.components["service"].mean,
        ample.components["service"].mean
    );
}

#[test]
fn tables_match_paper_dimensions() {
    assert_eq!(table1_rows().len(), 8);
    let setup = experiment_setup_table();
    assert_eq!(setup.len(), 5);
    assert!(setup
        .iter()
        .any(|r| r.platform == "Frontier" && r.models == "1-640"));
}
