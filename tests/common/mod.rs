//! Helpers shared across the integration-test binaries.
//!
//! Each test binary that needs them declares `mod common;` — rustc compiles this
//! module once per binary, so every helper is `#[allow(dead_code)]`: a binary
//! that uses only one of them must not trip `clippy -D warnings` for the rest.

use std::time::Duration;

use hpcml::prelude::*;

/// Poll `cond` on the session clock until it holds or `timeout_secs` virtual
/// seconds elapse. Sleeping on the session clock keeps the wait proportional to
/// simulated time regardless of the clock scale, instead of burning fixed
/// real-time polls.
#[allow(dead_code)]
pub fn wait_until(s: &Session, timeout_secs: f64, mut cond: impl FnMut() -> bool) -> bool {
    let clock = s.clock();
    let deadline = clock.now().as_secs_f64() + timeout_secs;
    while !cond() {
        if clock.now().as_secs_f64() >= deadline {
            return false;
        }
        clock.sleep(Duration::from_millis(50));
    }
    true
}
