//! Serving-plane integration tests: continuous micro-batching, replica pools and
//! deadline-aware admission control, exercised end to end through the session API and
//! directly against the `hpcml::serving` crate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hpcml::comm::link::Link;
use hpcml::comm::message::Message;
use hpcml::comm::ReqRepServer;
use hpcml::prelude::*;
use hpcml::serving::protocol::{
    HDR_BATCH_SIZE, HDR_ERROR, HDR_REQUEST_ID, HDR_RETRY_AFTER_SECS, HDR_SERVICE_SECS,
    KIND_INFER_REPLY, KIND_SHED,
};
use hpcml::serving::service::{inference_request_message, inference_request_message_with_deadline};
use hpcml::serving::{null_sink, InferenceRequest, InferenceService, ModelHost, ServingConfig};
use hpcml::sim::clock::SharedClock;

fn session(scale: f64) -> Session {
    Session::builder("serving-plane")
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(scale))
        .seed(20250)
        .build()
        .expect("session")
}

/// End to end through the runtime: a batched service answers a burst of concurrent
/// clients, the batch assembler actually groups requests, and the serving metrics show
/// up in the runtime metrics store next to the task/service scalars.
#[test]
fn batched_service_serves_concurrent_clients_through_the_session() {
    let s = session(200.0);
    s.submit_pilot(
        PilotDescription::new(PlatformId::Delta)
            .nodes(2)
            .runtime_secs(7200.0),
    )
    .expect("pilot");

    let svc = s
        .submit_service(
            ServiceDescription::new("batched-llm")
                .model(ModelSpec::sim_llama_8b())
                .gpus(1)
                .max_batch_size(8)
                .batch_latency_budget_secs(0.2),
        )
        .expect("service");
    svc.wait_ready_timeout(Duration::from_secs(120))
        .expect("ready");

    let tasks: Vec<_> = (0..4)
        .map(|i| {
            s.submit_task(
                TaskDescription::new(format!("client-{i}"))
                    .kind(TaskKind::inference_client("batched-llm", 3))
                    .cores(1),
            )
            .expect("task")
        })
        .collect();
    for t in &tasks {
        assert_eq!(
            t.wait_done_timeout(Duration::from_secs(600)).expect("done"),
            TaskState::Done
        );
    }
    assert_eq!(s.metrics().response_count(), 12);

    // The serving plane reported its metrics through the executor sink.
    let batch_sizes = s.metrics().scalar_values("serving.batch.size");
    assert!(!batch_sizes.is_empty(), "batch sizes recorded");
    assert!(
        batch_sizes.iter().cloned().fold(0.0f64, f64::max) >= 2.0,
        "concurrent clients should batch: {batch_sizes:?}"
    );
    assert!(!s.metrics().scalar_values("serving.queue.depth").is_empty());
    s.close();
}

/// A replicated service widens its resource request to a gang and splits concurrent
/// load across replicas, halving the wall time of two simultaneous requests.
#[test]
fn replicated_service_places_a_gang_and_splits_load() {
    let s = session(200.0);
    s.submit_pilot(
        PilotDescription::new(PlatformId::Delta)
            .nodes(3)
            .runtime_secs(7200.0),
    )
    .expect("pilot");

    let desc = ServiceDescription::new("replicated-llm")
        .model(ModelSpec::sim_llama_8b())
        .gpus(1)
        .replicas(2);
    assert_eq!(desc.resources.nodes, 2, "replicas widen the gang");
    let svc = s.submit_service(desc).expect("service");
    svc.wait_ready_timeout(Duration::from_secs(120))
        .expect("ready");

    let tasks: Vec<_> = (0..2)
        .map(|i| {
            s.submit_task(
                TaskDescription::new(format!("rc-{i}"))
                    .kind(TaskKind::inference_client("replicated-llm", 2))
                    .cores(1),
            )
            .expect("task")
        })
        .collect();
    for t in &tasks {
        assert_eq!(
            t.wait_done_timeout(Duration::from_secs(600)).expect("done"),
            TaskState::Done
        );
    }
    assert_eq!(s.metrics().response_count(), 4);
    assert!(
        !s.metrics()
            .scalar_values("serving.replica.outstanding")
            .is_empty(),
        "replica routing recorded outstanding counts"
    );
    s.close();
}

// ---------------------------------------------------------------- crate-level tests

fn loaded_hosts(n: usize, clock: &SharedClock, seed: u64) -> Vec<Arc<ModelHost>> {
    (0..n)
        .map(|i| {
            let h = Arc::new(ModelHost::from_spec(
                ModelSpec::sim_llama_8b(),
                Arc::clone(clock),
                seed + i as u64,
            ));
            h.load();
            h
        })
        .collect()
}

struct Harness {
    service: Arc<InferenceService>,
    stop: Arc<AtomicBool>,
    serve_thread: thread::JoinHandle<u64>,
    client: hpcml::comm::ReqRepClient,
}

fn start(clock: &SharedClock, replicas: usize, config: ServingConfig) -> Harness {
    let hosts = loaded_hosts(replicas, clock, 91);
    let service = Arc::new(InferenceService::with_config(
        "svc.plane",
        hosts,
        Arc::clone(clock),
        92,
        config,
        null_sink(),
    ));
    let endpoint = ReqRepServer::new("svc.plane");
    let client = endpoint.client(Link::instant(Arc::clone(clock)));
    let stop = Arc::new(AtomicBool::new(false));
    let (svc, stop2) = (Arc::clone(&service), Arc::clone(&stop));
    let serve_thread = thread::spawn(move || svc.serve(&endpoint, &stop2));
    Harness {
        service,
        stop,
        serve_thread,
        client,
    }
}

/// Shed-under-overload: with deadline shedding on, an overloaded service sheds the
/// requests it cannot serve in time and the requests it *does* admit still see a
/// bounded queue delay — the `service` component of every admitted reply stays within
/// a small multiple of the deadline the admission estimate promised to honour.
#[test]
fn overload_sheds_and_admitted_requests_keep_bounded_delay() {
    let clock: SharedClock = ClockSpec::scaled(500.0).build();
    let config = ServingConfig::default()
        .max_batch_size(4)
        .batch_latency_budget_secs(0.05)
        .queue_capacity(64)
        .shed_deadlines(true);
    let h = start(&clock, 1, config);

    // Calibrate the service-time estimate with one uncontended request.
    let warm = InferenceRequest::new("w ".repeat(40), 64);
    let reply = h
        .client
        .request(inference_request_message("svc.plane", &warm))
        .unwrap();
    assert_eq!(
        reply.kind,
        KIND_INFER_REPLY,
        "{:?}",
        reply.header(HDR_ERROR)
    );

    // Flood: 24 concurrent requests, each demanding completion within one deadline.
    // A single replica at ~2-4 s per batch cannot serve them all in 10 s, so the tail
    // must shed rather than queue without bound.
    let deadline_secs = 10.0;
    let handles: Vec<_> = (0..24)
        .map(|i| {
            let client = h.client.clone();
            thread::spawn(move || {
                let req =
                    InferenceRequest::new("q ".repeat(40), 64).from_client(format!("task.{i}"));
                client
                    .request(inference_request_message_with_deadline(
                        "svc.plane",
                        &req,
                        deadline_secs,
                    ))
                    .unwrap()
            })
        })
        .collect();
    let replies: Vec<Message> = handles.into_iter().map(|t| t.join().unwrap()).collect();

    let shed: Vec<&Message> = replies.iter().filter(|r| r.kind == KIND_SHED).collect();
    let admitted: Vec<&Message> = replies
        .iter()
        .filter(|r| r.kind == KIND_INFER_REPLY)
        .collect();
    assert_eq!(shed.len() + admitted.len(), replies.len(), "{replies:?}");
    assert!(
        !shed.is_empty(),
        "an overloaded service must shed some of 24 deadline-bound requests"
    );
    assert!(!admitted.is_empty(), "some requests must still be admitted");
    for s in &shed {
        assert!(s.f64_header(HDR_RETRY_AFTER_SECS).unwrap() > 0.0);
    }
    // Bounded tail for admitted work: the admission estimate is an EWMA, so allow a
    // small multiple of the deadline, but nothing resembling the unbounded queue the
    // 24-deep flood would otherwise build (~60+ s of backlog).
    for r in &admitted {
        let service_secs = r.f64_header(HDR_SERVICE_SECS).unwrap();
        assert!(
            service_secs <= deadline_secs * 3.0,
            "admitted request queued {service_secs}s against a {deadline_secs}s deadline"
        );
    }

    h.stop.store(true, Ordering::Release);
    h.serve_thread.join().unwrap();
}

/// Per-client FIFO through the whole plane: a client that sends requests one at a time
/// observes its replies in send order (REQ/REP guarantees per-request pairing; this
/// asserts the batched path never swaps two of the same client's requests).
#[test]
fn batched_dispatch_preserves_per_client_order_and_batches() {
    let clock: SharedClock = ClockSpec::scaled(500.0).build();
    let config = ServingConfig::default()
        .max_batch_size(8)
        .batch_latency_budget_secs(0.1);
    let h = start(&clock, 1, config);

    let handles: Vec<_> = (0..6)
        .map(|c| {
            let client = h.client.clone();
            thread::spawn(move || {
                let mut ids = Vec::new();
                for i in 0..3 {
                    let req = InferenceRequest::new("p ".repeat(20), 32)
                        .from_client(format!("client.{c}"));
                    let sent_id = req.request_id.clone();
                    let reply = client
                        .request(inference_request_message("svc.plane", &req))
                        .unwrap();
                    assert_eq!(reply.kind, KIND_INFER_REPLY, "client {c} req {i}");
                    assert_eq!(
                        reply.header(HDR_REQUEST_ID),
                        Some(sent_id.as_str()),
                        "reply pairs with the request just sent"
                    );
                    ids.push(sent_id);
                }
                ids
            })
        })
        .collect();
    for t in handles {
        assert_eq!(t.join().unwrap().len(), 3);
    }
    assert_eq!(h.service.requests_served(), 18);

    h.stop.store(true, Ordering::Release);
    h.serve_thread.join().unwrap();
}

/// Runtime elasticity of the pool: scale a replica up, drain one down, and verify
/// routing only ever targets live replicas while in-flight work completes.
#[test]
fn pool_scale_up_and_drain_down() {
    let clock: SharedClock = ClockSpec::scaled(500.0).build();
    let config = ServingConfig::default().replicas(2);
    let h = start(&clock, 2, config);
    let pool = Arc::clone(h.service.pool());
    assert_eq!(pool.replica_count(), 2);
    assert_eq!(pool.live_replicas(), 2);

    // Scale up a third replica at runtime.
    let extra = loaded_hosts(1, &clock, 300).remove(0);
    let id3 = pool.scale_up(extra);
    assert_eq!(pool.replica_count(), 3);

    // Keep the pool busy while draining the new replica.
    let busy: Vec<_> = (0..4)
        .map(|_| {
            let client = h.client.clone();
            thread::spawn(move || {
                let req = InferenceRequest::new("d ".repeat(30), 48);
                client
                    .request(inference_request_message("svc.plane", &req))
                    .unwrap()
            })
        })
        .collect();
    assert!(pool.begin_drain(id3), "drain accepted");
    assert_eq!(pool.live_replicas(), 2, "draining replica is unroutable");
    for t in busy {
        assert_eq!(t.join().unwrap().kind, KIND_INFER_REPLY);
    }

    // Once idle, the drained replica reaps; the last live replicas never drain.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while pool.replica_count() > 2 && std::time::Instant::now() < deadline {
        pool.reap_drained();
        thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(pool.replica_count(), 2);
    assert!(!pool.begin_drain(9999), "unknown replica id refuses");

    h.stop.store(true, Ordering::Release);
    h.serve_thread.join().unwrap();
}

/// The legacy single-replica, unbatched configuration still reports batch size 1 on
/// every reply — the escape hatch reproduces seed behaviour.
#[test]
fn default_config_is_unbatched_single_replica() {
    let clock: SharedClock = ClockSpec::scaled(1000.0).build();
    let h = start(&clock, 1, ServingConfig::default());
    for _ in 0..3 {
        let req = InferenceRequest::new("one at a time", 16);
        let reply = h
            .client
            .request(inference_request_message("svc.plane", &req))
            .unwrap();
        assert_eq!(reply.kind, KIND_INFER_REPLY);
        assert_eq!(reply.header(HDR_BATCH_SIZE), Some("1"));
    }
    h.stop.store(true, Ordering::Release);
    h.serve_thread.join().unwrap();
}
