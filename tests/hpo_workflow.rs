//! Integration test of the HPO engine driving concurrent training tasks through the
//! runtime — the asynchronous "multiple models trained concurrently, optimizing
//! hyperparameters" pattern of the Cell Painting use case (paper §II-A).

use std::time::Duration;

use hpcml::prelude::*;

/// Synthetic validation loss: smooth, minimised at lr = 1e-3, batch = 96.
fn objective(params: &std::collections::BTreeMap<String, f64>) -> f64 {
    let lr = params["learning_rate"];
    let bs = params["batch_size"];
    (lr.log10() + 3.0).powi(2) + ((bs - 96.0) / 96.0).powi(2)
}

#[test]
fn hpo_rounds_of_concurrent_training_tasks_improve_the_best_trial() {
    let s = Session::builder("hpo")
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(10_000.0))
        .seed(5150)
        .build()
        .expect("session");
    s.submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(2))
        .expect("pilot");

    let mut study = HpoStudy::new(
        HpoStudy::cell_painting_space(),
        SamplerKind::QuantileGuided,
        7,
    );
    let rounds = 4;
    let trials_per_round = 4;
    let mut best_per_round = Vec::new();

    for _ in 0..rounds {
        // Suggest a batch of trials and run one GPU "training task" per trial,
        // concurrently (the pilot has 8 GPUs, so a round fits at once).
        let trials: Vec<Trial> = (0..trials_per_round).map(|_| study.suggest()).collect();
        let handles: Vec<(usize, hpcml::runtime::records::TaskHandle)> = trials
            .iter()
            .map(|t| {
                let handle = s
                    .submit_task(
                        TaskDescription::new(format!("train-trial-{}", t.id))
                            .kind(TaskKind::compute_secs(5.0))
                            .gpus(1)
                            .tag("trial", t.id.to_string()),
                    )
                    .expect("training task");
                (t.id, handle)
            })
            .collect();
        for (trial_id, handle) in handles {
            assert_eq!(
                handle.wait_done_timeout(Duration::from_secs(120)).unwrap(),
                TaskState::Done
            );
            let trial = trials.iter().find(|t| t.id == trial_id).unwrap();
            study.report(trial_id, objective(&trial.params));
        }
        best_per_round.push(study.best().unwrap().objective.unwrap());
    }

    // The best objective must be monotonically non-increasing across rounds and end up
    // reasonably close to the optimum of the synthetic objective.
    for w in best_per_round.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-12,
            "best objective must not regress: {best_per_round:?}"
        );
    }
    assert!(
        *best_per_round.last().unwrap() < 2.0,
        "the guided sampler should approach the optimum: {best_per_round:?}"
    );
    assert_eq!(study.len(), rounds * trials_per_round);
    assert_eq!(s.task_manager().finished(), rounds * trials_per_round);
    s.close();
}

#[test]
fn gpu_training_rounds_respect_resource_limits() {
    // A pilot with 4 GPUs running 12 one-GPU trials: tasks must queue, never
    // oversubscribe, and all complete.
    let s = Session::builder("hpo-limits")
        .platform(PlatformId::Local)
        .clock(ClockSpec::scaled(10_000.0))
        .seed(99)
        .build()
        .expect("session");
    s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(2))
        .expect("pilot");

    let handles: Vec<_> = (0..12)
        .map(|i| {
            s.submit_task(
                TaskDescription::new(format!("trial-{i}"))
                    .kind(TaskKind::compute_secs(2.0))
                    .gpus(1),
            )
            .expect("task")
        })
        .collect();
    s.wait_tasks(Duration::from_secs(120)).expect("all done");
    assert!(handles.iter().all(|h| h.state() == TaskState::Done));

    // With 4 GPUs and 12 two-second tasks, the critical path is at least 3 waves long.
    let exec_times: Vec<f64> = handles
        .iter()
        .map(|h| {
            let ts = h.timestamps();
            ts["Done"] - ts["Executing"]
        })
        .collect();
    assert!(
        exec_times.iter().all(|d| *d >= 1.8),
        "every trial ran its full kernel: {exec_times:?}"
    );
    let makespan = handles
        .iter()
        .map(|h| h.timestamps()["Done"])
        .fold(f64::MIN, f64::max)
        - handles
            .iter()
            .map(|h| h.timestamps()["Scheduling"])
            .fold(f64::MAX, f64::min);
    assert!(
        makespan >= 5.5,
        "12 tasks on 4 GPUs need at least three 2 s waves, got {makespan}"
    );
    s.close();
}
