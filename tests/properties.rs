//! Property-based tests (proptest) over the core data structures and invariants:
//! message codec round-trips, statistics correctness, resource-accounting conservation,
//! state-machine legality, distribution bounds, and scheduler safety.

use proptest::prelude::*;

use hpcml::comm::message::Message;
use hpcml::platform::batch::{AllocationRequest, BatchSystem};
use hpcml::platform::resources::{NodeSpec, NodeState, ResourceRequest};
use hpcml::platform::PlatformId;
use hpcml::runtime::states::{ServiceState, TaskState};
use hpcml::sim::clock::ClockSpec;
use hpcml::sim::dist::Dist;
use hpcml::sim::stats::{percentile_sorted, OnlineStats, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoding then decoding a message yields the original, for arbitrary topics,
    /// kinds, headers, and binary payloads.
    #[test]
    fn message_codec_roundtrip(
        topic in "[a-zA-Z0-9._-]{0,40}",
        kind in "[a-zA-Z0-9._-]{0,20}",
        headers in prop::collection::btree_map("[a-z0-9_.]{1,16}", "[ -~]{0,32}", 0..8),
        payload in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut msg = Message::new(topic, kind).with_payload(payload);
        for (k, v) in headers {
            msg = msg.with_header(k, v);
        }
        let decoded = Message::decode(msg.encode()).expect("decode");
        prop_assert_eq!(decoded, msg);
    }

    /// Truncating an encoded frame never panics and never yields a bogus success that
    /// differs from the original message.
    #[test]
    fn message_codec_rejects_or_matches_on_truncation(
        text in "[ -~]{0,256}",
        cut_fraction in 0.0f64..1.0,
    ) {
        let msg = Message::new("topic", "kind").with_text(&text);
        let encoded = msg.encode();
        let cut = ((encoded.len() as f64) * cut_fraction) as usize;
        match Message::decode(encoded.slice(0..cut)) {
            Ok(decoded) => prop_assert_eq!(decoded, msg),
            Err(_) => {}
        }
    }

    /// Welford statistics match the naive two-pass computation.
    #[test]
    fn online_stats_matches_naive(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &v in &values {
            s.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-3 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), values.len() as u64);
    }

    /// Percentiles are monotone in the quantile and bounded by min/max.
    #[test]
    fn percentiles_are_monotone(values in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let s = Summary::from_slice(&values);
        prop_assert!(s.min <= s.p50 + 1e-9);
        prop_assert!(s.p50 <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        let q = percentile_sorted(&sorted, 0.3);
        prop_assert!(q >= s.min - 1e-9 && q <= s.max + 1e-9);
    }

    /// Distribution samples respect their analytic bounds.
    #[test]
    fn distribution_samples_are_bounded(seed in any::<u64>(), lo in 0.0f64..10.0, width in 0.1f64..10.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hi = lo + width;
        let u = Dist::uniform(lo, hi);
        let t = Dist::TruncatedNormal { mean: lo, std: width, lo, hi };
        let n = Dist::normal(lo, width);
        for _ in 0..64 {
            let v = u.sample(&mut rng);
            prop_assert!(v >= lo && v < hi);
            let v = t.sample(&mut rng);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
            prop_assert!(n.sample(&mut rng) >= 0.0, "normal samples are clamped at zero");
        }
    }

    /// Node reserve/release conserves resources for arbitrary request sequences.
    #[test]
    fn node_accounting_conserves_resources(
        requests in prop::collection::vec((1u32..8, 0u32..4, 0.0f64..64.0), 1..32)
    ) {
        let spec = NodeSpec::new(16, 4, 256.0, 40.0);
        let mut node = NodeState::new("prop-node", spec);
        let mut reserved = Vec::new();
        for (cores, gpus, mem) in requests {
            let req = ResourceRequest { cores, gpus, mem_gib: mem };
            if let Ok(r) = node.try_reserve(&req) {
                prop_assert_eq!(r.0.len(), cores as usize);
                prop_assert_eq!(r.1.len(), gpus as usize);
                reserved.push(r);
            }
            prop_assert!(node.free_cores() <= spec.cores);
            prop_assert!(node.free_gpus() <= spec.gpus);
            prop_assert!(node.free_mem_gib() >= -1e-9);
        }
        for (cores, gpus, mem) in reserved {
            node.release(&cores, &gpus, mem);
        }
        prop_assert!(node.is_idle());
    }

    /// Allocation-level slot accounting also conserves resources.
    #[test]
    fn allocation_slots_conserve_resources(ops in prop::collection::vec((1u32..16, 0u32..3), 1..40)) {
        let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 1);
        let alloc = batch.submit(AllocationRequest::nodes(2)).unwrap();
        let total_cores = alloc.total_cores();
        let total_gpus = alloc.total_gpus();
        let mut slots = Vec::new();
        for (cores, gpus) in ops {
            if let Ok(slot) = alloc.allocate_slot(&ResourceRequest { cores, gpus, mem_gib: 0.0 }) {
                slots.push(slot);
            }
            prop_assert!(alloc.free_cores() <= total_cores);
            prop_assert!(alloc.free_gpus() <= total_gpus);
        }
        for slot in &slots {
            alloc.release_slot(slot).unwrap();
        }
        prop_assert_eq!(alloc.free_cores(), total_cores);
        prop_assert_eq!(alloc.free_gpus(), total_gpus);
        prop_assert!(alloc.is_idle());
    }

    /// Random walks through the task state machine only ever follow legal transitions
    /// and always terminate in a final state within a bounded number of steps.
    #[test]
    fn task_state_walks_reach_terminal_states(choices in prop::collection::vec(any::<u8>(), 1..32)) {
        let mut state = TaskState::New;
        let mut steps = 0;
        for c in choices {
            let successors = state.successors();
            if successors.is_empty() {
                break;
            }
            let next = successors[(c as usize) % successors.len()];
            prop_assert!(state.can_transition_to(next));
            state = next;
            steps += 1;
        }
        prop_assert!(steps <= 6, "the task state graph has no cycles, walk length {steps}");
    }

    /// Same for the service state machine, and the bootstrap components only label the
    /// three bootstrap phases.
    #[test]
    fn service_state_walks_are_legal(choices in prop::collection::vec(any::<u8>(), 1..32)) {
        let mut state = ServiceState::New;
        let mut bootstrap_phases = 0;
        for c in choices {
            let successors = state.successors();
            if successors.is_empty() {
                break;
            }
            let next = successors[(c as usize) % successors.len()];
            prop_assert!(state.can_transition_to(next));
            if next.bootstrap_component().is_some() {
                bootstrap_phases += 1;
            }
            state = next;
        }
        prop_assert!(bootstrap_phases <= 3);
    }
}
