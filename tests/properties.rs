//! Property-based tests over the core data structures and invariants: message codec
//! round-trips, statistics correctness, resource-accounting conservation, state-machine
//! legality, distribution bounds, and scheduler safety.
//!
//! The environment has no registry access, so instead of `proptest` these use a small
//! hand-rolled harness: each property runs over many seeded-random cases (same binary →
//! same cases), and failures report the offending case number and seed so they can be
//! replayed with a plain unit test.

use hpcml::comm::message::Message;
use hpcml::platform::batch::{AllocationRequest, BatchSystem};
use hpcml::platform::resources::{
    GangPacking, NodeSpec, NodeState, ResourceError, ResourceRequest,
};
use hpcml::platform::PlatformId;
use hpcml::runtime::states::{ServiceState, TaskState};
use hpcml::sim::clock::ClockSpec;
use hpcml::sim::dist::Dist;
use hpcml::sim::stats::{percentile_sorted, OnlineStats, Summary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// Run `body` over `CASES` deterministic seeds, labelling failures with the case seed.
fn for_each_case(name: &str, mut body: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let seed = 0xC0FFEE ^ (case * 0x9E37_79B9);
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!("property {name} failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(panic);
        }
    }
}

fn random_token(rng: &mut StdRng, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.gen_range(0usize..max_len + 1);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0usize..alphabet.len())] as char)
        .collect()
}

const TOPIC_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
const KEY_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_.";

/// Encoding then decoding a message yields the original, for arbitrary topics, kinds,
/// headers, and binary payloads — and `encoded_len` is exact.
#[test]
fn message_codec_roundtrip() {
    for_each_case("message_codec_roundtrip", |rng| {
        let topic = random_token(rng, TOPIC_ALPHABET, 40);
        let kind = random_token(rng, TOPIC_ALPHABET, 20);
        let payload: Vec<u8> = (0..rng.gen_range(0usize..2048))
            .map(|_| rng.gen_range(0u32..256) as u8)
            .collect();
        let mut msg = Message::new(topic, kind).with_payload(payload);
        for _ in 0..rng.gen_range(0usize..8) {
            let key = random_token(rng, KEY_ALPHABET, 16);
            if key.is_empty() {
                continue;
            }
            let value: String = (0..rng.gen_range(0usize..32))
                .map(|_| rng.gen_range(0x20u32..0x7F) as u8 as char)
                .collect();
            msg = msg.with_header(key, value);
        }
        let encoded = msg.encode();
        assert_eq!(
            encoded.len(),
            msg.encoded_len(),
            "encoded_len must be exact"
        );
        let decoded = Message::decode(encoded).expect("decode");
        assert_eq!(decoded, msg);
    });
}

/// Truncating an encoded frame never panics and never yields a bogus success that
/// differs from the original message.
#[test]
fn message_codec_rejects_or_matches_on_truncation() {
    for_each_case("message_codec_rejects_or_matches_on_truncation", |rng| {
        let text: String = (0..rng.gen_range(0usize..256))
            .map(|_| rng.gen_range(0x20u32..0x7F) as u8 as char)
            .collect();
        let msg = Message::new("topic", "kind").with_text(&text);
        let encoded = msg.encode();
        let cut = rng.gen_range(0usize..encoded.len() + 1);
        if let Ok(decoded) = Message::decode(encoded.slice(0..cut)) {
            assert_eq!(decoded, msg)
        }
    });
}

/// Welford statistics match the naive two-pass computation.
#[test]
fn online_stats_matches_naive() {
    for_each_case("online_stats_matches_naive", |rng| {
        let values: Vec<f64> = (0..rng.gen_range(1usize..200))
            .map(|_| rng.gen_range(-1e6..1e6))
            .collect();
        let mut s = OnlineStats::new();
        for &v in &values {
            s.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        assert!((s.variance() - var).abs() < 1e-3 * (1.0 + var.abs()));
        assert_eq!(s.count(), values.len() as u64);
    });
}

/// Percentiles are monotone in the quantile and bounded by min/max.
#[test]
fn percentiles_are_monotone() {
    for_each_case("percentiles_are_monotone", |rng| {
        let values: Vec<f64> = (0..rng.gen_range(1usize..200))
            .map(|_| rng.gen_range(0.0..1e6))
            .collect();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let s = Summary::from_slice(&values);
        assert!(s.min <= s.p50 + 1e-9);
        assert!(s.p50 <= s.p90 + 1e-9);
        assert!(s.p90 <= s.p95 + 1e-9);
        assert!(s.p95 <= s.p99 + 1e-9);
        assert!(s.p99 <= s.max + 1e-9);
        let q = percentile_sorted(&sorted, 0.3);
        assert!(q >= s.min - 1e-9 && q <= s.max + 1e-9);
    });
}

/// Distribution samples respect their analytic bounds.
#[test]
fn distribution_samples_are_bounded() {
    for_each_case("distribution_samples_are_bounded", |rng| {
        let lo = rng.gen_range(0.0..10.0);
        let width = rng.gen_range(0.1..10.0);
        let hi = lo + width;
        let u = Dist::uniform(lo, hi);
        let t = Dist::TruncatedNormal {
            mean: lo,
            std: width,
            lo,
            hi,
        };
        let n = Dist::normal(lo, width);
        for _ in 0..64 {
            let v = u.sample(rng);
            assert!(v >= lo && v < hi);
            let v = t.sample(rng);
            assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
            assert!(n.sample(rng) >= 0.0, "normal samples are clamped at zero");
        }
    });
}

/// Node reserve/release conserves resources for arbitrary request sequences.
#[test]
fn node_accounting_conserves_resources() {
    for_each_case("node_accounting_conserves_resources", |rng| {
        let spec = NodeSpec::new(16, 4, 256.0, 40.0);
        let mut node = NodeState::new("prop-node", spec);
        let mut reserved = Vec::new();
        for _ in 0..rng.gen_range(1usize..32) {
            let req = ResourceRequest {
                cores: rng.gen_range(1u32..8),
                gpus: rng.gen_range(0u32..4),
                mem_gib: rng.gen_range(0.0..64.0),
                nodes: 1,
                packing: None,
            };
            if let Ok(r) = node.try_reserve(&req) {
                assert_eq!(r.0.len(), req.cores as usize);
                assert_eq!(r.1.len(), req.gpus as usize);
                reserved.push(r);
            }
            assert!(node.free_cores() <= spec.cores);
            assert!(node.free_gpus() <= spec.gpus);
            assert!(node.free_mem_gib() >= -1e-9);
        }
        for (cores, gpus, mem) in reserved {
            node.release(&cores, &gpus, mem);
        }
        assert!(node.is_idle());
    });
}

/// Allocation-level slot accounting also conserves resources.
#[test]
fn allocation_slots_conserve_resources() {
    for_each_case("allocation_slots_conserve_resources", |rng| {
        let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 1);
        let alloc = batch.submit(AllocationRequest::nodes(2)).unwrap();
        let total_cores = alloc.total_cores();
        let total_gpus = alloc.total_gpus();
        let mut slots = Vec::new();
        for _ in 0..rng.gen_range(1usize..40) {
            let req = ResourceRequest {
                cores: rng.gen_range(1u32..16),
                gpus: rng.gen_range(0u32..3),
                mem_gib: 0.0,
                nodes: 1,
                packing: None,
            };
            if let Ok(slot) = alloc.allocate_slot(&req) {
                slots.push(slot);
            }
            assert!(alloc.free_cores() <= total_cores);
            assert!(alloc.free_gpus() <= total_gpus);
        }
        for slot in &slots {
            alloc.release_slot(slot).unwrap();
        }
        assert_eq!(alloc.free_cores(), total_cores);
        assert_eq!(alloc.free_gpus(), total_gpus);
        assert!(alloc.is_idle());
    });
}

/// Random interleaved allocate/release sequences conserve cores/GPUs and never
/// double-book a core or GPU index, at allocation scope (`reserve_distinct_indices`
/// lifted to the whole allocation, exercising the bitmask occupancy words and the
/// free-capacity index through incremental updates).
#[test]
fn interleaved_allocate_release_never_double_books() {
    use std::collections::HashSet;
    for_each_case("interleaved_allocate_release_never_double_books", |rng| {
        let batch = BatchSystem::new(PlatformId::Local.spec(), ClockSpec::Manual.build(), 1);
        let alloc = batch.submit(AllocationRequest::nodes(2)).unwrap();
        let total_cores = alloc.total_cores();
        let total_gpus = alloc.total_gpus();
        // (node_index, core_id) and (node_index, gpu_id) held by live slots.
        let mut live_cores: HashSet<(usize, u32)> = HashSet::new();
        let mut live_gpus: HashSet<(usize, u32)> = HashSet::new();
        let mut slots: Vec<hpcml::platform::Slot> = Vec::new();
        for _ in 0..rng.gen_range(1usize..80) {
            let do_release = !slots.is_empty() && rng.gen_bool(0.4);
            if do_release {
                let idx = rng.gen_range(0usize..slots.len());
                let slot = slots.swap_remove(idx);
                alloc.release_slot(&slot).unwrap();
                for m in &slot.members {
                    for c in &m.core_ids {
                        assert!(
                            live_cores.remove(&(m.node_index, *c)),
                            "released core was tracked"
                        );
                    }
                    for g in &m.gpu_ids {
                        assert!(
                            live_gpus.remove(&(m.node_index, *g)),
                            "released gpu was tracked"
                        );
                    }
                }
            } else {
                let req = ResourceRequest {
                    cores: rng.gen_range(1u32..5),
                    gpus: rng.gen_range(0u32..3),
                    mem_gib: rng.gen_range(0.0..32.0),
                    nodes: 1,
                    packing: None,
                };
                if let Ok(slot) = alloc.allocate_slot(&req) {
                    for m in &slot.members {
                        for c in &m.core_ids {
                            assert!(
                                live_cores.insert((m.node_index, *c)),
                                "core {} on node {} double-booked",
                                c,
                                m.node_index
                            );
                        }
                        for g in &m.gpu_ids {
                            assert!(
                                live_gpus.insert((m.node_index, *g)),
                                "gpu {} on node {} double-booked",
                                g,
                                m.node_index
                            );
                        }
                    }
                    slots.push(slot);
                }
            }
            // Conservation at every step: free + live == total.
            assert_eq!(alloc.free_cores() + live_cores.len() as u32, total_cores);
            assert_eq!(alloc.free_gpus() + live_gpus.len() as u32, total_gpus);
        }
        for slot in &slots {
            alloc.release_slot(slot).unwrap();
        }
        assert!(alloc.is_idle());
        assert_eq!(alloc.free_cores(), total_cores);
        assert_eq!(alloc.free_gpus(), total_gpus);
    });
}

/// Interleaved single-node and Whole-packed multi-node gang placements never overlap:
/// no two live slots (gang or not) ever share a core or GPU index on a node, every
/// Whole gang's members are distinct nodes that were fully idle when claimed, and
/// releasing a gang returns all of its member nodes to the idle bucket — verified by
/// re-claiming them and by the allocation's idle-node count matching a model kept
/// alongside. (The partial-packing counterpart is
/// `partial_gang_and_single_interleavings_never_double_book` below.)
#[test]
fn gang_and_single_placements_never_overlap() {
    use std::collections::{HashMap, HashSet};
    for_each_case("gang_and_single_placements_never_overlap", |rng| {
        let nodes = 6usize;
        let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 1);
        let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
        let spec = alloc.node_spec();
        let total_cores = alloc.total_cores();
        let mut live_cores: HashSet<(usize, u32)> = HashSet::new();
        let mut live_gpus: HashSet<(usize, u32)> = HashSet::new();
        // Live units per node, to model which nodes should count as idle.
        let mut node_units: HashMap<usize, usize> = HashMap::new();
        let mut slots: Vec<hpcml::platform::Slot> = Vec::new();
        for _ in 0..rng.gen_range(1usize..60) {
            let do_release = !slots.is_empty() && rng.gen_bool(0.4);
            if do_release {
                let idx = rng.gen_range(0usize..slots.len());
                let slot = slots.swap_remove(idx);
                alloc.release_slot(&slot).unwrap();
                for m in &slot.members {
                    for c in &m.core_ids {
                        assert!(live_cores.remove(&(m.node_index, *c)));
                    }
                    for g in &m.gpu_ids {
                        assert!(live_gpus.remove(&(m.node_index, *g)));
                    }
                    let units = node_units.get_mut(&m.node_index).unwrap();
                    *units -= m.core_ids.len() + m.gpu_ids.len();
                    if *units == 0 {
                        node_units.remove(&m.node_index);
                    }
                }
            } else {
                let gang_nodes = if rng.gen_bool(0.4) {
                    rng.gen_range(2usize..5)
                } else {
                    1
                };
                let req = ResourceRequest {
                    cores: rng.gen_range(1u32..spec.cores / 2 + 1),
                    gpus: rng.gen_range(0u32..spec.gpus + 1),
                    mem_gib: 0.0,
                    nodes: gang_nodes,
                    // This property models the Whole-packing invariant (gangs claim
                    // only idle nodes); Partial interleavings have their own model.
                    packing: Some(GangPacking::Whole),
                };
                if let Ok(slot) = alloc.allocate_slot(&req) {
                    assert_eq!(slot.num_nodes(), gang_nodes);
                    let member_nodes: HashSet<usize> = slot.node_indices().collect();
                    assert_eq!(
                        member_nodes.len(),
                        gang_nodes,
                        "gang members must be distinct nodes"
                    );
                    if gang_nodes > 1 {
                        for m in &slot.members {
                            assert!(
                                !node_units.contains_key(&m.node_index),
                                "gang claimed node {} which already hosts a slot",
                                m.node_index
                            );
                        }
                    }
                    for m in &slot.members {
                        for c in &m.core_ids {
                            assert!(
                                live_cores.insert((m.node_index, *c)),
                                "core {} on node {} double-booked by a {}-node slot",
                                c,
                                m.node_index,
                                gang_nodes
                            );
                        }
                        for g in &m.gpu_ids {
                            assert!(
                                live_gpus.insert((m.node_index, *g)),
                                "gpu {} on node {} double-booked by a {}-node slot",
                                g,
                                m.node_index,
                                gang_nodes
                            );
                        }
                        *node_units.entry(m.node_index).or_insert(0) +=
                            m.core_ids.len() + m.gpu_ids.len();
                    }
                    slots.push(slot);
                }
            }
            // The allocation's idle-node count must match the model: a node is idle
            // iff no live slot holds units on it (memory-free requests only here).
            assert_eq!(
                alloc.idle_nodes(),
                nodes - node_units.len(),
                "idle bucket must reflect exactly the nodes without live slots"
            );
            assert_eq!(
                alloc.free_cores() + live_cores.len() as u32,
                total_cores,
                "core conservation"
            );
        }
        for slot in &slots {
            alloc.release_slot(slot).unwrap();
        }
        assert!(alloc.is_idle());
        assert_eq!(alloc.idle_nodes(), nodes);
        // Every node is back in the idle bucket: a whole-allocation gang must fit.
        let all = alloc
            .allocate_slot(&ResourceRequest {
                cores: spec.cores,
                gpus: spec.gpus,
                mem_gib: 0.0,
                nodes,
                packing: None,
            })
            .expect("released gang members must return to the idle bucket");
        assert_eq!(all.num_nodes(), nodes);
        alloc.release_slot(&all).unwrap();
        assert!(alloc.is_idle());
    });
}

/// Partial-packing counterpart of `gang_and_single_placements_never_overlap`:
/// interleaved single-node tasks and *partially packed* sub-node gangs never
/// double-book a core or GPU index even though gang members co-locate beside live
/// slots, gang members are always distinct nodes, every member's `co_resident` flag
/// matches a model of which nodes carried live units at claim time, and releasing a
/// partial gang restores the exact headroom classes and idle counts — checked after
/// full teardown by the idle-node count, by per-class re-claims, and by a
/// whole-allocation gang fitting again.
#[test]
fn partial_gang_and_single_interleavings_never_double_book() {
    use std::collections::{HashMap, HashSet};
    for_each_case(
        "partial_gang_and_single_interleavings_never_double_book",
        |rng| {
            let nodes = 6usize;
            let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 1);
            let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
            let spec = alloc.node_spec();
            let total_cores = alloc.total_cores();
            let total_gpus = alloc.total_gpus();
            let mut live_cores: HashSet<(usize, u32)> = HashSet::new();
            let mut live_gpus: HashSet<(usize, u32)> = HashSet::new();
            // Live units per node: the idle model and the co_resident oracle.
            let mut node_units: HashMap<usize, usize> = HashMap::new();
            let mut slots: Vec<hpcml::platform::Slot> = Vec::new();
            for _ in 0..rng.gen_range(1usize..80) {
                let do_release = !slots.is_empty() && rng.gen_bool(0.45);
                if do_release {
                    let idx = rng.gen_range(0usize..slots.len());
                    let slot = slots.swap_remove(idx);
                    alloc.release_slot(&slot).unwrap();
                    for m in &slot.members {
                        for c in &m.core_ids {
                            assert!(live_cores.remove(&(m.node_index, *c)));
                        }
                        for g in &m.gpu_ids {
                            assert!(live_gpus.remove(&(m.node_index, *g)));
                        }
                        let units = node_units.get_mut(&m.node_index).unwrap();
                        *units -= m.core_ids.len() + m.gpu_ids.len();
                        if *units == 0 {
                            node_units.remove(&m.node_index);
                        }
                    }
                } else {
                    let gang_nodes = if rng.gen_bool(0.5) {
                        rng.gen_range(2usize..nodes + 1)
                    } else {
                        1
                    };
                    // Sub-node member shares, so partial gangs genuinely co-locate.
                    let req = ResourceRequest {
                        cores: rng.gen_range(1u32..spec.cores / 2 + 1),
                        gpus: rng.gen_range(0u32..spec.gpus / 2 + 1),
                        mem_gib: 0.0,
                        nodes: gang_nodes,
                        packing: Some(GangPacking::Partial),
                    };
                    if let Ok(slot) = alloc.allocate_slot(&req) {
                        assert_eq!(slot.num_nodes(), gang_nodes);
                        let member_nodes: HashSet<usize> = slot.node_indices().collect();
                        assert_eq!(
                            member_nodes.len(),
                            gang_nodes,
                            "partial gang members must still be distinct nodes"
                        );
                        // Model-side count of members landing on already-busy nodes,
                        // taken *before* this slot's own units enter the model.
                        let expected_partial = slot
                            .node_indices()
                            .filter(|n| node_units.contains_key(n))
                            .count();
                        for m in &slot.members {
                            assert_eq!(
                                m.co_resident,
                                node_units.contains_key(&m.node_index),
                                "co_resident must reflect pre-claim occupancy of node {}",
                                m.node_index
                            );
                            for c in &m.core_ids {
                                assert!(
                                    live_cores.insert((m.node_index, *c)),
                                    "core {} on node {} double-booked by a {}-node slot",
                                    c,
                                    m.node_index,
                                    gang_nodes
                                );
                            }
                            for g in &m.gpu_ids {
                                assert!(
                                    live_gpus.insert((m.node_index, *g)),
                                    "gpu {} on node {} double-booked by a {}-node slot",
                                    g,
                                    m.node_index,
                                    gang_nodes
                                );
                            }
                            *node_units.entry(m.node_index).or_insert(0) +=
                                m.core_ids.len() + m.gpu_ids.len();
                        }
                        assert_eq!(
                            slot.partial_nodes(),
                            expected_partial,
                            "partial_nodes must count exactly the members placed on \
                             nodes the model knew to be busy at claim time"
                        );
                        slots.push(slot);
                    }
                }
                // Idle count and conservation must hold after every step, co-located
                // gangs included.
                assert_eq!(
                    alloc.idle_nodes(),
                    nodes - node_units.len(),
                    "a node is idle iff no live slot (gang member or single) touches it"
                );
                assert_eq!(
                    alloc.free_cores() + live_cores.len() as u32,
                    total_cores,
                    "core conservation"
                );
                assert_eq!(
                    alloc.free_gpus() + live_gpus.len() as u32,
                    total_gpus,
                    "gpu conservation"
                );
            }
            // Teardown in random order: exact headroom classes and idle counts must
            // come back.
            while !slots.is_empty() {
                let idx = rng.gen_range(0usize..slots.len());
                let slot = slots.swap_remove(idx);
                alloc.release_slot(&slot).unwrap();
            }
            assert!(alloc.is_idle());
            assert_eq!(alloc.idle_nodes(), nodes);
            assert_eq!(alloc.free_cores(), total_cores);
            assert_eq!(alloc.free_gpus(), total_gpus);
            // Exact headroom restoration: every node must again host a whole-node
            // share — as one whole-allocation gang (idle bucket) and per-node.
            let all = alloc
                .allocate_slot(&ResourceRequest {
                    cores: spec.cores,
                    gpus: spec.gpus,
                    mem_gib: spec.mem_gib,
                    nodes,
                    packing: Some(GangPacking::Partial),
                })
                .expect("partial-gang teardown must restore every headroom class");
            assert_eq!(all.num_nodes(), nodes);
            assert_eq!(all.partial_nodes(), 0, "all nodes idle again");
            alloc.release_slot(&all).unwrap();
            assert!(alloc.is_idle());
        },
    );
}

/// Random interleavings of single-node placements, releases, and backfill-drain
/// operations (begin / cancel / reserved placement, random Whole/Partial packing and
/// member shares) never double-book a unit and never leak a reservation: pinned
/// nodes are invisible to ordinary placements while keeping their physical occupancy
/// (idle for Whole pins, possibly still-busy for Partial ones), a cancelled drain
/// returns every pinned node to the correct headroom bucket (idle-count model
/// check), and a consumed drain turns exactly its pinned set into the gang's
/// members.
#[test]
fn drain_reserve_cancel_place_interleavings_never_double_book() {
    use std::collections::HashSet;
    for_each_case(
        "drain_reserve_cancel_place_interleavings_never_double_book",
        |rng| {
            let nodes = 5usize;
            let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 1);
            let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
            let spec = alloc.node_spec();
            let total_cores = alloc.total_cores();
            let mut live_cores: HashSet<(usize, u32)> = HashSet::new();
            let mut busy_nodes: HashSet<usize> = HashSet::new();
            let mut slots: Vec<hpcml::platform::Slot> = Vec::new();
            // The model of the active drain: (id, target, request).
            let mut drain: Option<(u64, usize, ResourceRequest)> = None;

            let track_alloc = |slot: &hpcml::platform::Slot,
                               live_cores: &mut HashSet<(usize, u32)>,
                               busy_nodes: &mut HashSet<usize>| {
                for m in &slot.members {
                    for c in &m.core_ids {
                        assert!(
                            live_cores.insert((m.node_index, *c)),
                            "core {} on node {} double-booked",
                            c,
                            m.node_index
                        );
                    }
                    busy_nodes.insert(m.node_index);
                }
            };

            for _ in 0..rng.gen_range(10usize..80) {
                match rng.gen_range(0u32..10) {
                    // Single-node placement on non-reserved capacity.
                    0..=3 => {
                        let req = ResourceRequest {
                            cores: rng.gen_range(1u32..spec.cores + 1),
                            gpus: 0,
                            mem_gib: 0.0,
                            nodes: 1,
                            packing: None,
                        };
                        if let Ok(slot) = alloc.allocate_slot(&req) {
                            track_alloc(&slot, &mut live_cores, &mut busy_nodes);
                            slots.push(slot);
                        }
                    }
                    // Release a random live slot; freed idle nodes may be pinned.
                    4..=6 => {
                        if slots.is_empty() {
                            continue;
                        }
                        let idx = rng.gen_range(0usize..slots.len());
                        let slot = slots.swap_remove(idx);
                        alloc.release_slot(&slot).unwrap();
                        for m in &slot.members {
                            for c in &m.core_ids {
                                assert!(live_cores.remove(&(m.node_index, *c)));
                            }
                            if !live_cores.iter().any(|(n, _)| *n == m.node_index) {
                                busy_nodes.remove(&m.node_index);
                            }
                        }
                    }
                    // Open a reservation for a random gang width, member share, and
                    // packing policy (Partial drains may pin still-busy nodes whose
                    // headroom covers the share; Whole drains pin idle nodes only).
                    7 => {
                        let width = rng.gen_range(2usize..nodes + 1);
                        let req = ResourceRequest {
                            cores: rng.gen_range(spec.cores / 2..spec.cores + 1),
                            gpus: 0,
                            mem_gib: 0.0,
                            nodes: width,
                            packing: Some(if rng.gen_bool(0.5) {
                                GangPacking::Partial
                            } else {
                                GangPacking::Whole
                            }),
                        };
                        match alloc.begin_drain(&req) {
                            Ok(id) => {
                                assert!(drain.is_none(), "second drain must be rejected");
                                drain = Some((id, width, req));
                            }
                            Err(ResourceError::DrainActive) => assert!(drain.is_some()),
                            Err(e) => panic!("unexpected begin_drain error: {e:?}"),
                        }
                    }
                    // Cancel the active reservation.
                    8 => {
                        if let Some((id, _, _)) = drain.take() {
                            alloc.cancel_drain(id).unwrap();
                            assert_eq!(alloc.reserved_nodes(), 0);
                        }
                    }
                    // Try to place the draining gang through its reservation.
                    _ => {
                        if let Some((id, width, req)) = drain {
                            match alloc.allocate_reserved(id, &req) {
                                Ok(slot) => {
                                    assert_eq!(slot.num_nodes(), width);
                                    track_alloc(&slot, &mut live_cores, &mut busy_nodes);
                                    slots.push(slot);
                                    drain = None;
                                }
                                Err(ResourceError::InsufficientResources) => {
                                    let status = alloc.drain_status().unwrap();
                                    assert!(
                                        status.pinned() < status.target,
                                        "complete drain must place"
                                    );
                                }
                                Err(e) => panic!("unexpected allocate_reserved error: {e:?}"),
                            }
                        }
                    }
                }
                // Model checks after every step.
                let pinned = alloc.reserved_nodes();
                if let Some((_, target, _)) = &drain {
                    assert!(pinned <= *target, "reservation never overshoots its target");
                } else {
                    assert_eq!(pinned, 0, "no reservation may outlive its drain");
                }
                assert_eq!(
                    alloc.idle_nodes(),
                    nodes - busy_nodes.len(),
                    "pinning never changes physical occupancy (idle or pinned-partial)"
                );
                if let Some(status) = alloc.drain_status() {
                    assert_eq!(
                        status.pinned(),
                        pinned,
                        "drain_status splits exactly the pinned set"
                    );
                }
                assert_eq!(
                    alloc.free_cores() + live_cores.len() as u32,
                    total_cores,
                    "core conservation across drain operations"
                );
            }

            // Wind down: cancel any reservation, release everything, and prove no
            // pinned node leaked — the whole allocation must be claimable as one gang.
            if let Some((id, _, _)) = drain.take() {
                alloc.cancel_drain(id).unwrap();
            }
            for slot in &slots {
                alloc.release_slot(slot).unwrap();
            }
            assert_eq!(alloc.reserved_nodes(), 0);
            assert!(alloc.is_idle());
            assert_eq!(alloc.idle_nodes(), nodes);
            let all = alloc
                .allocate_slot(&ResourceRequest {
                    cores: spec.cores,
                    gpus: spec.gpus,
                    mem_gib: 0.0,
                    nodes,
                    packing: None,
                })
                .expect("cancelled/placed drains must leave every node in the idle bucket");
            alloc.release_slot(&all).unwrap();
        },
    );
}

/// Satellite regression: a draining gang that times out mid-reservation (some nodes
/// pinned, target never reached) returns every pinned node to the correct headroom
/// bucket — the idle-node count matches a model and nothing stays reserved.
#[test]
fn drain_timeout_mid_reservation_leaks_nothing() {
    use hpcml::runtime::scheduler::{Priority, Scheduler};
    use std::sync::Arc;
    use std::time::Duration;
    for_each_case("drain_timeout_mid_reservation_leaks_nothing", |rng| {
        let nodes = 4usize;
        let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 1);
        let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
        let spec = alloc.node_spec();
        let scheduler = Arc::new(
            Scheduler::with_lookahead(Arc::clone(&alloc), 2)
                .with_max_overtakes(None)
                .with_gang_drain_after(Some(Duration::from_millis(1))),
        );
        // Occupy a random non-empty subset of nodes so the reservation can only pin
        // the remaining idle ones and the gang can never complete.
        let held_nodes = rng.gen_range(1usize..nodes);
        let held: Vec<_> = (0..held_nodes)
            .map(|_| {
                scheduler
                    .allocate(
                        &ResourceRequest {
                            cores: spec.cores,
                            gpus: 0,
                            mem_gib: 0.0,
                            nodes: 1,
                            packing: None,
                        },
                        Priority::Task,
                        Duration::from_secs(1),
                    )
                    .unwrap()
            })
            .collect();
        let gang = ResourceRequest {
            cores: spec.cores,
            gpus: 0,
            mem_gib: 0.0,
            nodes,
            packing: None,
        };
        // The gang drains almost immediately, pins the idle remainder, then times out.
        let err = scheduler
            .allocate(&gang, Priority::Task, Duration::from_millis(40))
            .unwrap_err();
        assert!(matches!(
            err,
            hpcml::runtime::RuntimeError::WaitTimeout { .. }
        ));
        assert_eq!(
            alloc.reserved_nodes(),
            0,
            "timed-out drain left pinned nodes reserved"
        );
        assert_eq!(
            alloc.idle_nodes(),
            nodes - held_nodes,
            "every pinned node must return to the idle count model"
        );
        // And to the correct headroom bucket: each formerly pinned node is placeable
        // again as a whole node.
        let reclaimed: Vec<_> = (0..nodes - held_nodes)
            .map(|_| {
                alloc
                    .allocate_slot(&ResourceRequest {
                        cores: spec.cores,
                        gpus: spec.gpus,
                        mem_gib: 0.0,
                        nodes: 1,
                        packing: None,
                    })
                    .expect("formerly pinned nodes must be placeable")
            })
            .collect();
        for slot in reclaimed.iter().chain(held.iter()) {
            scheduler.allocation().release_slot(slot).unwrap();
        }
        assert!(alloc.is_idle());
    });
}

/// Random walks through the task state machine only ever follow legal transitions and
/// always terminate in a final state within a bounded number of steps.
/// Randomized multi-thread interleavings against a *sharded* allocation: worker
/// threads mix single-node allocations, Partial- and Whole-packed gang claims
/// spanning shards, and releases, while a drain actor cycles backfill
/// reservations (begin → bounded wait for the reserved placement → cancel on
/// timeout). The shard count comes from `ALLOC_SHARDS` (default 4; CI runs a
/// {1, 4} matrix in release mode), so the same interleavings prove both the
/// sharded and the single-lock configuration.
///
/// Safety oracle: a shared cross-shard occupancy set of (node, core) and
/// (node, gpu) pairs — inserted *after* every successful claim (a collision means
/// the allocator double-booked a unit across shard locks) and drained *before*
/// the release reaches the allocator (so a racing re-claim of the freed unit can
/// never false-positive). Liveness: a watchdog aborts the process if a case fails
/// to finish in bounded time — a shard/drain lock-order violation would deadlock
/// exactly here. Teardown: full release must restore the idle count, the free
/// totals, and every per-shard headroom class (proven by a whole-allocation
/// whole-node-share gang fitting again), with no reservation left behind.
#[test]
fn sharded_concurrent_gang_and_drain_interleavings_never_double_book() {
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    let shards: usize = std::env::var("ALLOC_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    const THREADS: u64 = 4;
    const OPS: usize = 60;
    const NODES: usize = 32;

    for case in 0..8u64 {
        let seed = 0x5A4D ^ (case.wrapping_mul(0x9E37_79B9));
        let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 1);
        let alloc = batch
            .submit(AllocationRequest::nodes(NODES).with_allocator_shards(shards))
            .unwrap();
        assert_eq!(alloc.num_shards(), shards.clamp(1, NODES));
        let spec = alloc.node_spec();
        let total_cores = alloc.total_cores();
        let total_gpus = alloc.total_gpus();
        // The cross-shard occupancy oracle.
        let live_units: Arc<Mutex<HashSet<(usize, bool, u32)>>> =
            Arc::new(Mutex::new(HashSet::new()));
        let claim = move |oracle: &Mutex<HashSet<(usize, bool, u32)>>,
                          slot: &hpcml::platform::Slot| {
            let mut live = oracle.lock().unwrap();
            let member_nodes: HashSet<usize> = slot.node_indices().collect();
            assert_eq!(
                member_nodes.len(),
                slot.num_nodes(),
                "case {case}: gang members must be distinct nodes"
            );
            for m in &slot.members {
                for &c in &m.core_ids {
                    assert!(
                        live.insert((m.node_index, false, c)),
                        "case {case}: core {c} on node {} double-booked across shards",
                        m.node_index
                    );
                }
                for &g in &m.gpu_ids {
                    assert!(
                        live.insert((m.node_index, true, g)),
                        "case {case}: gpu {g} on node {} double-booked across shards",
                        m.node_index
                    );
                }
            }
        };
        let unclaim = move |oracle: &Mutex<HashSet<(usize, bool, u32)>>,
                            slot: &hpcml::platform::Slot| {
            let mut live = oracle.lock().unwrap();
            for m in &slot.members {
                for &c in &m.core_ids {
                    assert!(live.remove(&(m.node_index, false, c)));
                }
                for &g in &m.gpu_ids {
                    assert!(live.remove(&(m.node_index, true, g)));
                }
            }
        };

        // Bounded-time guarantee: a deadlock in the shard/drain lock protocol
        // would hang the threads below; abort loudly instead of hanging CI.
        let done = Arc::new(AtomicBool::new(false));
        {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for _ in 0..1200 {
                    if done.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                eprintln!("sharded interleaving property: case {case} exceeded 120 s — deadlock?");
                std::process::abort();
            });
        }

        // Workers keep churning until the drain actor has cycled all of its
        // reservations (with an ops floor), so drains genuinely race live
        // allocate/release traffic instead of a quiescent allocator.
        let drains_done = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let alloc = Arc::clone(&alloc);
            let oracle = Arc::clone(&live_units);
            let drains_done = Arc::clone(&drains_done);
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (0xA110C ^ t));
                let mut slots: Vec<hpcml::platform::Slot> = Vec::new();
                let mut ops = 0usize;
                while ops < OPS || !drains_done.load(Ordering::Acquire) {
                    ops += 1;
                    if !slots.is_empty() && rng.gen_bool(0.45) {
                        let idx = rng.gen_range(0usize..slots.len());
                        let slot = slots.swap_remove(idx);
                        unclaim(&oracle, &slot);
                        alloc.release_slot(&slot).unwrap();
                    } else {
                        let gang_nodes = if rng.gen_bool(0.4) {
                            rng.gen_range(2usize..6)
                        } else {
                            1
                        };
                        let req = ResourceRequest {
                            cores: rng.gen_range(1u32..spec.cores / 2 + 1),
                            gpus: rng.gen_range(0u32..spec.gpus / 2 + 1),
                            mem_gib: 0.0,
                            nodes: gang_nodes,
                            packing: match rng.gen_range(0u32..3) {
                                0 => Some(GangPacking::Whole),
                                1 => Some(GangPacking::Partial),
                                _ => None,
                            },
                        };
                        if let Ok(slot) = alloc.allocate_slot(&req) {
                            claim(&oracle, &slot);
                            slots.push(slot);
                        }
                    }
                }
                for slot in &slots {
                    unclaim(&oracle, slot);
                    alloc.release_slot(slot).unwrap();
                }
            }));
        }
        // The drain actor: cycles gang-shaped reservations against the churn.
        {
            let alloc = Arc::clone(&alloc);
            let oracle = Arc::clone(&live_units);
            let drains_done = Arc::clone(&drains_done);
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xD4A1);
                for _ in 0..4 {
                    let req = ResourceRequest {
                        cores: rng.gen_range(1u32..spec.cores / 2 + 1),
                        gpus: 0,
                        mem_gib: 0.0,
                        nodes: rng.gen_range(2usize..6),
                        packing: Some(if rng.gen_bool(0.5) {
                            GangPacking::Whole
                        } else {
                            GangPacking::Partial
                        }),
                    };
                    let id = alloc.begin_drain(&req).expect("single drain actor");
                    let deadline = Instant::now() + Duration::from_millis(200);
                    loop {
                        match alloc.allocate_reserved(id, &req) {
                            Ok(slot) => {
                                claim(&oracle, &slot);
                                unclaim(&oracle, &slot);
                                alloc.release_slot(&slot).unwrap();
                                break;
                            }
                            Err(ResourceError::InsufficientResources) => {
                                if Instant::now() >= deadline {
                                    alloc.cancel_drain(id).unwrap();
                                    break;
                                }
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("case {case}: reserved placement failed: {e:?}"),
                        }
                    }
                }
                drains_done.store(true, Ordering::Release);
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        done.store(true, Ordering::Release);

        // Teardown restored everything, across every shard.
        assert!(live_units.lock().unwrap().is_empty(), "case {case}");
        assert!(alloc.is_idle(), "case {case}");
        assert_eq!(
            alloc.idle_nodes(),
            NODES,
            "case {case}: idle count restored"
        );
        assert_eq!(alloc.free_cores(), total_cores, "case {case}");
        assert_eq!(alloc.free_gpus(), total_gpus, "case {case}");
        assert_eq!(alloc.reserved_nodes(), 0, "case {case}: no drain leaked");
        assert!(alloc.drain_status().is_none(), "case {case}");
        // Per-shard headroom classes restored exactly: a whole-allocation gang of
        // whole-node shares (idle buckets) must fit again.
        let all = alloc
            .allocate_slot(&ResourceRequest {
                cores: spec.cores,
                gpus: spec.gpus,
                mem_gib: spec.mem_gib,
                nodes: NODES,
                packing: None,
            })
            .expect("teardown must restore every shard's headroom classes");
        assert_eq!(all.num_nodes(), NODES);
        assert_eq!(all.partial_nodes(), 0, "case {case}: all nodes idle again");
        alloc.release_slot(&all).unwrap();
        assert!(alloc.is_idle());
    }
}

/// Node failures injected into live multithreaded churn — workers mixing single
/// and gang claims/releases, a drain actor cycling backfill reservations — never
/// double-book a unit and never leak capacity. The fault seed comes from
/// `FAULT_SEED` (default 0xFA117) so CI can sweep different failure schedules.
///
/// Safety oracle: a shared occupancy set plus a slot registry, both updated under
/// one mutex. The fault actor holds that mutex *across* `fail_node`, writing the
/// victims' units off atomically with the eviction — so a racing re-claim of the
/// freed units can never collide with stale entries. A slot evicted in the window
/// between its claim and its registration is parked in `evicted_pending` and
/// skipped when the claimer arrives. Releases of evicted slots must report
/// `NodeFailed` (tolerated), never a silent double-free.
///
/// Teardown oracle: free cores/GPUs equal exactly the healthy remainder, failed
/// nodes never re-enter the placement indexes (a Whole-packed gang over every
/// healthy node fits and avoids them), and no drain reservation leaks.
#[test]
fn node_failure_during_gang_claim_and_drain_never_double_books_or_leaks() {
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    #[derive(Default)]
    struct Oracle {
        live: HashSet<(usize, bool, u32)>,
        registry: HashMap<u64, Vec<(usize, bool, u32)>>,
        evicted_pending: HashSet<u64>,
    }

    fn register(oracle: &Mutex<Oracle>, slot: &hpcml::platform::Slot, case: u64) {
        let mut units = Vec::new();
        for m in &slot.members {
            for &c in &m.core_ids {
                units.push((m.node_index, false, c));
            }
            for &g in &m.gpu_ids {
                units.push((m.node_index, true, g));
            }
        }
        let mut o = oracle.lock().unwrap();
        if o.evicted_pending.remove(&slot.id) {
            // The hosting node died between the claim and this registration; the
            // units were already written off with the node.
            return;
        }
        let member_nodes: HashSet<usize> = slot.node_indices().collect();
        assert_eq!(
            member_nodes.len(),
            slot.num_nodes(),
            "case {case}: gang members must be distinct nodes"
        );
        for &u in &units {
            assert!(
                o.live.insert(u),
                "case {case}: unit {u:?} double-booked under node failures"
            );
        }
        o.registry.insert(slot.id, units);
    }

    fn unregister_and_release(
        oracle: &Mutex<Oracle>,
        alloc: &hpcml::platform::batch::Allocation,
        slot: &hpcml::platform::Slot,
        case: u64,
    ) {
        {
            let mut o = oracle.lock().unwrap();
            if let Some(units) = o.registry.remove(&slot.id) {
                for u in units {
                    assert!(o.live.remove(&u), "case {case}: released unit untracked");
                }
            }
        }
        match alloc.release_slot(slot) {
            Ok(()) | Err(ResourceError::NodeFailed(_)) => {}
            Err(e) => panic!("case {case}: release failed: {e:?}"),
        }
    }

    let shards: usize = std::env::var("ALLOC_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let fault_seed: u64 = std::env::var("FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA117);
    const THREADS: u64 = 3;
    const OPS: usize = 60;
    const NODES: usize = 16;
    const FAULTS: usize = 3;

    for case in 0..6u64 {
        let seed = fault_seed ^ (case.wrapping_mul(0x9E37_79B9));
        let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 1);
        let alloc = batch
            .submit(AllocationRequest::nodes(NODES).with_allocator_shards(shards))
            .unwrap();
        let spec = alloc.node_spec();
        let oracle: Arc<Mutex<Oracle>> = Arc::new(Mutex::new(Oracle::default()));

        let done = Arc::new(AtomicBool::new(false));
        {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for _ in 0..1200 {
                    if done.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                eprintln!("fault interleaving property: case {case} exceeded 120 s — deadlock?");
                std::process::abort();
            });
        }

        let actors_done = Arc::new(AtomicBool::new(false));
        let drains_done = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let alloc = Arc::clone(&alloc);
            let oracle = Arc::clone(&oracle);
            let actors_done = Arc::clone(&actors_done);
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (0xFA17 ^ t));
                let mut slots: Vec<hpcml::platform::Slot> = Vec::new();
                let mut ops = 0usize;
                while ops < OPS || !actors_done.load(Ordering::Acquire) {
                    ops += 1;
                    if !slots.is_empty() && rng.gen_bool(0.45) {
                        let idx = rng.gen_range(0usize..slots.len());
                        let slot = slots.swap_remove(idx);
                        unregister_and_release(&oracle, &alloc, &slot, case);
                    } else {
                        let gang_nodes = if rng.gen_bool(0.4) {
                            rng.gen_range(2usize..6)
                        } else {
                            1
                        };
                        let req = ResourceRequest {
                            cores: rng.gen_range(1u32..spec.cores / 2 + 1),
                            gpus: rng.gen_range(0u32..spec.gpus / 2 + 1),
                            mem_gib: 0.0,
                            nodes: gang_nodes,
                            packing: match rng.gen_range(0u32..3) {
                                0 => Some(GangPacking::Whole),
                                1 => Some(GangPacking::Partial),
                                _ => None,
                            },
                        };
                        if let Ok(slot) = alloc.allocate_slot(&req) {
                            register(&oracle, &slot, case);
                            slots.push(slot);
                        }
                    }
                }
                for slot in &slots {
                    unregister_and_release(&oracle, &alloc, slot, case);
                }
            }));
        }
        // The drain actor: backfill reservations racing the failures. A drain
        // whose pinned node dies mid-reservation is unpinned by `fail_node`; the
        // actor retries until its deadline, then cancels — either way nothing may
        // stay reserved.
        {
            let alloc = Arc::clone(&alloc);
            let oracle = Arc::clone(&oracle);
            let drains_done = Arc::clone(&drains_done);
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xD4A1);
                for _ in 0..4 {
                    let req = ResourceRequest {
                        cores: rng.gen_range(1u32..spec.cores / 2 + 1),
                        gpus: 0,
                        mem_gib: 0.0,
                        nodes: rng.gen_range(2usize..6),
                        packing: Some(if rng.gen_bool(0.5) {
                            GangPacking::Whole
                        } else {
                            GangPacking::Partial
                        }),
                    };
                    let id = match alloc.begin_drain(&req) {
                        Ok(id) => id,
                        Err(_) => continue,
                    };
                    let deadline = Instant::now() + Duration::from_millis(100);
                    loop {
                        match alloc.allocate_reserved(id, &req) {
                            Ok(slot) => {
                                register(&oracle, &slot, case);
                                unregister_and_release(&oracle, &alloc, &slot, case);
                                break;
                            }
                            Err(ResourceError::InsufficientResources) => {
                                if Instant::now() >= deadline {
                                    alloc.cancel_drain(id).unwrap();
                                    break;
                                }
                                std::thread::yield_now();
                            }
                            Err(_) => {
                                alloc.cancel_drain(id).unwrap();
                                break;
                            }
                        }
                    }
                }
                drains_done.store(true, Ordering::Release);
            }));
        }
        // The fault actor: seeded node failures against the live churn, with the
        // victims' units written off atomically under the oracle lock.
        let fault_handle = {
            let alloc = Arc::clone(&alloc);
            let oracle = Arc::clone(&oracle);
            let drains_done = Arc::clone(&drains_done);
            let actors_done = Arc::clone(&actors_done);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xFA11ED);
                let mut failed: HashSet<usize> = HashSet::new();
                for _ in 0..FAULTS {
                    std::thread::sleep(Duration::from_millis(5));
                    let node = rng.gen_range(0usize..NODES);
                    let mut o = oracle.lock().unwrap();
                    match alloc.fail_node(node) {
                        Ok(victims) => {
                            failed.insert(node);
                            for id in victims {
                                if let Some(units) = o.registry.remove(&id) {
                                    for u in units {
                                        assert!(
                                            o.live.remove(&u),
                                            "case {case}: evicted unit untracked"
                                        );
                                    }
                                } else {
                                    o.evicted_pending.insert(id);
                                }
                            }
                        }
                        Err(e) => panic!("case {case}: fail_node: {e:?}"),
                    }
                }
                // Keep workers churning until the drain actor has also finished,
                // so its last reservations race post-failure traffic too.
                while !drains_done.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                actors_done.store(true, Ordering::Release);
                failed
            })
        };
        let failed_nodes = fault_handle.join().unwrap();
        for handle in handles {
            handle.join().unwrap();
        }
        done.store(true, Ordering::Release);

        // Teardown: nothing live, nothing reserved, capacity equals exactly the
        // healthy remainder.
        let healthy = NODES - failed_nodes.len();
        assert!(oracle.lock().unwrap().live.is_empty(), "case {case}");
        assert_eq!(alloc.failed_nodes(), failed_nodes.len(), "case {case}");
        assert_eq!(alloc.num_nodes(), healthy, "case {case}");
        assert_eq!(alloc.idle_nodes(), healthy, "case {case}: idle restored");
        assert_eq!(
            alloc.free_cores(),
            healthy as u32 * spec.cores,
            "case {case}: core capacity equals the healthy remainder"
        );
        assert_eq!(
            alloc.free_gpus(),
            healthy as u32 * spec.gpus,
            "case {case}: gpu capacity equals the healthy remainder"
        );
        assert_eq!(alloc.reserved_nodes(), 0, "case {case}: no drain leaked");
        assert!(alloc.drain_status().is_none(), "case {case}");
        // Failed nodes never re-enter the indexes: a Whole-packed gang across
        // every healthy node fits and avoids them.
        let all = alloc
            .allocate_slot(&ResourceRequest {
                cores: spec.cores,
                gpus: spec.gpus,
                mem_gib: 0.0,
                nodes: healthy,
                packing: Some(GangPacking::Whole),
            })
            .expect("healthy remainder must be fully claimable");
        for n in all.node_indices() {
            assert!(
                !failed_nodes.contains(&n),
                "case {case}: failed node {n} re-entered placement"
            );
        }
        alloc.release_slot(&all).unwrap();
    }
}

#[test]
fn task_state_walks_reach_terminal_states() {
    for_each_case("task_state_walks_reach_terminal_states", |rng| {
        let mut state = TaskState::New;
        let mut steps = 0;
        let mut retries = 0;
        for _ in 0..rng.gen_range(1usize..32) {
            let successors = state.successors();
            if successors.is_empty() {
                break;
            }
            let next = successors[rng.gen_range(0usize..successors.len())];
            assert!(state.can_transition_to(next));
            // The only cycle is the requeue edge a node failure takes:
            // Executing → Scheduling (and back through placement).
            if state == TaskState::Executing && next == TaskState::Scheduling {
                retries += 1;
            }
            state = next;
            steps += 1;
        }
        assert!(
            steps <= 6 + 2 * retries,
            "outside the retry cycle the task state graph is acyclic, \
             walk length {steps} with {retries} retries"
        );
    });
}

/// Same for the service state machine, and the bootstrap components only label the
/// three bootstrap phases.
#[test]
fn service_state_walks_are_legal() {
    for_each_case("service_state_walks_are_legal", |rng| {
        let mut state = ServiceState::New;
        let mut bootstrap_phases = 0;
        for _ in 0..rng.gen_range(1usize..32) {
            let successors = state.successors();
            if successors.is_empty() {
                break;
            }
            let next = successors[rng.gen_range(0usize..successors.len())];
            assert!(state.can_transition_to(next));
            if next.bootstrap_component().is_some() {
                bootstrap_phases += 1;
            }
            state = next;
        }
        assert!(bootstrap_phases <= 3);
    });
}

/// The sharded wait-queue front-end preserves the legacy admission contract when
/// racing producers admit through `Scheduler::submit_batch`. The queue-shard
/// count comes from `QUEUE_SHARDS` (default 4; CI runs a {1, 4} matrix in
/// release mode), so the same interleavings prove both the sharded and the
/// single-queue front-end.
///
/// Scenario A (exact ordering oracle): capacity is held full while the producers
/// concurrently admit whole-node service/task mixes, so every waiter parks.
/// Exactly one node then circulates — each consumer releases its slot only
/// *after* appending to the completion log, so the log order equals the
/// placement order. Oracle: every service placement precedes every task
/// placement (the service gate is absolute across shards), and for each
/// (producer, shard) pair the completions replay that producer's admission
/// order (per-shard FIFO at lookahead 1).
///
/// Scenario B (liveness + preemption under gang churn): producers admit mixed
/// sub-node tasks, two-node gangs (random packing), and services; all consumers
/// race while the held nodes are drip-released. Oracle: no admitted waiter is
/// ever lost (every `allocate_admitted` places within its timeout — a lost
/// wakeup parks forever and a double-wake would double-book, failing the
/// release), a placed task never observes a parked service, and teardown leaves
/// no waiter counted, no drain reservation, and an idle allocation.
///
/// Liveness overall: a watchdog aborts the process if a case fails to finish in
/// bounded time — a lost wakeup or shard/gate lock-order violation hangs here.
#[test]
fn sharded_queue_admission_preserves_priority_and_fifo() {
    use hpcml::runtime::scheduler::{Priority, Scheduler};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    let queue_shards: usize = std::env::var("QUEUE_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    const PRODUCERS: u64 = 3;
    const NODES: usize = 4;

    for case in 0..8u64 {
        let seed = 0xBA7C4 ^ case.wrapping_mul(0x9E37_79B9);

        // Bounded-time guarantee for both scenarios of this case.
        let done = Arc::new(AtomicBool::new(false));
        {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for _ in 0..1200 {
                    if done.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                eprintln!(
                    "sharded queue admission property: case {case} exceeded 120 s — lost wakeup?"
                );
                std::process::abort();
            });
        }

        let setup = |lookahead: usize| {
            let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 1);
            let alloc = batch.submit(AllocationRequest::nodes(NODES)).unwrap();
            let spec = alloc.node_spec();
            let scheduler = Arc::new(
                Scheduler::with_lookahead(Arc::clone(&alloc), lookahead)
                    .with_queue_shards(Some(queue_shards)),
            );
            assert_eq!(scheduler.queue_shards(), queue_shards.max(1));
            (batch, alloc, spec, scheduler)
        };

        // ---- Scenario A: exact ordering under single-token circulation. ----
        {
            let (_batch, alloc, spec, scheduler) = setup(1);
            let whole = ResourceRequest {
                cores: spec.cores,
                gpus: 0,
                mem_gib: 0.0,
                nodes: 1,
                packing: None,
            };
            // Hold every node so admitted waiters must park...
            let mut held: Vec<_> = (0..NODES)
                .map(|_| alloc.allocate_slot(&whole).unwrap())
                .collect();

            let mut producers = Vec::new();
            for p in 0..PRODUCERS {
                let scheduler = Arc::clone(&scheduler);
                producers.push(std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (0xA0D ^ p));
                    let len = rng.gen_range(4usize..9);
                    let requests: Vec<(ResourceRequest, Priority)> = (0..len)
                        .map(|_| {
                            let priority = if rng.gen_bool(0.35) {
                                Priority::Service
                            } else {
                                Priority::Task
                            };
                            (whole, priority)
                        })
                        .collect();
                    let admission = scheduler.submit_batch(&requests).expect("admission");
                    assert_eq!(admission.tickets.len(), requests.len());
                    assert_eq!(
                        admission.shard_batches.iter().sum::<usize>(),
                        requests.len(),
                        "case {case}: the fan-out shape must cover the batch"
                    );
                    admission.tickets
                }));
            }
            let batches: Vec<_> = producers.into_iter().map(|h| h.join().unwrap()).collect();

            // One consumer per ticket; the log push happens strictly before the
            // release that lets the next placement happen. Entries are
            // (priority, producer, home shard, per-producer sequence number).
            type ServeLog = Arc<Mutex<Vec<(Priority, u64, usize, usize)>>>;
            let log: ServeLog = Arc::new(Mutex::new(Vec::new()));
            let mut consumers = Vec::new();
            for (p, tickets) in batches.into_iter().enumerate() {
                for (seq, ticket) in tickets.into_iter().enumerate() {
                    let scheduler = Arc::clone(&scheduler);
                    let log = Arc::clone(&log);
                    let shard = ticket.shard();
                    let priority = ticket.priority();
                    consumers.push(std::thread::spawn(move || {
                        let slot = scheduler
                            .allocate_admitted(ticket, Duration::from_secs(60))
                            .expect("no admitted waiter may be lost");
                        log.lock().unwrap().push((priority, p as u64, shard, seq));
                        scheduler.release(&slot).unwrap();
                    }));
                }
            }
            // ...then let exactly one node circulate through the queues.
            alloc.release_slot(&held.remove(0)).unwrap();
            scheduler.notify_capacity();
            for c in consumers {
                c.join().unwrap();
            }

            let log = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
            let first_task = log
                .iter()
                .position(|(pr, ..)| *pr == Priority::Task)
                .unwrap_or(log.len());
            assert!(
                log[first_task..]
                    .iter()
                    .all(|(pr, ..)| *pr == Priority::Task),
                "case {case}: a service placed after a task: {log:?}"
            );
            // Arrival order holds per class queue: services and tasks park in
            // different queues even when they share a shard.
            let mut last_seq: std::collections::HashMap<(bool, u64, usize), usize> =
                std::collections::HashMap::new();
            for &(pr, p, shard, seq) in &log {
                if let Some(prev) = last_seq.insert((pr == Priority::Service, p, shard), seq) {
                    assert!(
                        prev < seq,
                        "case {case}: producer {p} shard {shard} {pr:?} served seq {seq} \
                         after {prev} — per-shard FIFO broken: {log:?}"
                    );
                }
            }
            for slot in &held {
                alloc.release_slot(slot).unwrap();
            }
            assert_eq!(scheduler.waiting_services(), 0, "case {case}");
            assert_eq!(scheduler.waiting_tasks(), 0, "case {case}");
            assert!(alloc.is_idle(), "case {case}: scenario A teardown");
        }

        // ---- Scenario B: liveness and preemption under gang churn. ----
        {
            let (_batch, alloc, spec, scheduler) = setup(1);
            let whole = ResourceRequest {
                cores: spec.cores,
                gpus: 0,
                mem_gib: 0.0,
                nodes: 1,
                packing: None,
            };
            let held: Vec<_> = (0..NODES)
                .map(|_| alloc.allocate_slot(&whole).unwrap())
                .collect();

            let mut producers = Vec::new();
            for p in 0..PRODUCERS {
                let scheduler = Arc::clone(&scheduler);
                producers.push(std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (0x6A46 ^ p));
                    let len = rng.gen_range(4usize..9);
                    let requests: Vec<(ResourceRequest, Priority)> = (0..len)
                        .map(|_| {
                            if rng.gen_bool(0.3) {
                                // Single-node service.
                                (
                                    ResourceRequest {
                                        cores: rng.gen_range(1u32..spec.cores + 1),
                                        gpus: 0,
                                        mem_gib: 0.0,
                                        nodes: 1,
                                        packing: None,
                                    },
                                    Priority::Service,
                                )
                            } else if rng.gen_bool(0.4) {
                                // Two-node gang, random packing.
                                (
                                    ResourceRequest {
                                        cores: rng.gen_range(1u32..spec.cores / 2 + 1),
                                        gpus: 0,
                                        mem_gib: 0.0,
                                        nodes: 2,
                                        packing: match rng.gen_range(0u32..3) {
                                            0 => Some(GangPacking::Whole),
                                            1 => Some(GangPacking::Partial),
                                            _ => None,
                                        },
                                    },
                                    Priority::Task,
                                )
                            } else {
                                // Sub-node task.
                                (
                                    ResourceRequest {
                                        cores: rng.gen_range(1u32..spec.cores / 2 + 1),
                                        gpus: 0,
                                        mem_gib: 0.0,
                                        nodes: 1,
                                        packing: None,
                                    },
                                    Priority::Task,
                                )
                            }
                        })
                        .collect();
                    scheduler
                        .submit_batch(&requests)
                        .expect("admission")
                        .tickets
                }));
            }
            let batches: Vec<_> = producers.into_iter().map(|h| h.join().unwrap()).collect();

            let mut consumers = Vec::new();
            for tickets in batches {
                for ticket in tickets {
                    let scheduler = Arc::clone(&scheduler);
                    let priority = ticket.priority();
                    consumers.push(std::thread::spawn(move || {
                        let slot = scheduler
                            .allocate_admitted(ticket, Duration::from_secs(60))
                            .expect("no admitted waiter may be lost");
                        if priority == Priority::Task {
                            // No new services are admitted at this point, so a
                            // parked service here means a task jumped the gate.
                            assert_eq!(
                                scheduler.waiting_services(),
                                0,
                                "case {case}: a task placed while a service waited"
                            );
                        }
                        scheduler.release(&slot).unwrap();
                    }));
                }
            }
            for slot in &held {
                alloc.release_slot(slot).unwrap();
                scheduler.notify_capacity();
                std::thread::yield_now();
            }
            for c in consumers {
                c.join().unwrap();
            }

            assert_eq!(scheduler.waiting_services(), 0, "case {case}");
            assert_eq!(scheduler.waiting_tasks(), 0, "case {case}");
            assert_eq!(alloc.reserved_nodes(), 0, "case {case}: no drain leaked");
            assert!(alloc.drain_status().is_none(), "case {case}");
            assert!(alloc.is_idle(), "case {case}: scenario B teardown");
            assert_eq!(
                scheduler.shard_wakeup_counts().len(),
                queue_shards.max(1),
                "case {case}: one wakeup counter per shard"
            );
        }

        done.store(true, Ordering::Release);
    }
}

/// Equivalence regression for the batched admission path at the legacy setting:
/// at `queue_shards = 1` a 10⁴-submission burst admitted through
/// `Scheduler::submit_batch` and consumed ticket-by-ticket places on *exactly*
/// the same node sequence as the same requests submitted one-by-one through
/// `Scheduler::allocate` — same placement multiset, same evolving occupancy,
/// same final state. Both paths hold a sliding window of live slots so the
/// occupancy genuinely evolves (fragmentation included), and the window policy
/// is identical on both sides, so any divergence is the scheduler's.
#[test]
fn batched_burst_matches_one_by_one_at_single_shard() {
    use hpcml::runtime::scheduler::{Priority, Scheduler};
    use std::sync::Arc;
    use std::time::Duration;

    const BURST: usize = 10_000;
    // 24 live slots x at most 8 cores = 192 of the 256 cores: a 64-core node
    // always keeps at least 8 cores free somewhere, so no request ever parks.
    const WINDOW: usize = 24;

    for case in 0..4u64 {
        let seed = 0xEC0 ^ case.wrapping_mul(0x9E37_79B9);
        let mut rng = StdRng::seed_from_u64(seed);
        let requests: Vec<ResourceRequest> = (0..BURST)
            .map(|_| ResourceRequest {
                cores: rng.gen_range(1u32..9),
                gpus: 0,
                mem_gib: 0.0,
                nodes: 1,
                packing: None,
            })
            .collect();

        let fresh = || {
            let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 1);
            let alloc = batch.submit(AllocationRequest::nodes(4)).unwrap();
            let scheduler = Arc::new(
                Scheduler::with_lookahead(Arc::clone(&alloc), 1).with_queue_shards(Some(1)),
            );
            assert_eq!(scheduler.queue_shards(), 1);
            (batch, alloc, scheduler)
        };

        // Path A: one-by-one submission.
        let (_batch_a, alloc_a, sched_a) = fresh();
        let mut live: std::collections::VecDeque<hpcml::platform::Slot> =
            std::collections::VecDeque::new();
        let mut nodes_a = Vec::with_capacity(BURST);
        for req in &requests {
            if live.len() == WINDOW {
                sched_a.release(&live.pop_front().unwrap()).unwrap();
            }
            let slot = sched_a
                .allocate(req, Priority::Task, Duration::from_secs(5))
                .expect("window policy keeps every request satisfiable");
            nodes_a.push(slot.members[0].node_index);
            live.push_back(slot);
        }
        for slot in &live {
            sched_a.release(slot).unwrap();
        }
        assert!(alloc_a.is_idle(), "case {case}: path A teardown");

        // Path B: one burst through batched admission, tickets consumed in
        // submission order.
        let (_batch_b, alloc_b, sched_b) = fresh();
        let batch_reqs: Vec<(ResourceRequest, Priority)> =
            requests.iter().map(|r| (*r, Priority::Task)).collect();
        let admission = sched_b.submit_batch(&batch_reqs).expect("admission");
        assert_eq!(admission.tickets.len(), BURST);
        assert_eq!(
            admission.shard_batches,
            vec![BURST],
            "case {case}: a single shard takes the whole burst"
        );
        let mut live = std::collections::VecDeque::new();
        let mut nodes_b = Vec::with_capacity(BURST);
        for ticket in admission.tickets {
            if live.len() == WINDOW {
                sched_b.release(&live.pop_front().unwrap()).unwrap();
            }
            let slot = sched_b
                .allocate_admitted(ticket, Duration::from_secs(5))
                .expect("window policy keeps every ticket satisfiable");
            nodes_b.push(slot.members[0].node_index);
            live.push_back(slot);
        }
        for slot in &live {
            sched_b.release(slot).unwrap();
        }
        assert!(alloc_b.is_idle(), "case {case}: path B teardown");

        assert_eq!(
            nodes_a, nodes_b,
            "case {case}: batched admission diverged from one-by-one at one shard"
        );
        assert_eq!(alloc_a.free_cores(), alloc_b.free_cores(), "case {case}");
        assert_eq!(alloc_a.idle_nodes(), alloc_b.idle_nodes(), "case {case}");
    }
}

/// Zero-copy PUB/SUB fan-out under concurrent subscribe/unsubscribe churn: every
/// message reaches every subscriber that is alive for its whole publish window,
/// exactly once and in per-topic publish order — at subscriber-shard counts 1 and 4.
#[test]
fn sharded_pubsub_churn_delivers_exactly_once_in_order() {
    use hpcml::comm::pubsub::Publisher;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    for shards in [1usize, 4] {
        let publisher = Publisher::with_shards(shards);
        assert_eq!(publisher.shard_count(), shards);
        const MESSAGES: u64 = 200;
        const STABLE_SUBS: usize = 6;

        // Stable subscribers join before the first publish and live past the last.
        let stable: Vec<_> = (0..STABLE_SUBS)
            .map(|_| publisher.subscribe(&["churn.topic"]))
            .collect();

        // Churning threads subscribe and unsubscribe continuously while the
        // publisher runs; their deliveries are incidental — the property under test
        // is that churn never corrupts the stable subscribers' streams.
        let stop = Arc::new(AtomicBool::new(false));
        let churners: Vec<_> = (0..3)
            .map(|_| {
                let publisher = publisher.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut joined = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let sub = publisher.subscribe(&["churn.topic"]);
                        let _ = sub.try_recv();
                        drop(sub);
                        joined += 1;
                        // Keep the churn loop from starving the publisher on small hosts.
                        std::thread::yield_now();
                    }
                    joined
                })
            })
            .collect();

        let pub2 = publisher.clone();
        let publisher_thread = std::thread::spawn(move || {
            for i in 0..MESSAGES {
                pub2.publish(&Message::new("churn.topic", "seq").with_text(&i.to_string()));
            }
        });
        publisher_thread.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        let churn_rounds: u64 = churners.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(churn_rounds > 0, "churners made progress");
        // Pruning is publish-driven: one non-matching publish sweeps out every
        // subscriber the churners dropped.
        assert_eq!(publisher.publish(&Message::new("other.topic", "sweep")), 0);

        for (s, sub) in stable.iter().enumerate() {
            let got = sub.drain();
            let seqs: Vec<u64> = got
                .iter()
                .map(|m| m.text().unwrap().parse().unwrap())
                .collect();
            assert_eq!(
                seqs,
                (0..MESSAGES).collect::<Vec<u64>>(),
                "shards={shards} subscriber {s}: exactly once, publish order"
            );
        }
        assert_eq!(
            publisher.subscriber_count(),
            STABLE_SUBS,
            "shards={shards}: dropped churn subscribers were pruned"
        );
    }
}

/// Batched transport equivalence: a batch of K requests observes the coalescing rule
/// on the virtual clock (one latency sample each way, bandwidth for the summed bytes),
/// and batched receive paths never reorder items relative to singleton receives.
#[test]
fn batched_burst_transport_matches_singleton_semantics() {
    use hpcml::comm::link::Link;
    use hpcml::comm::queue::WorkQueue;
    use hpcml::comm::reqrep::ReqRepServer;
    use hpcml::platform::network::LatencyProfile;
    use std::time::Duration;

    // Coalescing-rule pricing, checked exactly with a zero-sigma profile.
    let clock = ClockSpec::scaled(100_000.0).build();
    let profile = LatencyProfile::normal_ms(2.0, 0.0).with_per_kib_ms(0.5);
    let link = Link::new("prop", std::sync::Arc::clone(&clock), profile, 11);
    for k in [1usize, 4, 16] {
        let batched = link.traverse_batch(k, k * 2048);
        let expected = 0.002 + (k as f64 * 2.0) * 0.5e-3;
        assert!(
            (batched - expected).abs() < 1e-9,
            "k={k}: batch pays one 2 ms sample + bandwidth of the summed bytes, got {batched}"
        );
    }

    // WorkQueue: recv_batch drains in FIFO order, identical to singleton pops.
    let q = WorkQueue::unbounded("prop.queue");
    let (tx, rx) = q.split();
    tx.push_batch((0..100).collect()).unwrap();
    let mut via_batch = Vec::new();
    while let Ok(mut chunk) = rx.recv_batch(7, Duration::from_millis(5)) {
        via_batch.append(&mut chunk);
    }
    assert_eq!(via_batch, (0..100).collect::<Vec<i32>>());

    // ReqRep: request_batch returns replies in request order through a server that
    // serves via recv_batch.
    let server = ReqRepServer::new("prop.svc");
    let client = server.client(Link::instant(ClockSpec::scaled(100_000.0).build()));
    let serve = std::thread::spawn(move || {
        let mut served = 0;
        while served < 32 {
            let batch = server.recv_batch(8, Duration::from_secs(10)).unwrap();
            for (msg, r) in batch {
                served += 1;
                r.reply(Message::new("prop.svc", "reply").with_text(msg.text().unwrap()))
                    .unwrap();
            }
        }
    });
    let reqs: Vec<Message> = (0..32)
        .map(|i| Message::new("prop.svc", "req").with_text(&i.to_string()))
        .collect();
    let replies = client.request_batch(reqs, Duration::from_secs(10)).unwrap();
    serve.join().unwrap();
    let echoed: Vec<usize> = replies
        .iter()
        .map(|m| m.text().unwrap().parse().unwrap())
        .collect();
    assert_eq!(echoed, (0..32).collect::<Vec<usize>>());
}
