//! Cross-crate integration tests: client API → runtime → platform → serving, exercising
//! the full local and remote deployment scenarios of the paper.

use std::time::Duration;

use hpcml::prelude::*;
use hpcml::serving::ModelSpec;

mod common;
use common::wait_until;

fn session(scale: f64) -> Session {
    Session::builder("e2e")
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(scale))
        .seed(1234)
        .build()
        .expect("session")
}

#[test]
fn full_local_llm_scenario() {
    // Gentle compression: real scheduling jitter is amplified 50x into virtual time,
    // so the per-request communication budget (~6 ms real before it rivals llama-8b
    // inference) holds even on a fully loaded CI host; 500x flaked under load.
    let s = session(50.0);
    let pilot = s
        .submit_pilot(
            PilotDescription::new(PlatformId::Delta)
                .nodes(2)
                .runtime_secs(7200.0),
        )
        .expect("pilot");
    assert_eq!(pilot.state(), PilotState::Active);

    // Two llama-8b services, one GPU each.
    let services: Vec<_> = (0..2)
        .map(|i| {
            s.submit_service(
                ServiceDescription::new(format!("llm-{i}"))
                    .model(ModelSpec::sim_llama_8b())
                    .gpus(1),
            )
            .expect("service")
        })
        .collect();
    for svc in &services {
        svc.wait_ready_timeout(Duration::from_secs(60))
            .expect("ready");
        let bt = svc.bootstrap_times().expect("bootstrap recorded");
        assert!(
            bt.init_secs > bt.launch_secs,
            "model init dominates bootstrap"
        );
        assert!(
            bt.publish_secs < bt.launch_secs,
            "publish below launch (MPI platform)"
        );
    }
    assert_eq!(s.metrics().bootstrap_count(), 2);

    // Liveness probes answer.
    assert!(s.service_manager().probe("llm-0").unwrap());
    assert!(s.service_manager().probe("llm-1").unwrap());

    // Four clients spread requests across both services.
    let tasks: Vec<_> = (0..4)
        .map(|i| {
            s.submit_task(
                TaskDescription::new(format!("client-{i}"))
                    .kind(TaskKind::inference_client_for_model("llama-8b", 4))
                    .cores(1),
            )
            .expect("task")
        })
        .collect();
    for t in &tasks {
        assert_eq!(
            t.wait_done_timeout(Duration::from_secs(300)).expect("done"),
            TaskState::Done
        );
    }

    let metrics = s.metrics();
    assert_eq!(metrics.response_count(), 16);
    let summaries = metrics.response_summaries();
    // With a real model the inference component dominates communication by orders of
    // magnitude (the paper's experiment 3 conclusion). Compared by median: the mean
    // is one host-scheduling hiccup away from a flake under a scaled clock.
    assert!(summaries["inference"].p50 > 10.0 * summaries["communication"].p50);
    assert!(summaries["inference"].mean > 0.5);

    // Orderly shutdown: services reach Stopped, slots return to the pool.
    s.close();
    for svc in &services {
        assert_eq!(svc.state(), ServiceState::Stopped);
    }
}

#[test]
fn remote_services_skip_bootstrap_accounting_but_serve_requests() {
    let s = session(2000.0);
    s.submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(1))
        .expect("pilot");

    let remote = s
        .submit_service(
            ServiceDescription::new("remote-llm")
                .model(ModelSpec::sim_llama_8b())
                .remote(PlatformId::R3Cloud),
        )
        .expect("remote service");
    remote
        .wait_ready_timeout(Duration::from_secs(60))
        .expect("ready");
    assert_eq!(
        s.metrics().bootstrap_count(),
        0,
        "remote models are persistent: no BT samples"
    );

    let t = s
        .submit_task(
            TaskDescription::new("remote-client").kind(TaskKind::inference_client("remote-llm", 3)),
        )
        .expect("task");
    assert_eq!(
        t.wait_done_timeout(Duration::from_secs(300)).unwrap(),
        TaskState::Done
    );
    assert_eq!(s.metrics().response_count(), 3);
    s.close();
}

#[test]
fn mixed_local_and_remote_services_with_state_updates() {
    let s = session(1000.0);
    let updates = s.subscribe_updates(&["state.service"]);
    s.submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(1))
        .expect("pilot");

    let local = s
        .submit_service(
            ServiceDescription::new("noop-local")
                .model(ModelSpec::noop())
                .cores(1),
        )
        .expect("local");
    let remote = s
        .submit_service(
            ServiceDescription::new("noop-remote")
                .model(ModelSpec::noop())
                .remote(PlatformId::R3Cloud),
        )
        .expect("remote");
    local.wait_ready().unwrap();
    remote.wait_ready().unwrap();

    for target in ["noop-local", "noop-remote"] {
        let t = s
            .submit_task(
                TaskDescription::new(format!("c-{target}"))
                    .kind(TaskKind::inference_client(target, 6)),
            )
            .unwrap();
        t.wait_done_timeout(Duration::from_secs(120)).unwrap();
    }

    let metrics = s.metrics();
    assert_eq!(metrics.response_count(), 12);
    // NOOP: communication dominates; inference is zero for both deployments.
    let summaries = metrics.response_summaries();
    assert!(summaries["inference"].mean < 1e-6);
    assert!(summaries["communication"].mean > summaries["service"].mean);

    // Ready state updates were published for both services.
    let msgs = updates.drain();
    let ready_updates = msgs
        .iter()
        .filter(|m| m.header("state") == Some("Ready"))
        .count();
    assert!(ready_updates >= 2, "expected Ready updates, got {msgs:?}");
    s.close();
}

#[test]
fn tasks_wait_for_their_services_and_staging_happens() {
    let s = session(5000.0);
    s.submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(1))
        .expect("pilot");

    // The task depends on a service submitted *after* it: the readiness relation must
    // still hold (the task blocks until the service endpoint is published).
    let task = s
        .submit_task(
            TaskDescription::new("dependent")
                .kind(TaskKind::inference_client("late-svc", 2))
                .after_service("late-svc")
                .stage_in(DataDirective::local("input.vcf", 300.0))
                .stage_out(DataDirective::local("result.csv", 1.0)),
        )
        .expect("task");
    // The task must stay non-final for virtual seconds, not just survive one
    // real-time poll: wait on the session clock and require the timeout path.
    assert!(
        !wait_until(&s, 5.0, || task.state().is_final()),
        "task must still be waiting for its service, state: {:?}",
        task.state()
    );

    let svc = s
        .submit_service(
            ServiceDescription::new("late-svc")
                .model(ModelSpec::noop())
                .cores(1),
        )
        .expect("service");
    svc.wait_ready().unwrap();
    assert_eq!(
        task.wait_done_timeout(Duration::from_secs(120)).unwrap(),
        TaskState::Done
    );

    // Staging went through the data manager.
    assert_eq!(s.metrics().scalar_values("staging.mib").len(), 2);
    s.close();
}

#[test]
fn session_close_is_idempotent_and_rejects_new_work() {
    let s = session(5000.0);
    s.submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(1))
        .expect("pilot");
    s.close();
    s.close();
    assert!(matches!(
        s.submit_task(TaskDescription::new("x")),
        Err(RuntimeError::SessionClosed)
    ));
    assert!(matches!(
        s.submit_service(ServiceDescription::new("y")),
        Err(RuntimeError::SessionClosed)
    ));
    assert!(matches!(
        s.submit_pilot(PilotDescription::new(PlatformId::Delta)),
        Err(RuntimeError::SessionClosed)
    ));
}
