//! Observability integration tests: state-update publication (paper Fig. 2 flow ⑥),
//! state-timestamp ordering, and the consistency of the bootstrap breakdown with the
//! service's recorded state transitions.

use std::time::Duration;

use hpcml::prelude::*;
use hpcml::serving::ModelSpec;

mod common;
use common::wait_until;

fn session() -> Session {
    Session::builder("observability")
        .platform(PlatformId::Delta)
        .clock(ClockSpec::scaled(2000.0))
        .seed(321)
        .build()
        .expect("session")
}

#[test]
fn service_state_timestamps_are_ordered_and_match_bootstrap() {
    let s = session();
    s.submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(1))
        .expect("pilot");
    let svc = s
        .submit_service(
            ServiceDescription::new("observed")
                .model(ModelSpec::sim_llama_8b())
                .gpus(1),
        )
        .expect("service");
    svc.wait_ready_timeout(Duration::from_secs(60))
        .expect("ready");

    let ts = svc.timestamps();
    // Every lifecycle state up to Ready must be timestamped, in increasing order.
    let order = [
        "New",
        "Scheduling",
        "Launching",
        "Initializing",
        "Publishing",
        "Ready",
    ];
    let mut last = f64::MIN;
    for state in order {
        let t = *ts
            .get(state)
            .unwrap_or_else(|| panic!("missing timestamp for {state}: {ts:?}"));
        assert!(
            t >= last,
            "timestamps must be non-decreasing ({state} at {t} after {last})"
        );
        last = t;
    }

    // The bootstrap components must equal the gaps between the corresponding states.
    let bt = svc.bootstrap_times().expect("bootstrap recorded");
    let launch_gap = ts["Initializing"] - ts["Launching"];
    let init_gap = ts["Publishing"] - ts["Initializing"];
    let publish_gap = ts["Ready"] - ts["Publishing"];
    assert!(
        (bt.launch_secs - launch_gap).abs() < 0.2 * launch_gap.max(0.5),
        "launch {bt:?} vs gap {launch_gap}"
    );
    assert!(
        (bt.init_secs - init_gap).abs() < 0.2 * init_gap.max(0.5),
        "init {bt:?} vs gap {init_gap}"
    );
    assert!(
        (bt.publish_secs - publish_gap).abs() < 0.2 * publish_gap.max(0.5) + 0.2,
        "publish {bt:?} vs gap {publish_gap}"
    );
    assert!((bt.total() - (ts["Ready"] - ts["Launching"])).abs() < 1.0);

    s.close();
}

#[test]
fn task_timestamps_cover_every_phase() {
    let s = session();
    s.submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(1))
        .expect("pilot");
    let task = s
        .submit_task(
            TaskDescription::new("observed-task")
                .kind(TaskKind::compute_secs(3.0))
                .stage_in(DataDirective::local("in.dat", 10.0))
                .stage_out(DataDirective::local("out.dat", 1.0)),
        )
        .expect("task");
    task.wait_done_timeout(Duration::from_secs(60))
        .expect("done");

    let ts = task.timestamps();
    for state in [
        "New",
        "Scheduling",
        "StagingInput",
        "Executing",
        "StagingOutput",
        "Done",
    ] {
        assert!(ts.contains_key(state), "missing {state} in {ts:?}");
    }
    // Execution must have taken at least the requested virtual 3 seconds.
    assert!(ts["StagingOutput"] - ts["Executing"] >= 2.5);
    s.close();
}

#[test]
fn update_bus_reports_full_service_lifecycle() {
    let s = session();
    let updates = s.subscribe_updates(&["state.service"]);
    s.submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(1))
        .expect("pilot");
    let svc = s
        .submit_service(
            ServiceDescription::new("bus-svc")
                .model(ModelSpec::noop())
                .cores(1),
        )
        .expect("service");
    svc.wait_ready().expect("ready");
    s.service_manager().stop("bus-svc").expect("stop");

    // Updates are published asynchronously: poll the bus on the session clock
    // until the terminal state arrives rather than leaning on close() ordering.
    let mut states: Vec<String> = Vec::new();
    let stopped = wait_until(&s, 30.0, || {
        states.extend(
            updates
                .drain()
                .into_iter()
                .filter_map(|m| m.header("state").map(str::to_string)),
        );
        states.iter().any(|s| s == "Stopped")
    });
    assert!(stopped, "missing Stopped update in {states:?}");
    for expected in ["Scheduling", "Launching", "Ready"] {
        assert!(
            states.iter().any(|s| s == expected),
            "missing {expected} update in {states:?}"
        );
    }
    s.close();
}

#[test]
fn metrics_scalars_track_task_execution() {
    let s = session();
    s.submit_pilot(PilotDescription::new(PlatformId::Delta).nodes(1))
        .expect("pilot");
    for i in 0..3 {
        s.submit_task(TaskDescription::new(format!("t{i}")).kind(TaskKind::compute_secs(2.0)))
            .expect("task");
    }
    s.wait_tasks(Duration::from_secs(60)).expect("tasks");
    let exec = s.metrics().scalar_summary("task.exec_secs");
    assert_eq!(exec.count, 3);
    assert!(
        exec.mean >= 1.8,
        "execution time must reflect the 2 s compute kernels, got {}",
        exec.mean
    );
    s.close();
}
