//! Seedable random distributions used to model stochastic durations.
//!
//! The experiment harness needs reproducible randomness (same seed → same figure), so
//! every model that samples a duration takes an explicit `&mut impl Rng`. Distributions
//! are plain `serde`-serialisable values so platform/model calibration constants can be
//! embedded in experiment configurations.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A univariate distribution over non-negative real values (durations in seconds,
/// latencies, token counts, ...). Samples are clamped at zero where the underlying
/// distribution admits negative values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always returns the same value.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// Gaussian with the given mean and standard deviation, clamped at zero.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
    /// Log-normal parameterised by the *underlying* normal's mu and sigma.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Exponential with the given rate (lambda).
    Exponential {
        /// Rate parameter; mean is `1/rate`.
        rate: f64,
    },
    /// Gaussian truncated (by rejection/clamping) to `[lo, hi]`.
    TruncatedNormal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
        /// Lower clamp.
        lo: f64,
        /// Upper clamp.
        hi: f64,
    },
}

impl Dist {
    /// A distribution that always yields `v`.
    pub fn constant(v: f64) -> Self {
        Dist::Constant(v)
    }

    /// A normal distribution clamped at zero.
    pub fn normal(mean: f64, std: f64) -> Self {
        Dist::Normal { mean, std }
    }

    /// A uniform distribution over `[lo, hi)`.
    pub fn uniform(lo: f64, hi: f64) -> Self {
        assert!(hi >= lo, "uniform upper bound must be >= lower bound");
        Dist::Uniform { lo, hi }
    }

    /// An exponential distribution with the given mean.
    pub fn exponential_with_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "exponential mean must be positive");
        Dist::Exponential { rate: 1.0 / mean }
    }

    /// A log-normal distribution specified by its *target* mean and coefficient of
    /// variation (std/mean) — convenient for long-tailed duration models.
    pub fn lognormal_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(
            mean > 0.0 && cv >= 0.0,
            "lognormal mean must be > 0 and cv >= 0"
        );
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Dist::LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => {
                if hi > lo {
                    rng.gen_range(lo..hi)
                } else {
                    lo
                }
            }
            Dist::Normal { mean, std } => (mean + std * standard_normal(rng)).max(0.0),
            Dist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            Dist::Exponential { rate } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -u.ln() / rate
            }
            Dist::TruncatedNormal { mean, std, lo, hi } => {
                (mean + std * standard_normal(rng)).clamp(lo, hi)
            }
        }
    }

    /// Analytical mean of the distribution (before the zero clamp; the clamp bias is
    /// negligible for the calibration constants used in this workspace where
    /// `mean >> std`).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Normal { mean, .. } => mean,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Exponential { rate } => 1.0 / rate,
            Dist::TruncatedNormal { mean, lo, hi, .. } => mean.clamp(lo, hi),
        }
    }

    /// Sample and interpret the value as a duration in seconds.
    pub fn sample_secs<R: Rng + ?Sized>(&self, rng: &mut R) -> std::time::Duration {
        std::time::Duration::from_secs_f64(self.sample(rng).max(0.0))
    }
}

/// One draw from the standard normal distribution (Box–Muller transform).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn sample_mean(d: &Dist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_always_same() {
        let d = Dist::constant(3.5);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 3.5);
        }
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    fn uniform_within_bounds() {
        let d = Dist::uniform(2.0, 4.0);
        let mut r = rng();
        for _ in 0..1000 {
            let v = d.sample(&mut r);
            assert!((2.0..4.0).contains(&v));
        }
        assert!((sample_mean(&d, 20_000) - 3.0).abs() < 0.05);
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let d = Dist::uniform(5.0, 5.0);
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 5.0);
    }

    #[test]
    fn normal_mean_and_clamp() {
        let d = Dist::normal(10.0, 2.0);
        assert!((sample_mean(&d, 50_000) - 10.0).abs() < 0.1);
        // Heavily negative mean gets clamped to zero samples.
        let clamped = Dist::normal(-5.0, 0.1);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(clamped.sample(&mut r), 0.0);
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Dist::exponential_with_mean(4.0);
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert!((sample_mean(&d, 100_000) - 4.0).abs() < 0.15);
    }

    #[test]
    fn lognormal_mean_cv_calibration() {
        let d = Dist::lognormal_mean_cv(30.0, 0.2);
        assert!((d.mean() - 30.0).abs() < 1e-9);
        let m = sample_mean(&d, 100_000);
        assert!((m - 30.0).abs() < 0.5, "sample mean {m}");
        let mut r = rng();
        for _ in 0..1000 {
            assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let d = Dist::TruncatedNormal {
            mean: 1.0,
            std: 5.0,
            lo: 0.5,
            hi: 1.5,
        };
        let mut r = rng();
        for _ in 0..1000 {
            let v = d.sample(&mut r);
            assert!((0.5..=1.5).contains(&v));
        }
    }

    #[test]
    fn sample_secs_never_negative() {
        let d = Dist::normal(0.0, 1.0);
        let mut r = rng();
        for _ in 0..100 {
            let _ = d.sample_secs(&mut r); // would panic on negative input
        }
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let d = Dist::normal(5.0, 1.0);
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..16).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..16).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "upper bound")]
    fn uniform_rejects_inverted_bounds() {
        let _ = Dist::uniform(3.0, 1.0);
    }
}
