//! Virtual time: clocks, time points, and stopwatches.
//!
//! The runtime performs its orchestration with real threads, but every hardware-bound
//! wait (model load, token generation, WAN latency, launcher start-up) is expressed as a
//! *virtual* sleep on a [`Clock`]. Exchanging the clock implementation lets the same code
//! run in real time (examples), compressed time (benchmarks reproducing the paper's
//! figures), or fully deterministic manual time (unit tests).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};

/// A point in virtual time, measured from the owning clock's epoch.
///
/// `SimTime` is an absolute time stamp; differences between two stamps are
/// [`Duration`]s. All recorded experiment metrics are durations of virtual time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(Duration);

impl SimTime {
    /// The clock epoch (t = 0).
    pub const ZERO: SimTime = SimTime(Duration::ZERO);

    /// Construct a time stamp from seconds since the epoch.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(Duration::from_secs_f64(secs.max(0.0)))
    }

    /// Construct a time stamp from a duration since the epoch.
    pub fn from_duration(d: Duration) -> Self {
        SimTime(d)
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0.as_secs_f64()
    }

    /// The underlying duration since the epoch.
    pub fn as_duration(&self) -> Duration {
        self.0
    }

    /// Duration elapsed since an earlier time stamp (saturating at zero).
    pub fn since(&self, earlier: SimTime) -> Duration {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.0.saturating_sub(rhs.0)
    }
}

/// A source of virtual time.
///
/// Implementations must be cheap to clone behind an [`Arc`] and safe to share across the
/// many threads of the runtime (executor workers, service threads, manager threads).
pub trait Clock: Send + Sync {
    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// Block the calling thread for `d` of virtual time.
    fn sleep(&self, d: Duration);

    /// Virtual-to-real compression factor (1.0 for a real-time clock).
    fn scale(&self) -> f64 {
        1.0
    }

    /// Human-readable description, used in experiment metadata.
    fn describe(&self) -> String {
        format!("clock(scale={})", self.scale())
    }
}

/// Shared, dynamically dispatched clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// Declarative clock configuration, serialisable into experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClockSpec {
    /// Wall-clock time, no compression.
    Real,
    /// Compressed time: one virtual second takes `1/scale` real seconds.
    Scaled(f64),
    /// Fully manual time, advanced explicitly by the test driver.
    Manual,
}

impl ClockSpec {
    /// Convenience constructor for a scaled clock.
    pub fn scaled(scale: f64) -> Self {
        ClockSpec::Scaled(scale)
    }

    /// Build the clock described by this spec.
    pub fn build(&self) -> SharedClock {
        match *self {
            ClockSpec::Real => Arc::new(RealClock::new()),
            ClockSpec::Scaled(s) => Arc::new(ScaledClock::new(s)),
            ClockSpec::Manual => Arc::new(ManualClock::new()),
        }
    }
}

impl Default for ClockSpec {
    fn default() -> Self {
        ClockSpec::Scaled(1000.0)
    }
}

/// Wall-clock backed clock: virtual time equals real elapsed time.
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// Create a real-time clock whose epoch is "now".
    pub fn new() -> Self {
        RealClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed())
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    fn describe(&self) -> String {
        "real".to_string()
    }
}

/// Compressed clock: `scale` virtual seconds elapse per real second.
///
/// A scale of 1000 means a 30 s model load is simulated by a 30 ms real sleep while the
/// recorded virtual duration remains 30 s. Orchestration work (queueing, scheduling,
/// message passing) still takes its real time, which is also accounted in virtual time —
/// i.e. it is *scaled up*. For the experiments this is conservative: real runtime
/// overheads appear `scale`× larger, so if the reproduced overheads are still negligible
/// the paper's conclusion holds a fortiori. The harness reports both.
#[derive(Debug)]
pub struct ScaledClock {
    epoch: Instant,
    scale: f64,
}

impl ScaledClock {
    /// Create a scaled clock with the given compression factor (must be > 0).
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "clock scale must be positive, got {scale}");
        ScaledClock {
            epoch: Instant::now(),
            scale,
        }
    }
}

impl Clock for ScaledClock {
    fn now(&self) -> SimTime {
        SimTime(Duration::from_secs_f64(
            self.epoch.elapsed().as_secs_f64() * self.scale,
        ))
    }

    fn sleep(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        let real = Duration::from_secs_f64(d.as_secs_f64() / self.scale);
        // Sleeping less than ~50µs real time is dominated by scheduler jitter; spin
        // instead so short virtual delays stay approximately proportional.
        if real < Duration::from_micros(50) {
            let start = Instant::now();
            while start.elapsed() < real {
                std::hint::spin_loop();
            }
        } else {
            std::thread::sleep(real);
        }
    }

    fn scale(&self) -> f64 {
        self.scale
    }

    fn describe(&self) -> String {
        format!("scaled(x{})", self.scale)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Waiter {
    deadline: SimTime,
    seq: u64,
}

impl Ord for Waiter {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on deadline.
        other
            .deadline
            .cmp(&self.deadline)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Waiter {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct ManualState {
    now: SimTime,
    pending: BinaryHeap<Waiter>,
    next_seq: u64,
}

/// Deterministic clock advanced explicitly by the test driver.
///
/// Threads calling [`Clock::sleep`] block until the driver advances time past their
/// deadline with [`ManualClock::advance`] or [`ManualClock::advance_to_next`].
#[derive(Debug, Default)]
pub struct ManualClock {
    state: Mutex<ManualState>,
    cond: Condvar,
}

impl ManualClock {
    /// Create a manual clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance virtual time by `d`, waking every sleeper whose deadline has passed.
    pub fn advance(&self, d: Duration) {
        let mut st = self.state.lock();
        st.now += d;
        self.cond.notify_all();
    }

    /// Advance to the earliest pending deadline, if any. Returns the new time.
    pub fn advance_to_next(&self) -> SimTime {
        let mut st = self.state.lock();
        if let Some(w) = st.pending.peek().copied() {
            if w.deadline > st.now {
                st.now = w.deadline;
            }
        }
        let now = st.now;
        self.cond.notify_all();
        now
    }

    /// Number of threads currently blocked in [`Clock::sleep`].
    pub fn pending_sleepers(&self) -> usize {
        self.state.lock().pending.len()
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        self.state.lock().now
    }

    fn sleep(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        let mut st = self.state.lock();
        let deadline = st.now + d;
        let seq = st.next_seq;
        st.next_seq += 1;
        st.pending.push(Waiter { deadline, seq });
        while st.now < deadline {
            self.cond.wait(&mut st);
        }
        // Remove our waiter entry (deadlines already passed may remain from other
        // sleepers; retain everything that is not us).
        let mut kept: BinaryHeap<Waiter> = BinaryHeap::with_capacity(st.pending.len());
        for w in st.pending.drain() {
            if w.seq != seq {
                kept.push(w);
            }
        }
        st.pending = kept;
    }

    fn scale(&self) -> f64 {
        f64::INFINITY
    }

    fn describe(&self) -> String {
        "manual".to_string()
    }
}

/// Measures virtual durations against a shared clock.
#[derive(Clone)]
pub struct Stopwatch {
    clock: SharedClock,
    start: SimTime,
}

impl Stopwatch {
    /// Start a stopwatch now.
    pub fn start(clock: SharedClock) -> Self {
        let start = clock.now();
        Stopwatch { clock, start }
    }

    /// Virtual time elapsed since the stopwatch was started.
    pub fn elapsed(&self) -> Duration {
        self.clock.now().since(self.start)
    }

    /// Virtual time elapsed, in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restart the stopwatch and return the lap duration.
    pub fn lap(&mut self) -> Duration {
        let now = self.clock.now();
        let lap = now.since(self.start);
        self.start = now;
        lap
    }

    /// The time at which the stopwatch was (re)started.
    pub fn started_at(&self) -> SimTime {
        self.start
    }
}

impl fmt::Debug for Stopwatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stopwatch")
            .field("start", &self.start)
            .field("elapsed", &self.elapsed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn sim_time_arithmetic() {
        let a = SimTime::from_secs_f64(1.5);
        let b = a + Duration::from_millis(500);
        assert!((b.as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(b - a, Duration::from_millis(500));
        assert_eq!(a - b, Duration::ZERO, "subtraction saturates");
        assert_eq!(b.since(a), Duration::from_millis(500));
    }

    #[test]
    fn sim_time_negative_secs_clamped() {
        let t = SimTime::from_secs_f64(-3.0);
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn real_clock_advances() {
        let c = RealClock::new();
        let t0 = c.now();
        c.sleep(Duration::from_millis(5));
        let t1 = c.now();
        assert!(t1.since(t0) >= Duration::from_millis(4));
        assert_eq!(c.scale(), 1.0);
    }

    #[test]
    fn scaled_clock_compresses_time() {
        let c = ScaledClock::new(1000.0);
        let wall = Instant::now();
        c.sleep(Duration::from_secs(2)); // 2 virtual seconds == 2ms real
        let real_elapsed = wall.elapsed();
        assert!(
            real_elapsed < Duration::from_millis(500),
            "real elapsed {real_elapsed:?}"
        );
        assert!(c.now().as_secs_f64() >= 1.9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_clock_rejects_zero_scale() {
        let _ = ScaledClock::new(0.0);
    }

    #[test]
    fn manual_clock_wakes_sleepers_in_order() {
        let c = Arc::new(ManualClock::new());
        let c1 = Arc::clone(&c);
        let c2 = Arc::clone(&c);
        let h1 = thread::spawn(move || {
            c1.sleep(Duration::from_secs(5));
            c1.now()
        });
        let h2 = thread::spawn(move || {
            c2.sleep(Duration::from_secs(10));
            c2.now()
        });
        // Wait until both sleepers registered.
        while c.pending_sleepers() < 2 {
            thread::yield_now();
        }
        c.advance(Duration::from_secs(5));
        let woke1 = h1.join().unwrap();
        assert_eq!(woke1.as_secs_f64() as u64, 5);
        assert_eq!(c.pending_sleepers(), 1);
        c.advance(Duration::from_secs(5));
        let woke2 = h2.join().unwrap();
        assert_eq!(woke2.as_secs_f64() as u64, 10);
        assert_eq!(c.pending_sleepers(), 0);
    }

    #[test]
    fn manual_clock_advance_to_next() {
        let c = Arc::new(ManualClock::new());
        let cc = Arc::clone(&c);
        let h = thread::spawn(move || cc.sleep(Duration::from_millis(1500)));
        while c.pending_sleepers() < 1 {
            thread::yield_now();
        }
        let t = c.advance_to_next();
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
        h.join().unwrap();
    }

    #[test]
    fn clock_spec_builds_expected_variants() {
        assert_eq!(ClockSpec::Real.build().scale(), 1.0);
        assert_eq!(ClockSpec::scaled(250.0).build().scale(), 250.0);
        assert!(ClockSpec::Manual.build().scale().is_infinite());
        assert_eq!(ClockSpec::default(), ClockSpec::Scaled(1000.0));
    }

    #[test]
    fn stopwatch_measures_virtual_time() {
        let clock: SharedClock = Arc::new(ScaledClock::new(1000.0));
        let mut sw = Stopwatch::start(Arc::clone(&clock));
        clock.sleep(Duration::from_secs(3));
        assert!(sw.elapsed_secs() >= 2.9);
        let lap = sw.lap();
        assert!(lap.as_secs_f64() >= 2.9);
        assert!(sw.elapsed_secs() < 1.0);
    }

    #[test]
    fn zero_sleep_returns_immediately() {
        let c = ManualClock::new();
        c.sleep(Duration::ZERO); // must not deadlock
        assert_eq!(c.pending_sleepers(), 0);
    }
}
