//! Concurrent metric collection with per-component breakdowns.
//!
//! The paper's three metrics — Bootstrap Time (BT), Response Time (RT), Inference Time
//! (IT) — are each decomposed into named components (e.g. BT = launch + init + publish;
//! RT = communication + service + inference). [`BreakdownRecorder`] collects one
//! [`ComponentSample`] per entity (service instance, request) from any thread, and the
//! harness aggregates them into per-component [`Summary`] statistics.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::stats::Summary;

/// One measured sample decomposed into named components (all in virtual seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentSample {
    /// Identifier of the measured entity (service id, request id, ...).
    pub entity: String,
    /// Ordered `(component name, seconds)` pairs.
    pub components: Vec<(String, f64)>,
}

impl ComponentSample {
    /// Create a sample for `entity` with no components yet.
    pub fn new(entity: impl Into<String>) -> Self {
        ComponentSample {
            entity: entity.into(),
            components: Vec::new(),
        }
    }

    /// Append a component measurement.
    pub fn with(mut self, name: impl Into<String>, seconds: f64) -> Self {
        self.components.push((name.into(), seconds));
        self
    }

    /// Total across all components.
    pub fn total(&self) -> f64 {
        self.components.iter().map(|(_, v)| v).sum()
    }

    /// Value of a single component, if present.
    pub fn component(&self, name: &str) -> Option<f64> {
        self.components
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Thread-safe collector of [`ComponentSample`]s for one metric (e.g. "bootstrap_time").
#[derive(Debug, Default)]
pub struct BreakdownRecorder {
    samples: Mutex<Vec<ComponentSample>>,
}

impl BreakdownRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&self, sample: ComponentSample) {
        self.samples.lock().push(sample);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all samples recorded so far.
    pub fn samples(&self) -> Vec<ComponentSample> {
        self.samples.lock().clone()
    }

    /// Remove and return all samples.
    pub fn drain(&self) -> Vec<ComponentSample> {
        std::mem::take(&mut *self.samples.lock())
    }

    /// Per-component summary statistics across all samples. Components missing from a
    /// sample are simply not counted for that sample.
    pub fn component_summaries(&self) -> BTreeMap<String, Summary> {
        let samples = self.samples.lock();
        let mut per_component: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for s in samples.iter() {
            for (name, value) in &s.components {
                per_component.entry(name.clone()).or_default().push(*value);
            }
        }
        per_component
            .into_iter()
            .map(|(name, values)| (name, Summary::from_slice(&values)))
            .collect()
    }

    /// Summary of per-sample totals.
    pub fn total_summary(&self) -> Summary {
        let totals: Vec<f64> = self.samples.lock().iter().map(|s| s.total()).collect();
        Summary::from_slice(&totals)
    }
}

/// Named registry of scalar metric series, shared across runtime components.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    series: Mutex<BTreeMap<String, Vec<f64>>>,
}

impl MetricRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a value to the named series (creating it on first use).
    pub fn record(&self, name: &str, value: f64) {
        self.series
            .lock()
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    /// All values recorded under `name` (empty if unknown).
    pub fn values(&self, name: &str) -> Vec<f64> {
        self.series.lock().get(name).cloned().unwrap_or_default()
    }

    /// Summary statistics for `name`.
    pub fn summary(&self, name: &str) -> Summary {
        Summary::from_slice(&self.values(name))
    }

    /// Names of all series recorded so far.
    pub fn names(&self) -> Vec<String> {
        self.series.lock().keys().cloned().collect()
    }

    /// Total number of values across all series.
    pub fn total_count(&self) -> usize {
        self.series.lock().values().map(|v| v.len()).sum()
    }

    /// Remove all series.
    pub fn clear(&self) {
        self.series.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn component_sample_accessors() {
        let s = ComponentSample::new("service.000001")
            .with("launch", 1.0)
            .with("init", 30.0)
            .with("publish", 0.5);
        assert_eq!(s.total(), 31.5);
        assert_eq!(s.component("init"), Some(30.0));
        assert_eq!(s.component("missing"), None);
    }

    #[test]
    fn recorder_aggregates_components() {
        let r = BreakdownRecorder::new();
        assert!(r.is_empty());
        for i in 0..10 {
            r.record(
                ComponentSample::new(format!("svc.{i}"))
                    .with("launch", 1.0 + i as f64 * 0.1)
                    .with("init", 30.0),
            );
        }
        assert_eq!(r.len(), 10);
        let summaries = r.component_summaries();
        assert_eq!(summaries.len(), 2);
        assert!((summaries["init"].mean - 30.0).abs() < 1e-12);
        assert!((summaries["launch"].mean - 1.45).abs() < 1e-9);
        let totals = r.total_summary();
        assert_eq!(totals.count, 10);
        assert!(totals.mean > 31.0);
        assert_eq!(r.samples().len(), 10);
        let drained = r.drain();
        assert_eq!(drained.len(), 10);
        assert!(r.is_empty());
    }

    #[test]
    fn recorder_handles_heterogeneous_components() {
        let r = BreakdownRecorder::new();
        r.record(ComponentSample::new("a").with("x", 1.0));
        r.record(ComponentSample::new("b").with("y", 2.0));
        let s = r.component_summaries();
        assert_eq!(s["x"].count, 1);
        assert_eq!(s["y"].count, 1);
    }

    #[test]
    fn metric_registry_records_series() {
        let m = MetricRegistry::new();
        m.record("rt", 0.1);
        m.record("rt", 0.2);
        m.record("it", 3.0);
        assert_eq!(m.values("rt"), vec![0.1, 0.2]);
        assert_eq!(m.values("unknown"), Vec::<f64>::new());
        assert_eq!(m.names(), vec!["it".to_string(), "rt".to_string()]);
        assert_eq!(m.total_count(), 3);
        assert!((m.summary("rt").mean - 0.15).abs() < 1e-12);
        m.clear();
        assert_eq!(m.total_count(), 0);
    }

    #[test]
    fn registry_is_thread_safe() {
        let m = Arc::new(MetricRegistry::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    m.record("x", (t * 100 + i) as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.values("x").len(), 400);
    }
}
