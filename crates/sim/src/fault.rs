//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a fixed schedule of node failures expressed in *virtual* time:
//! "at t = 12.5 s, node 3 dies". Because events are pinned to the session clock and
//! the schedule is either hand-written or derived from a seed, a failure scenario
//! replays identically run after run — the same property the rest of the simulation
//! substrate provides for launch overheads and inference durations. The runtime's
//! session drives the plan by sleeping on its clock to each event time and failing
//! the named node in its pilot allocation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scheduled node failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time (seconds since the session epoch) at which the failure fires.
    pub at_secs: f64,
    /// Allocation-global index of the node that fails.
    pub node: usize,
}

/// A deterministic schedule of node failures, ordered by firing time.
///
/// Build one explicitly with [`FaultPlan::fail_at`] or derive one from a seed with
/// [`FaultPlan::seeded`]; either way the plan is a pure value — injecting it is the
/// session's job.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no failures).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule node `node` to fail at `at_secs` of virtual time. Events may be
    /// added in any order; the plan keeps them sorted by firing time.
    pub fn fail_at(mut self, at_secs: f64, node: usize) -> Self {
        self.events.push(FaultEvent { at_secs, node });
        self.events.sort_by(|a, b| a.at_secs.total_cmp(&b.at_secs));
        self
    }

    /// Derive a plan of `count` failures from `seed`: firing times uniform over
    /// `(0, horizon_secs)` and victims uniform over `0..nodes`. The same seed
    /// always yields the same plan; distinct events may name the same node (the
    /// allocation treats repeat failures as no-ops).
    pub fn seeded(seed: u64, nodes: usize, count: usize, horizon_secs: f64) -> Self {
        assert!(nodes > 0, "a fault plan needs at least one node to target");
        assert!(
            horizon_secs > 0.0,
            "fault horizon must be positive, got {horizon_secs}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let at_secs = rng.gen_range(0.0..horizon_secs);
            let node = rng.gen_range(0..nodes);
            plan = plan.fail_at(at_secs, node);
        }
        plan
    }

    /// The scheduled events, sorted ascending by firing time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan schedules no failures.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled failures.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_sorted_by_time() {
        let plan = FaultPlan::new()
            .fail_at(5.0, 1)
            .fail_at(1.0, 0)
            .fail_at(3.0, 2);
        let times: Vec<f64> = plan.events().iter().map(|e| e.at_secs).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::seeded(42, 8, 5, 100.0);
        let b = FaultPlan::seeded(42, 8, 5, 100.0);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, FaultPlan::seeded(43, 8, 5, 100.0));
        assert_eq!(a.len(), 5);
        for e in a.events() {
            assert!(e.at_secs > 0.0 && e.at_secs < 100.0);
            assert!(e.node < 8);
        }
    }

    #[test]
    fn empty_plan_is_default() {
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::new(), FaultPlan::default());
        assert_eq!(FaultPlan::new().events(), &[]);
    }
}
