//! Descriptive statistics for experiment samples.
//!
//! The paper reports averages and distributions (outliers, long tails) of Bootstrap,
//! Response and Inference times across many instances. This module provides the two
//! aggregation styles the harness needs: streaming statistics ([`OnlineStats`], Welford's
//! algorithm, mergeable across threads) and batch summaries with percentiles
//! ([`Summary`]), plus a fixed-bin [`Histogram`] for distribution plots.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl OnlineStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

/// Batch summary of a sample set: mean, std, min/max, and selected percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Compute a summary from a slice of samples. Returns the default (all zeros) for an
    /// empty slice.
    pub fn from_slice(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary::default();
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mut acc = OnlineStats::new();
        for &s in samples {
            acc.push(s);
        }
        Summary {
            count: samples.len(),
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: acc.min(),
            max: acc.max(),
            p50: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
        }
    }

    /// Render as a compact single-line report (used by the experiment binaries).
    pub fn report(&self) -> String {
        format!(
            "n={:<6} mean={:>9.4} std={:>8.4} min={:>9.4} p50={:>9.4} p95={:>9.4} max={:>9.4}",
            self.count, self.mean, self.std_dev, self.min, self.p50, self.p95, self.max
        )
    }
}

/// Linear-interpolated percentile of an already sorted slice; `q` in `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Fixed-bin histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram with `nbins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo, "histogram upper bound must exceed lower bound");
        assert!(nbins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of recorded observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of observations at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Iterator over `(bin_center, count)` pairs.
    pub fn centers(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_empty_is_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn summary_from_slice() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_slice(&data);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 0.02);
        assert!(!s.report().is_empty());
    }

    #[test]
    fn summary_empty_slice() {
        let s = Summary::from_slice(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
        assert_eq!(percentile_sorted(&[7.0], 0.99), 7.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 1.0), 4.0);
        assert!((percentile_sorted(&v, 0.5) - 2.5).abs() < 1e-12);
        // Out-of-range quantiles are clamped.
        assert_eq!(percentile_sorted(&v, 2.0), 4.0);
        assert_eq!(percentile_sorted(&v, -1.0), 1.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        let centers: Vec<(f64, u64)> = h.centers().collect();
        assert_eq!(centers.len(), 10);
        assert!((centers[0].0 - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(5.0, 5.0, 4);
    }
}
