//! Process-wide unique, human-readable identifiers.
//!
//! Pilot runtimes name their entities with stable, sortable identifiers such as
//! `task.000042` or `pilot.0001`; log lines and metric records refer to entities by these
//! names. This module provides a lock-free generator for that scheme.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

static GLOBAL: IdGenerator = IdGenerator::new();

/// Generates monotonically increasing identifiers per namespace.
pub struct IdGenerator {
    counters: Mutex<BTreeMap<String, u64>>,
    fallback: AtomicU64,
}

impl IdGenerator {
    /// Create an empty generator (used for the global instance and for tests).
    pub const fn new() -> Self {
        IdGenerator {
            counters: Mutex::new(BTreeMap::new()),
            fallback: AtomicU64::new(0),
        }
    }

    /// Next numeric index within `namespace` (starts at 0).
    pub fn next_index(&self, namespace: &str) -> u64 {
        let mut map = self.counters.lock();
        let counter = map.entry(namespace.to_string()).or_insert(0);
        let v = *counter;
        *counter += 1;
        v
    }

    /// Next formatted identifier, e.g. `next_id("task")` → `"task.000007"`.
    pub fn next_id(&self, namespace: &str) -> String {
        format!("{}.{:06}", namespace, self.next_index(namespace))
    }

    /// A unique integer with no namespace (monotonic across the whole process).
    pub fn next_uid(&self) -> u64 {
        self.fallback.fetch_add(1, Ordering::Relaxed)
    }
}

impl Default for IdGenerator {
    fn default() -> Self {
        Self::new()
    }
}

/// Next formatted identifier from the process-global generator.
pub fn next_id(namespace: &str) -> String {
    GLOBAL.next_id(namespace)
}

/// Next numeric index from the process-global generator.
pub fn next_index(namespace: &str) -> u64 {
    GLOBAL.next_index(namespace)
}

/// A process-globally unique integer.
pub fn next_uid() -> u64 {
    GLOBAL.next_uid()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn ids_are_sequential_per_namespace() {
        let g = IdGenerator::new();
        assert_eq!(g.next_id("task"), "task.000000");
        assert_eq!(g.next_id("task"), "task.000001");
        assert_eq!(g.next_id("pilot"), "pilot.000000");
        assert_eq!(g.next_id("task"), "task.000002");
    }

    #[test]
    fn global_ids_are_unique_across_threads() {
        let g = Arc::new(IdGenerator::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(thread::spawn(move || {
                (0..250).map(|_| g.next_id("x")).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate identifier generated");
            }
        }
        assert_eq!(seen.len(), 2000);
    }

    #[test]
    fn uid_is_monotonic() {
        let g = IdGenerator::new();
        let a = g.next_uid();
        let b = g.next_uid();
        assert!(b > a);
    }

    #[test]
    fn global_helpers_work() {
        let a = next_id("unit-test-ns");
        let b = next_id("unit-test-ns");
        assert_ne!(a, b);
        assert!(a.starts_with("unit-test-ns."));
        let _ = next_index("unit-test-ns2");
        let u1 = next_uid();
        let u2 = next_uid();
        assert!(u2 > u1);
    }
}
