//! # hpcml-sim — time, stochastic, and statistics substrate
//!
//! This crate provides the low-level building blocks shared by every other crate in the
//! `hpcml` workspace:
//!
//! * [`clock`] — a [`clock::Clock`] abstraction with three implementations: a wall-clock
//!   [`clock::RealClock`], a [`clock::ScaledClock`] that compresses virtual time into a
//!   fraction of real time (so 640 simulated service bootstraps or tens of thousands of
//!   inference requests finish in seconds), and a fully deterministic
//!   [`clock::ManualClock`] for unit tests.
//! * [`dist`] — seedable random distributions (constant, uniform, normal, log-normal,
//!   exponential, truncated normal) used to model launch overheads, model load times,
//!   network latencies and inference durations.
//! * [`stats`] — streaming and batch descriptive statistics (mean, standard deviation,
//!   percentiles, histograms) used to aggregate experiment samples exactly the way the
//!   paper reports them (averages, distributions, outliers, long tails).
//! * [`metrics`] — a lightweight concurrent metric registry with per-component breakdown
//!   records, used to collect Bootstrap Time (BT), Response Time (RT) and Inference Time
//!   (IT) samples across threads.
//! * [`ids`] — process-wide unique, human-readable identifiers (`task.0001`,
//!   `service.0003`, ...), mirroring the identifier scheme of pilot runtimes.
//! * [`fault`] — deterministic fault-injection plans: seeded schedules of node
//!   failures pinned to virtual clock times, so failure scenarios replay exactly.
//!
//! All durations recorded through this crate are *virtual* durations: when running under
//! a [`clock::ScaledClock`] the numbers are directly comparable with the wall-clock
//! seconds reported in the paper, regardless of how much the experiment was compressed.

#![warn(missing_docs)]

pub mod clock;
pub mod dist;
pub mod fault;
pub mod ids;
pub mod metrics;
pub mod stats;

pub use clock::{Clock, ClockSpec, ManualClock, RealClock, ScaledClock, SimTime, Stopwatch};
pub use dist::Dist;
pub use fault::{FaultEvent, FaultPlan};
pub use metrics::{BreakdownRecorder, ComponentSample, MetricRegistry};
pub use stats::{Histogram, OnlineStats, Summary};
