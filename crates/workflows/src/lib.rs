//! # hpcml-workflows — workflow layer and LUCID use-case pipelines
//!
//! The paper assumes "workflow or pipeline applications are described via workflow
//! management systems" sitting above the runtime (EnTK, Parsl, AirFlow in Fig. 1). This
//! crate provides that layer for the reproduction:
//!
//! * [`dsl`] — an EnTK-like Pipeline → Stage → Task model with a synchronous-per-stage,
//!   concurrent-within-stage runner on top of [`hpcml_runtime::Session`]; stages may
//!   declare services that are brought up before the stage's tasks and torn down after;
//! * [`hpo`] — a minimal hyper-parameter-optimisation engine (random and quantile-guided
//!   samplers) standing in for Optuna in the Cell Painting pipeline;
//! * [`lucid`] — the three LUCID pipelines of the paper's §II (Table I): Cell Painting,
//!   Signature Detection, and Uncertainty Quantification, parameterised so they can run
//!   at laptop scale while exercising the same runtime code paths (services, concurrent
//!   tasks, staging, hybrid CPU/GPU workloads).
//!
//! # Example
//!
//! Describe a two-stage pipeline with the DSL — a preprocessing fan-out followed by a
//! service-backed analysis stage (pass it to a [`dsl::PipelineRunner`] bound to a
//! [`hpcml_runtime::Session`] to execute it):
//!
//! ```
//! use hpcml_runtime::describe::{ServiceDescription, TaskDescription, TaskKind};
//! use hpcml_workflows::{Pipeline, Stage};
//!
//! let pipeline = Pipeline::new("demo")
//!     .stage(Stage::new("preprocess").tasks((0..4).map(|i| {
//!         TaskDescription::new(format!("shard-{i}"))
//!             .kind(TaskKind::compute_secs(5.0))
//!             .cores(1)
//!     })))
//!     .stage(
//!         Stage::new("analyze")
//!             .service(ServiceDescription::new("llm-0").cores(1))
//!             .task(
//!                 TaskDescription::new("client")
//!                     .kind(TaskKind::inference_client("llm-0", 4))
//!                     .after_service("llm-0"),
//!             ),
//!     );
//! assert_eq!(pipeline.stages.len(), 2);
//! assert_eq!(pipeline.total_tasks(), 5);
//! assert_eq!(pipeline.total_services(), 1);
//! ```

#![warn(missing_docs)]

pub mod dsl;
pub mod hpo;
pub mod lucid;

pub use dsl::{Pipeline, PipelineReport, PipelineRunner, Stage, StageReport};
pub use hpo::{HpoStudy, ParamSpec, SamplerKind, Trial};

/// Commonly used types, re-exported for `use hpcml_workflows::prelude::*`.
pub mod prelude {
    pub use crate::dsl::{Pipeline, PipelineReport, PipelineRunner, Stage, StageReport};
    pub use crate::hpo::{HpoStudy, ParamSpec, SamplerKind, Trial};
    pub use crate::lucid::{
        cell_painting_pipeline, signature_detection_pipeline, uncertainty_quantification_pipeline,
        use_case_table, CellPaintingConfig, SignatureDetectionConfig, UqConfig, UseCaseRow,
    };
}
