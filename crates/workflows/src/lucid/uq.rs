//! The Uncertainty Quantification pipeline (paper §II-C, Table I pipeline 3).
//!
//! Three stages:
//!
//! 1. **Data preparation** (CPU, service-enabled): a small Q&A dataset (~3.4 MB) is
//!    preprocessed for each UQ sub-task — computationally negligible.
//! 2. **UQ methods with three-level parallelism** (GPU): the innermost level compares UQ
//!    methods (Bayesian LoRA, LoRA ensemble, ...), the middle level repeats each with
//!    multiple random seeds, and the outermost level spans base LLMs (Llama, Mistral).
//!    Every combination is an independent GPU fine-tuning task using 5–60 GB of GPU
//!    memory; all of them should run with maximal concurrency.
//! 3. **Post-processing** (GPU, service-enabled): results are aggregated into summary
//!    metrics, with an LLM service assisting the comparison report.
//!
//! Optionally, the pipeline can be prefixed with an **MPI ensemble-simulation stage**
//! (disabled by default, enabled via [`UqConfig::with_mpi_simulation`]): multi-node MPI
//! simulation tasks generate the raw samples the Q&A preparation consumes, the
//! hybrid MD-then-ML shape of the DeepDriveMD-style workflows ("Asynchronous Execution
//! of Heterogeneous Tasks in ML-driven HPC Workflows", Pascuzzi et al.). Each ensemble
//! member declares `nodes(n)` and is placed by the runtime as an atomic gang of
//! distinct nodes (co-locating on partially free ones under the default
//! [`GangPacking::Partial`] policy; see [`UqConfig::mpi_sim_packing`]).

use serde::{Deserialize, Serialize};

use hpcml_runtime::describe::{
    DataDirective, GangPacking, ServiceDescription, TaskDescription, TaskKind,
};
use hpcml_serving::ModelSpec;
use hpcml_sim::dist::Dist;

use crate::dsl::{Pipeline, Stage};

/// Scale parameters of the UQ pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UqConfig {
    /// UQ methods evaluated at the innermost level.
    pub methods: Vec<String>,
    /// Random seeds per method (middle level).
    pub seeds: usize,
    /// Base LLMs compared at the outermost level.
    pub models: Vec<String>,
    /// Q&A dataset size in MiB (paper: ~3.4 MB).
    pub dataset_mib: f64,
    /// Mean duration of one fine-tuning UQ task, virtual seconds.
    pub finetune_secs: f64,
    /// GPU memory per fine-tuning task, GiB (paper: 5–60 GB depending on model/LoRA).
    pub finetune_gpu_mem_gib: f64,
    /// Requests sent to the post-processing LLM service.
    pub postprocess_requests: u32,
    /// MPI ensemble-simulation members run before data preparation (0 = no
    /// simulation stage, the paper's plain three-stage pipeline).
    pub mpi_sim_tasks: usize,
    /// Whole nodes each MPI simulation member spans (gang placement).
    pub mpi_sim_nodes: usize,
    /// MPI ranks (cores) per member node.
    pub mpi_ranks_per_node: u32,
    /// Mean duration of one MPI simulation member, virtual seconds.
    pub mpi_sim_secs: f64,
    /// Gang packing policy pinned on the MPI simulation members (`None` inherits the
    /// session default, itself [`GangPacking::Partial`]): `Partial` lets half-node
    /// ensemble members co-locate with fine-tuning tasks on shared nodes; `Whole`
    /// reserves fully idle nodes per member.
    pub mpi_sim_packing: Option<GangPacking>,
}

impl UqConfig {
    /// Paper-scale configuration: 4 methods x 5 seeds x 2 models = 40 GPU tasks.
    pub fn paper_scale() -> Self {
        UqConfig {
            methods: vec![
                "bayesian-lora".to_string(),
                "lora-ensemble".to_string(),
                "mc-dropout".to_string(),
                "deep-ensemble".to_string(),
            ],
            seeds: 5,
            models: vec!["llama-8b".to_string(), "mistral-7b".to_string()],
            dataset_mib: 3.4,
            finetune_secs: 1800.0,
            finetune_gpu_mem_gib: 30.0,
            postprocess_requests: 32,
            mpi_sim_tasks: 0,
            mpi_sim_nodes: 2,
            mpi_ranks_per_node: 32,
            mpi_sim_secs: 900.0,
            mpi_sim_packing: None,
        }
    }

    /// Small configuration for tests and examples.
    pub fn test_scale() -> Self {
        UqConfig {
            methods: vec!["bayesian-lora".to_string(), "lora-ensemble".to_string()],
            seeds: 2,
            models: vec!["noop".to_string()],
            dataset_mib: 3.4,
            finetune_secs: 3.0,
            finetune_gpu_mem_gib: 4.0,
            postprocess_requests: 4,
            mpi_sim_tasks: 0,
            mpi_sim_nodes: 2,
            mpi_ranks_per_node: 4,
            mpi_sim_secs: 2.0,
            mpi_sim_packing: None,
        }
    }

    /// Prefix the pipeline with `tasks` MPI ensemble-simulation members, each
    /// spanning `nodes` distinct nodes and running for roughly `secs` virtual
    /// seconds. Under the default [`GangPacking::Partial`] session policy a member
    /// whose ranks-per-node share is below a whole node co-locates with other work;
    /// pin [`UqConfig::with_mpi_packing`] to override.
    pub fn with_mpi_simulation(mut self, tasks: usize, nodes: usize, secs: f64) -> Self {
        self.mpi_sim_tasks = tasks;
        self.mpi_sim_nodes = nodes.max(1);
        self.mpi_sim_secs = secs;
        self
    }

    /// Pin the gang packing policy of the MPI simulation members (overriding the
    /// session default).
    pub fn with_mpi_packing(mut self, packing: GangPacking) -> Self {
        self.mpi_sim_packing = Some(packing);
        self
    }

    /// Number of fine-tuning tasks the three-level hierarchy expands to.
    pub fn total_uq_tasks(&self) -> usize {
        self.methods.len() * self.seeds * self.models.len()
    }
}

impl Default for UqConfig {
    fn default() -> Self {
        Self::test_scale()
    }
}

/// Build the Uncertainty Quantification pipeline.
pub fn uncertainty_quantification_pipeline(config: &UqConfig) -> Pipeline {
    // Optional stage 0: multi-node MPI ensemble simulation generating the raw samples
    // (hybrid MD-then-ML shape; each member is an atomic gang of `mpi_sim_nodes`
    // distinct nodes — partially free ones under the default Partial packing, fully
    // idle ones when `mpi_sim_packing` pins `Whole`).
    let sim_stage = (config.mpi_sim_tasks > 0).then(|| {
        Stage::new("ensemble-simulation").tasks((0..config.mpi_sim_tasks).map(|i| {
            let mut task = TaskDescription::new(format!("uq-md-ensemble-{i:02}"))
                .kind(TaskKind::Compute {
                    duration_secs: Dist::lognormal_mean_cv(config.mpi_sim_secs.max(0.001), 0.1),
                })
                .cores(config.mpi_ranks_per_node)
                .nodes(config.mpi_sim_nodes)
                .stage_out(DataDirective::local(format!("md-trajectory-{i:02}"), 512.0))
                .tag("pipeline", "uncertainty-quantification")
                .tag("stage", "ensemble-simulation")
                .tag("mpi_nodes", config.mpi_sim_nodes.to_string());
            if let Some(packing) = config.mpi_sim_packing {
                task = task.gang_packing(packing);
            }
            task
        }))
    });

    // Stage 1: negligible data preparation.
    let stage1 = Stage::new("data-preparation").task(
        TaskDescription::new("uq-data-prep")
            .kind(TaskKind::Compute {
                duration_secs: Dist::uniform(0.5, 2.0),
            })
            .cores(1)
            .stage_in(DataDirective::local("qa-dataset", config.dataset_mib))
            .tag("pipeline", "uncertainty-quantification")
            .tag("stage", "data-prep"),
    );

    // Stage 2: three-level hierarchy of fine-tuning tasks (model x method x seed).
    let mut stage2 = Stage::new("uq-methods-three-level");
    for model in &config.models {
        for method in &config.methods {
            for seed in 0..config.seeds {
                stage2 = stage2.task(
                    TaskDescription::new(format!("uq-{model}-{method}-s{seed}"))
                        .kind(TaskKind::Compute {
                            duration_secs: Dist::lognormal_mean_cv(
                                config.finetune_secs.max(0.001),
                                0.2,
                            ),
                        })
                        .gpus(1)
                        .mem_gib(config.finetune_gpu_mem_gib)
                        .tag("pipeline", "uncertainty-quantification")
                        .tag("stage", "uq-methods")
                        .tag("model", model.clone())
                        .tag("method", method.clone())
                        .tag("seed", seed.to_string()),
                );
            }
        }
    }

    // Stage 3: post-processing with an LLM service summarising the comparison.
    let model = ModelSpec::by_name(
        config
            .models
            .first()
            .map(String::as_str)
            .unwrap_or("llama-8b"),
    )
    .unwrap_or_else(ModelSpec::sim_llama_8b);
    let stage3 = Stage::new("post-processing")
        .service(
            ServiceDescription::new("uq-report-llm")
                .model(model)
                .gpus(1)
                .tag("pipeline", "uncertainty-quantification"),
        )
        .task(
            TaskDescription::new("uq-aggregate-metrics")
                .kind(TaskKind::Compute {
                    duration_secs: Dist::uniform(1.0, 3.0),
                })
                .cores(2)
                .stage_out(DataDirective::local("uq-summary.csv", 1.0))
                .tag("pipeline", "uncertainty-quantification")
                .tag("stage", "post-processing"),
        )
        .task(
            TaskDescription::new("uq-report-client")
                .kind(TaskKind::inference_client(
                    "uq-report-llm",
                    config.postprocess_requests,
                ))
                .cores(1)
                .after_service("uq-report-llm")
                .tag("pipeline", "uncertainty-quantification")
                .tag("stage", "post-processing"),
        );

    let mut pipeline = Pipeline::new("uncertainty-quantification");
    if let Some(sim) = sim_stage {
        pipeline = pipeline.stage(sim);
    }
    pipeline.stage(stage1).stage(stage2).stage(stage3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::tasks_by_tag;

    #[test]
    fn three_level_hierarchy_expands_correctly() {
        let cfg = UqConfig::paper_scale();
        assert_eq!(cfg.total_uq_tasks(), 4 * 5 * 2);
        let p = uncertainty_quantification_pipeline(&cfg);
        assert_eq!(p.stages.len(), 3);
        assert_eq!(p.stages[1].tasks.len(), cfg.total_uq_tasks());
        let by_stage = tasks_by_tag(&p, "stage");
        assert_eq!(by_stage["uq-methods"], cfg.total_uq_tasks());
    }

    #[test]
    fn uq_tasks_are_gpu_tasks_with_memory_requirements() {
        let cfg = UqConfig::paper_scale();
        let p = uncertainty_quantification_pipeline(&cfg);
        for t in &p.stages[1].tasks {
            assert_eq!(t.resources.gpus, 1);
            assert!((t.resources.mem_gib - 30.0).abs() < 1e-9);
            assert!(t.tags.iter().any(|(k, _)| k == "method"));
            assert!(t.tags.iter().any(|(k, _)| k == "seed"));
        }
    }

    #[test]
    fn post_processing_uses_a_service() {
        let p = uncertainty_quantification_pipeline(&UqConfig::test_scale());
        assert_eq!(p.stages[2].services.len(), 1);
        assert!(p.stages[2]
            .tasks
            .iter()
            .any(|t| matches!(t.kind, TaskKind::InferenceClient { .. })));
    }

    #[test]
    fn mpi_simulation_stage_is_off_by_default_and_prefixes_when_enabled() {
        let plain = uncertainty_quantification_pipeline(&UqConfig::paper_scale());
        assert_eq!(plain.stages.len(), 3, "paper pipeline has no MPI stage");

        let cfg = UqConfig::paper_scale().with_mpi_simulation(4, 3, 600.0);
        let p = uncertainty_quantification_pipeline(&cfg);
        assert_eq!(p.stages.len(), 4);
        assert_eq!(p.stages[0].name, "ensemble-simulation");
        assert_eq!(p.stages[0].tasks.len(), 4);
        for t in &p.stages[0].tasks {
            assert_eq!(t.resources.nodes, 3, "ensemble members are 3-node gangs");
            assert_eq!(t.resources.cores, cfg.mpi_ranks_per_node);
            assert!(t.resources.is_gang());
            assert_eq!(
                t.resources.packing, None,
                "members inherit the session packing unless pinned"
            );
            assert!(t.tags.iter().any(|(k, v)| k == "mpi_nodes" && v == "3"));
        }
        let by_stage = tasks_by_tag(&p, "stage");
        assert_eq!(by_stage["ensemble-simulation"], 4);
    }

    #[test]
    fn mpi_simulation_packing_is_pinned_when_configured() {
        let cfg = UqConfig::paper_scale()
            .with_mpi_simulation(2, 2, 600.0)
            .with_mpi_packing(GangPacking::Whole);
        let p = uncertainty_quantification_pipeline(&cfg);
        for t in &p.stages[0].tasks {
            assert_eq!(t.resources.packing, Some(GangPacking::Whole));
        }
    }

    #[test]
    fn every_model_method_seed_combination_is_unique() {
        let cfg = UqConfig::paper_scale();
        let p = uncertainty_quantification_pipeline(&cfg);
        let names: std::collections::HashSet<&str> =
            p.stages[1].tasks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names.len(), cfg.total_uq_tasks());
    }
}
