//! The Signature Detection pipeline (paper §II-B, Table I pipeline 2).
//!
//! Three stages over 15 VCF samples (~300 MB each):
//!
//! 1. **Data preparation** (CPU, service-enabled): per-sample VEP annotation, 1–5 minutes
//!    and ~3 GB of memory per run; runs are independent and execute concurrently.
//! 2. **Mutation detection analysis** (CPU): pathway/GO enrichment per sample, minutes of
//!    CPU time, parallelisable across cores — not exposed as a service.
//! 3. **LLM-based signature comparison** (GPU, service-enabled): an LLM service mines the
//!    enriched results and literature to generate hypotheses; analysis tasks send it
//!    inference requests.

use serde::{Deserialize, Serialize};

use hpcml_runtime::describe::{DataDirective, ServiceDescription, TaskDescription, TaskKind};
use hpcml_serving::ModelSpec;
use hpcml_sim::dist::Dist;

use crate::dsl::{Pipeline, Stage};

/// Scale parameters of the Signature Detection pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignatureDetectionConfig {
    /// Number of VCF samples (paper: 15).
    pub samples: usize,
    /// VCF size per sample in MiB (paper: ~300 MB).
    pub vcf_size_mib: f64,
    /// VEP annotation duration range per sample, virtual seconds (paper: 1–5 minutes).
    pub vep_secs: (f64, f64),
    /// Mean enrichment-analysis duration per sample, virtual seconds.
    pub enrichment_secs: f64,
    /// Number of LLM comparison requests per sample in stage 3.
    pub llm_requests_per_sample: u32,
    /// Which LLM the comparison service hosts.
    pub llm_model: String,
}

impl SignatureDetectionConfig {
    /// Paper-scale configuration.
    pub fn paper_scale() -> Self {
        SignatureDetectionConfig {
            samples: 15,
            vcf_size_mib: 300.0,
            vep_secs: (60.0, 300.0),
            enrichment_secs: 180.0,
            llm_requests_per_sample: 8,
            llm_model: "llama-8b".to_string(),
        }
    }

    /// Small configuration for tests and examples.
    pub fn test_scale() -> Self {
        SignatureDetectionConfig {
            samples: 3,
            vcf_size_mib: 30.0,
            vep_secs: (2.0, 6.0),
            enrichment_secs: 3.0,
            llm_requests_per_sample: 2,
            llm_model: "noop".to_string(),
        }
    }
}

impl Default for SignatureDetectionConfig {
    fn default() -> Self {
        Self::test_scale()
    }
}

/// Build the Signature Detection pipeline.
pub fn signature_detection_pipeline(config: &SignatureDetectionConfig) -> Pipeline {
    // Stage 1: VEP annotation per sample.
    let vep_tasks = (0..config.samples).map(|i| {
        TaskDescription::new(format!("sd-vep-{i:02}"))
            .kind(TaskKind::Compute {
                duration_secs: Dist::uniform(
                    config.vep_secs.0,
                    config.vep_secs.1.max(config.vep_secs.0 + 1e-9),
                ),
            })
            .cores(1)
            .mem_gib(3.0)
            .stage_in(DataDirective::local(
                format!("sample-{i:02}.vcf"),
                config.vcf_size_mib,
            ))
            .stage_out(DataDirective::local(
                format!("sample-{i:02}.annotated.vcf"),
                config.vcf_size_mib * 1.2,
            ))
            .tag("pipeline", "signature-detection")
            .tag("stage", "vep-annotation")
    });
    let stage1 = Stage::new("data-preparation-vep").tasks(vep_tasks);

    // Stage 2: pathway/GO enrichment per sample (CPU, parallel across cores).
    let enrichment_tasks = (0..config.samples).map(|i| {
        TaskDescription::new(format!("sd-enrichment-{i:02}"))
            .kind(TaskKind::Compute {
                duration_secs: Dist::lognormal_mean_cv(config.enrichment_secs.max(0.001), 0.25),
            })
            .cores(4)
            .stage_out(DataDirective::local(
                format!("sample-{i:02}.dose-response.csv"),
                0.5,
            ))
            .tag("pipeline", "signature-detection")
            .tag("stage", "mutation-analysis")
    });
    let stage2 = Stage::new("mutation-detection-analysis").tasks(enrichment_tasks);

    // Stage 3: LLM-based signature comparison through a model service.
    let model = ModelSpec::by_name(&config.llm_model).unwrap_or_else(ModelSpec::sim_llama_8b);
    let mut stage3 = Stage::new("llm-signature-comparison").service(
        ServiceDescription::new("sd-llm")
            .model(model)
            .gpus(1)
            .tag("pipeline", "signature-detection"),
    );
    for i in 0..config.samples {
        stage3 = stage3.task(
            TaskDescription::new(format!("sd-llm-compare-{i:02}"))
                .kind(TaskKind::inference_client(
                    "sd-llm",
                    config.llm_requests_per_sample,
                ))
                .cores(1)
                .after_service("sd-llm")
                .tag("pipeline", "signature-detection")
                .tag("stage", "llm-comparison"),
        );
    }

    Pipeline::new("signature-detection")
        .stage(stage1)
        .stage(stage2)
        .stage(stage3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_paper() {
        let cfg = SignatureDetectionConfig::paper_scale();
        let p = signature_detection_pipeline(&cfg);
        assert_eq!(p.stages.len(), 3);
        assert_eq!(p.stages[0].tasks.len(), 15, "paper uses 15 samples");
        assert_eq!(p.stages[1].tasks.len(), 15);
        assert_eq!(p.stages[2].tasks.len(), 15);
        assert_eq!(p.stages[2].services.len(), 1);
        assert!(p.stages[0].services.is_empty());
        assert!(p.stages[1].services.is_empty());
    }

    #[test]
    fn vep_tasks_match_resource_requirements() {
        let cfg = SignatureDetectionConfig::paper_scale();
        let p = signature_detection_pipeline(&cfg);
        for t in &p.stages[0].tasks {
            assert_eq!(t.resources.mem_gib, 3.0, "VEP needs ~3 GB per run");
            assert_eq!(t.resources.gpus, 0);
            assert!((t.stage_in[0].size_mib - 300.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stage3_clients_depend_on_the_llm_service() {
        let p = signature_detection_pipeline(&SignatureDetectionConfig::test_scale());
        for t in &p.stages[2].tasks {
            assert!(t.after_services.contains(&"sd-llm".to_string()));
            assert!(matches!(t.kind, TaskKind::InferenceClient { .. }));
        }
    }

    #[test]
    fn unknown_model_falls_back_to_llama() {
        let mut cfg = SignatureDetectionConfig::test_scale();
        cfg.llm_model = "does-not-exist".to_string();
        let p = signature_detection_pipeline(&cfg);
        assert_eq!(p.stages[2].services[0].model.name, "llama-8b");
    }
}
