//! The three LUCID use-case pipelines of the paper's §II and Table I.
//!
//! Each builder returns a [`crate::dsl::Pipeline`] whose structure matches the paper's
//! description; dataset sizes and per-stage durations are configurable so that the same
//! pipeline can run at paper scale (virtual hours) or at test scale (virtual seconds)
//! while exercising identical runtime code paths: data staging, concurrent CPU tasks,
//! GPU training tasks, and model services with inference-client tasks.

mod cell_painting;
mod signature_detection;
mod uq;

pub use cell_painting::{cell_painting_pipeline, CellPaintingConfig};
pub use signature_detection::{signature_detection_pipeline, SignatureDetectionConfig};
pub use uq::{uncertainty_quantification_pipeline, UqConfig};

use serde::{Deserialize, Serialize};

/// One row of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UseCaseRow {
    /// Pipeline identifier (1-3).
    pub id: u8,
    /// Pipeline name.
    pub pipeline: &'static str,
    /// Stage name.
    pub stage: &'static str,
    /// Resource type (CPU / GPU).
    pub resource: &'static str,
    /// Whether the stage is enabled as a service.
    pub as_service: bool,
}

/// The contents of the paper's Table I: pipelines, stages, resource types and whether
/// each stage is exposed through the service interface.
pub fn use_case_table() -> Vec<UseCaseRow> {
    vec![
        UseCaseRow {
            id: 1,
            pipeline: "Cell Painting",
            stage: "Data pre-processing & augmentation",
            resource: "CPU",
            as_service: true,
        },
        UseCaseRow {
            id: 1,
            pipeline: "Cell Painting",
            stage: "Model training with hyperparameter optimization",
            resource: "GPU",
            as_service: true,
        },
        UseCaseRow {
            id: 2,
            pipeline: "Signature Detection",
            stage: "Data Preparation",
            resource: "CPU",
            as_service: true,
        },
        UseCaseRow {
            id: 2,
            pipeline: "Signature Detection",
            stage: "Mutation Detection Analysis",
            resource: "CPU",
            as_service: false,
        },
        UseCaseRow {
            id: 2,
            pipeline: "Signature Detection",
            stage: "LLM-based signature comparison",
            resource: "GPU",
            as_service: true,
        },
        UseCaseRow {
            id: 3,
            pipeline: "Uncertainty Quantification",
            stage: "Data Preparation",
            resource: "CPU",
            as_service: true,
        },
        UseCaseRow {
            id: 3,
            pipeline: "Uncertainty Quantification",
            stage: "UQ methods with three-level parallelism",
            resource: "GPU",
            as_service: false,
        },
        UseCaseRow {
            id: 3,
            pipeline: "Uncertainty Quantification",
            stage: "Post-processing",
            resource: "GPU",
            as_service: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_structure() {
        let rows = use_case_table();
        assert_eq!(
            rows.len(),
            8,
            "Table I has eight stages across three pipelines"
        );
        assert_eq!(rows.iter().filter(|r| r.id == 1).count(), 2);
        assert_eq!(rows.iter().filter(|r| r.id == 2).count(), 3);
        assert_eq!(rows.iter().filter(|r| r.id == 3).count(), 3);
        assert_eq!(rows.iter().filter(|r| r.as_service).count(), 6);
        assert_eq!(rows.iter().filter(|r| r.resource == "GPU").count(), 4);
    }

    #[test]
    fn pipeline_builders_match_table_stage_counts() {
        let rows = use_case_table();
        let cp = cell_painting_pipeline(&CellPaintingConfig::test_scale());
        assert_eq!(cp.stages.len(), rows.iter().filter(|r| r.id == 1).count());
        let sd = signature_detection_pipeline(&SignatureDetectionConfig::test_scale());
        assert_eq!(sd.stages.len(), rows.iter().filter(|r| r.id == 2).count());
        let uq = uncertainty_quantification_pipeline(&UqConfig::test_scale());
        assert_eq!(uq.stages.len(), rows.iter().filter(|r| r.id == 3).count());
    }
}
