//! The Cell Painting pipeline (paper §II-A, Table I pipeline 1).
//!
//! Two stages:
//!
//! 1. **Data pre-processing & augmentation** (CPU): the ~1.6 TB cell-painting image set
//!    is split into shards; each shard is staged in (the paper uses Globus for the
//!    wide-area transfer), normalised and augmented. No GPU needed.
//! 2. **Model training with hyper-parameter optimisation** (GPU): a ViT model is
//!    fine-tuned under an Optuna-style HPO loop; multiple trials train concurrently,
//!    each on one GPU, while a feature-extraction service (the fine-tuned ViT exposed
//!    through the runtime's service interface) answers classification requests.

use serde::{Deserialize, Serialize};

use hpcml_runtime::describe::{DataDirective, ServiceDescription, TaskDescription, TaskKind};
use hpcml_serving::ModelSpec;
use hpcml_sim::dist::Dist;

use crate::dsl::{Pipeline, Stage};
use crate::hpo::{HpoStudy, SamplerKind};

/// Scale parameters of the Cell Painting pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellPaintingConfig {
    /// Number of dataset shards processed in stage 1.
    pub shards: usize,
    /// Size of each shard in MiB (paper total: ~1.6 TB).
    pub shard_size_mib: f64,
    /// Mean pre-processing duration per shard, virtual seconds.
    pub preprocess_secs: f64,
    /// Number of HPO trials trained in stage 2.
    pub hpo_trials: usize,
    /// Mean duration of one training trial, virtual seconds.
    pub train_secs: f64,
    /// Number of classification requests sent to the feature-extraction service.
    pub inference_requests: u32,
    /// RNG seed for the HPO sampler.
    pub seed: u64,
}

impl CellPaintingConfig {
    /// Paper-scale configuration (1.6 TB over 64 shards, 32 HPO trials).
    pub fn paper_scale() -> Self {
        CellPaintingConfig {
            shards: 64,
            shard_size_mib: 25_600.0, // 64 x 25 GiB = 1.6 TiB
            preprocess_secs: 600.0,
            hpo_trials: 32,
            train_secs: 3_600.0,
            inference_requests: 256,
            seed: 1,
        }
    }

    /// Small configuration for tests and the quickstart example.
    pub fn test_scale() -> Self {
        CellPaintingConfig {
            shards: 4,
            shard_size_mib: 50.0,
            preprocess_secs: 5.0,
            hpo_trials: 4,
            train_secs: 10.0,
            inference_requests: 8,
            seed: 1,
        }
    }
}

impl Default for CellPaintingConfig {
    fn default() -> Self {
        Self::test_scale()
    }
}

/// Build the Cell Painting pipeline.
pub fn cell_painting_pipeline(config: &CellPaintingConfig) -> Pipeline {
    // Stage 1: data pre-processing and augmentation (CPU-only, data-heavy).
    let preprocess_tasks = (0..config.shards).map(|i| {
        TaskDescription::new(format!("cp-preprocess-{i:03}"))
            .kind(TaskKind::Compute {
                duration_secs: Dist::lognormal_mean_cv(config.preprocess_secs.max(0.001), 0.2),
            })
            .cores(4)
            .stage_in(DataDirective::remote(
                format!("cell-paint-shard-{i:03}"),
                config.shard_size_mib,
            ))
            .stage_out(DataDirective::local(
                format!("augmented-shard-{i:03}"),
                config.shard_size_mib * 0.4,
            ))
            .tag("pipeline", "cell-painting")
            .tag("stage", "preprocess")
    });
    let stage1 = Stage::new("data-preprocessing-augmentation").tasks(preprocess_tasks);

    // Stage 2: ViT fine-tuning under HPO + the fine-tuned model exposed as a service.
    let mut study = HpoStudy::new(
        HpoStudy::cell_painting_space(),
        SamplerKind::QuantileGuided,
        config.seed,
    );
    let mut stage2 = Stage::new("model-training-hpo").service(
        ServiceDescription::new("vit-features")
            .model(ModelSpec::sim_vit_base())
            .gpus(1)
            .tag("pipeline", "cell-painting"),
    );
    for _ in 0..config.hpo_trials {
        let trial = study.suggest();
        // Larger batches shorten the epoch wall-time slightly; dropout/lr have no cost impact.
        let batch = trial.params.get("batch_size").copied().unwrap_or(64.0);
        let duration = config.train_secs * (96.0 / batch).clamp(0.5, 2.0);
        let mut task = TaskDescription::new(format!("cp-train-trial-{:03}", trial.id))
            .kind(TaskKind::Compute {
                duration_secs: Dist::lognormal_mean_cv(duration.max(0.001), 0.15),
            })
            .gpus(1)
            .mem_gib(32.0)
            .after_service("vit-features")
            .tag("pipeline", "cell-painting")
            .tag("stage", "training")
            .tag("trial", trial.id.to_string());
        for (k, v) in &trial.params {
            task = task.tag(format!("hpo.{k}"), format!("{v:.6}"));
        }
        stage2 = stage2.task(task);
    }
    // Classification clients exercising the fine-tuned model through the service API.
    stage2 = stage2.task(
        TaskDescription::new("cp-feature-extraction-client")
            .kind(TaskKind::inference_client(
                "vit-features",
                config.inference_requests,
            ))
            .cores(1)
            .tag("pipeline", "cell-painting")
            .tag("stage", "training"),
    );

    Pipeline::new("cell-painting").stage(stage1).stage(stage2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::tasks_by_tag;

    #[test]
    fn structure_matches_config() {
        let cfg = CellPaintingConfig::test_scale();
        let p = cell_painting_pipeline(&cfg);
        assert_eq!(p.stages.len(), 2);
        assert_eq!(p.stages[0].tasks.len(), cfg.shards);
        // trials + one inference client task.
        assert_eq!(p.stages[1].tasks.len(), cfg.hpo_trials + 1);
        assert_eq!(p.stages[1].services.len(), 1);
        let by_stage = tasks_by_tag(&p, "stage");
        assert_eq!(by_stage["preprocess"], cfg.shards);
        assert_eq!(by_stage["training"], cfg.hpo_trials + 1);
    }

    #[test]
    fn preprocess_tasks_stage_remote_data() {
        let p = cell_painting_pipeline(&CellPaintingConfig::test_scale());
        for t in &p.stages[0].tasks {
            assert_eq!(t.stage_in.len(), 1);
            assert!(
                t.stage_in[0].remote,
                "cell painting imagery arrives over the WAN"
            );
            assert_eq!(t.resources.gpus, 0, "pre-processing does not need GPUs");
        }
    }

    #[test]
    fn training_tasks_use_gpus_and_carry_hpo_params() {
        let p = cell_painting_pipeline(&CellPaintingConfig::test_scale());
        let trials: Vec<_> = p.stages[1]
            .tasks
            .iter()
            .filter(|t| t.tags.iter().any(|(k, _)| k == "trial"))
            .collect();
        assert!(!trials.is_empty());
        for t in trials {
            assert_eq!(t.resources.gpus, 1);
            assert!(t.tags.iter().any(|(k, _)| k == "hpo.learning_rate"));
            assert!(t.after_services.contains(&"vit-features".to_string()));
        }
    }

    #[test]
    fn paper_scale_is_bigger_than_test_scale() {
        let paper = CellPaintingConfig::paper_scale();
        let test = CellPaintingConfig::test_scale();
        assert!(paper.shards > test.shards);
        assert!(
            paper.shard_size_mib * paper.shards as f64 > 1_500_000.0,
            "paper scale must be ~1.6 TB"
        );
        assert!(paper.hpo_trials > test.hpo_trials);
        assert_eq!(CellPaintingConfig::default(), test);
    }
}
