//! Hyper-parameter optimisation: a minimal Optuna stand-in.
//!
//! The Cell Painting pipeline drives its ViT fine-tuning with Optuna, exploring learning
//! rate, batch size, weight decay and dropout. This module provides the pieces the
//! pipeline needs: a search space, two samplers (pure random and a quantile-guided
//! sampler that concentrates samples around the best observed trials, TPE-flavoured),
//! and a study object that hands out trials and tracks the best result. The objective is
//! evaluated by the workflow's training tasks, not here.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One tunable parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Parameter name (e.g. `learning_rate`).
    pub name: String,
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
    /// Sample in log space (for learning rates, weight decays, ...).
    pub log_scale: bool,
}

impl ParamSpec {
    /// Linear-scale parameter.
    pub fn linear(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(hi >= lo, "upper bound must be >= lower bound");
        ParamSpec {
            name: name.into(),
            lo,
            hi,
            log_scale: false,
        }
    }

    /// Log-scale parameter (bounds must be positive).
    pub fn log(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(
            lo > 0.0 && hi >= lo,
            "log-scale bounds must be positive and ordered"
        );
        ParamSpec {
            name: name.into(),
            lo,
            hi,
            log_scale: true,
        }
    }

    fn sample_uniform(&self, rng: &mut StdRng) -> f64 {
        if self.log_scale {
            let (llo, lhi) = (self.lo.ln(), self.hi.ln());
            if lhi > llo {
                rng.gen_range(llo..lhi).exp()
            } else {
                self.lo
            }
        } else if self.hi > self.lo {
            rng.gen_range(self.lo..self.hi)
        } else {
            self.lo
        }
    }

    fn sample_near(&self, center: f64, rng: &mut StdRng) -> f64 {
        let width = if self.log_scale {
            (self.hi.ln() - self.lo.ln()) * 0.15
        } else {
            (self.hi - self.lo) * 0.15
        };
        let draw = |rng: &mut StdRng| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        if self.log_scale {
            (center.ln() + width * draw(rng))
                .exp()
                .clamp(self.lo, self.hi)
        } else {
            (center + width * draw(rng)).clamp(self.lo, self.hi)
        }
    }

    /// Whether a value lies within the parameter's bounds.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo - 1e-12 && v <= self.hi + 1e-12
    }
}

/// Which sampling strategy a study uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplerKind {
    /// Independent uniform sampling.
    Random,
    /// Exploit the best quantile of observed trials (TPE-like behaviour): half the
    /// suggestions are drawn near parameters of top trials, half stay exploratory.
    QuantileGuided,
}

/// One suggested parameter assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// Trial index within its study.
    pub id: usize,
    /// Parameter values keyed by name.
    pub params: BTreeMap<String, f64>,
    /// Objective value reported for this trial (`None` until reported).
    pub objective: Option<f64>,
}

/// A hyper-parameter optimisation study (objective is minimised).
#[derive(Debug)]
pub struct HpoStudy {
    space: Vec<ParamSpec>,
    sampler: SamplerKind,
    trials: Vec<Trial>,
    rng: StdRng,
}

impl HpoStudy {
    /// Create a study over the given space.
    pub fn new(space: Vec<ParamSpec>, sampler: SamplerKind, seed: u64) -> Self {
        assert!(!space.is_empty(), "search space must not be empty");
        HpoStudy {
            space,
            sampler,
            trials: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The default Cell Painting search space from the paper's §II-A (learning rate,
    /// batch size, weight decay, dropout rate).
    pub fn cell_painting_space() -> Vec<ParamSpec> {
        vec![
            ParamSpec::log("learning_rate", 1e-5, 1e-2),
            ParamSpec::linear("batch_size", 16.0, 256.0),
            ParamSpec::log("weight_decay", 1e-6, 1e-2),
            ParamSpec::linear("dropout", 0.0, 0.5),
        ]
    }

    /// The search space.
    pub fn space(&self) -> &[ParamSpec] {
        &self.space
    }

    /// Number of trials suggested so far.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// True if no trial has been suggested yet.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Suggest a new trial.
    pub fn suggest(&mut self) -> Trial {
        let id = self.trials.len();
        let exploit = self.sampler == SamplerKind::QuantileGuided
            && self.best().is_some()
            && self.rng.gen_bool(0.5);
        let mut params = BTreeMap::new();
        if exploit {
            let best = self.best().cloned().expect("checked above");
            for spec in &self.space {
                let center = best
                    .params
                    .get(&spec.name)
                    .copied()
                    .unwrap_or((spec.lo + spec.hi) / 2.0);
                params.insert(spec.name.clone(), spec.sample_near(center, &mut self.rng));
            }
        } else {
            for spec in &self.space {
                params.insert(spec.name.clone(), spec.sample_uniform(&mut self.rng));
            }
        }
        let trial = Trial {
            id,
            params,
            objective: None,
        };
        self.trials.push(trial.clone());
        trial
    }

    /// Report the objective of a previously suggested trial.
    pub fn report(&mut self, trial_id: usize, objective: f64) {
        if let Some(t) = self.trials.get_mut(trial_id) {
            t.objective = Some(objective);
        }
    }

    /// The best (lowest-objective) completed trial, if any.
    pub fn best(&self) -> Option<&Trial> {
        self.trials
            .iter()
            .filter(|t| t.objective.is_some())
            .min_by(|a, b| {
                a.objective
                    .partial_cmp(&b.objective)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// All trials (suggested and completed).
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth synthetic objective with its optimum inside the space.
    fn objective(params: &BTreeMap<String, f64>) -> f64 {
        let lr = params["learning_rate"];
        let bs = params["batch_size"];
        (lr.log10() + 3.0).powi(2) + ((bs - 96.0) / 96.0).powi(2)
    }

    #[test]
    fn suggestions_stay_in_bounds() {
        let mut study = HpoStudy::new(HpoStudy::cell_painting_space(), SamplerKind::Random, 1);
        for _ in 0..200 {
            let t = study.suggest();
            for spec in study.space().to_vec() {
                assert!(
                    spec.contains(t.params[&spec.name]),
                    "{} out of bounds",
                    spec.name
                );
            }
        }
        assert_eq!(study.len(), 200);
    }

    #[test]
    fn quantile_guided_beats_or_matches_random() {
        let run = |kind: SamplerKind| -> f64 {
            let mut study = HpoStudy::new(HpoStudy::cell_painting_space(), kind, 7);
            for _ in 0..120 {
                let t = study.suggest();
                let y = objective(&t.params);
                study.report(t.id, y);
            }
            study.best().unwrap().objective.unwrap()
        };
        let random_best = run(SamplerKind::Random);
        let guided_best = run(SamplerKind::QuantileGuided);
        // The guided sampler must find at least a comparably good optimum.
        assert!(
            guided_best <= random_best * 1.5,
            "guided {guided_best} vs random {random_best}"
        );
        assert!(
            guided_best < 1.0,
            "guided sampler should approach the optimum, got {guided_best}"
        );
    }

    #[test]
    fn best_tracks_lowest_objective() {
        let mut study = HpoStudy::new(
            vec![ParamSpec::linear("x", 0.0, 1.0)],
            SamplerKind::Random,
            3,
        );
        assert!(study.best().is_none());
        assert!(study.is_empty());
        let a = study.suggest();
        let b = study.suggest();
        study.report(a.id, 5.0);
        study.report(b.id, 2.0);
        assert_eq!(study.best().unwrap().id, b.id);
        // Reporting an unknown trial id is a no-op.
        study.report(999, -1.0);
        assert_eq!(study.best().unwrap().id, b.id);
        assert_eq!(study.trials().len(), 2);
    }

    #[test]
    fn log_scale_sampling_spans_decades() {
        let mut study = HpoStudy::new(
            vec![ParamSpec::log("lr", 1e-5, 1e-1)],
            SamplerKind::Random,
            11,
        );
        let values: Vec<f64> = (0..500).map(|_| study.suggest().params["lr"]).collect();
        let below_1e_3 = values.iter().filter(|v| **v < 1e-3).count();
        let above_1e_3 = values.len() - below_1e_3;
        // Log-uniform: both halves of the log range should be well represented.
        assert!(
            below_1e_3 > 100 && above_1e_3 > 100,
            "{below_1e_3} / {above_1e_3}"
        );
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_space_rejected() {
        let _ = HpoStudy::new(vec![], SamplerKind::Random, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_param_requires_positive_bounds() {
        let _ = ParamSpec::log("bad", 0.0, 1.0);
    }

    #[test]
    fn degenerate_bounds_return_constant() {
        let mut study = HpoStudy::new(
            vec![ParamSpec::linear("c", 2.0, 2.0)],
            SamplerKind::Random,
            5,
        );
        for _ in 0..10 {
            assert_eq!(study.suggest().params["c"], 2.0);
        }
    }
}
