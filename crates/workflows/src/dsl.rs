//! An EnTK-like Pipeline → Stage → Task workflow model and its runner.
//!
//! A [`Pipeline`] is an ordered list of [`Stage`]s. Within a stage, all tasks execute
//! concurrently (subject to resource availability); stages execute sequentially. A stage
//! may declare services: the runner brings them up (and waits for readiness) before
//! submitting the stage's tasks, and tears them down when the pipeline finishes — unless
//! the stage marks them `keep_alive`, which is how the LUCID pipelines keep one model
//! service spanning several stages.

use std::collections::BTreeMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use hpcml_runtime::describe::{ServiceDescription, TaskDescription};
use hpcml_runtime::error::RuntimeError;
use hpcml_runtime::records::{ServiceHandle, TaskHandle};
use hpcml_runtime::session::Session;
use hpcml_runtime::states::TaskState;
use hpcml_sim::clock::Stopwatch;

/// One stage of a pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Stage name.
    pub name: String,
    /// Services to bring up before the stage's tasks run.
    pub services: Vec<ServiceDescription>,
    /// Tasks executed concurrently within the stage.
    pub tasks: Vec<TaskDescription>,
    /// Keep this stage's services alive for the remainder of the pipeline instead of
    /// stopping them when the stage completes.
    pub keep_services_alive: bool,
}

impl Stage {
    /// Create an empty stage.
    pub fn new(name: impl Into<String>) -> Self {
        Stage {
            name: name.into(),
            services: Vec::new(),
            tasks: Vec::new(),
            keep_services_alive: false,
        }
    }

    /// Add a service.
    pub fn service(mut self, s: ServiceDescription) -> Self {
        self.services.push(s);
        self
    }

    /// Add a task.
    pub fn task(mut self, t: TaskDescription) -> Self {
        self.tasks.push(t);
        self
    }

    /// Add many tasks.
    pub fn tasks(mut self, ts: impl IntoIterator<Item = TaskDescription>) -> Self {
        self.tasks.extend(ts);
        self
    }

    /// Keep this stage's services alive beyond the stage.
    pub fn keep_services(mut self) -> Self {
        self.keep_services_alive = true;
        self
    }
}

/// A pipeline: an ordered list of stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Pipeline name.
    pub name: String,
    /// Ordered stages.
    pub stages: Vec<Stage>,
}

impl Pipeline {
    /// Create an empty pipeline.
    pub fn new(name: impl Into<String>) -> Self {
        Pipeline {
            name: name.into(),
            stages: Vec::new(),
        }
    }

    /// Append a stage.
    pub fn stage(mut self, s: Stage) -> Self {
        self.stages.push(s);
        self
    }

    /// Total number of tasks across all stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.tasks.len()).sum()
    }

    /// Total number of service instances across all stages.
    pub fn total_services(&self) -> usize {
        self.stages.iter().map(|s| s.services.len()).sum()
    }
}

/// Outcome of one executed stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Virtual seconds the stage took end to end.
    pub duration_secs: f64,
    /// Number of tasks that finished in `Done`.
    pub tasks_done: usize,
    /// Number of tasks that failed or were cancelled.
    pub tasks_failed: usize,
    /// Number of services brought up for this stage.
    pub services_started: usize,
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Pipeline name.
    pub pipeline: String,
    /// Per-stage reports, in execution order.
    pub stages: Vec<StageReport>,
    /// Virtual seconds end to end.
    pub total_secs: f64,
}

impl PipelineReport {
    /// Total tasks completed successfully.
    pub fn tasks_done(&self) -> usize {
        self.stages.iter().map(|s| s.tasks_done).sum()
    }

    /// Total tasks failed.
    pub fn tasks_failed(&self) -> usize {
        self.stages.iter().map(|s| s.tasks_failed).sum()
    }

    /// True if no task failed.
    pub fn all_succeeded(&self) -> bool {
        self.tasks_failed() == 0
    }

    /// Render a compact textual report (one line per stage).
    pub fn render(&self) -> String {
        let mut out = format!(
            "pipeline {} — {:.1}s total\n",
            self.pipeline, self.total_secs
        );
        for s in &self.stages {
            out.push_str(&format!(
                "  stage {:<28} {:>8.1}s  done={:<4} failed={:<4} services={}\n",
                s.name, s.duration_secs, s.tasks_done, s.tasks_failed, s.services_started
            ));
        }
        out
    }
}

/// Executes pipelines against a [`Session`].
pub struct PipelineRunner<'a> {
    session: &'a Session,
    /// Real-time budget for waiting on each stage's tasks.
    stage_timeout: Duration,
}

impl<'a> PipelineRunner<'a> {
    /// Create a runner bound to a session.
    pub fn new(session: &'a Session) -> Self {
        PipelineRunner {
            session,
            stage_timeout: Duration::from_secs(600),
        }
    }

    /// Override the per-stage real-time timeout.
    pub fn stage_timeout(mut self, timeout: Duration) -> Self {
        self.stage_timeout = timeout;
        self
    }

    /// Run the pipeline to completion, returning a per-stage report.
    pub fn run(&self, pipeline: &Pipeline) -> Result<PipelineReport, RuntimeError> {
        let total_watch = Stopwatch::start(self.session.clock());
        let mut stage_reports = Vec::with_capacity(pipeline.stages.len());
        let mut keep_alive: Vec<ServiceHandle> = Vec::new();

        for stage in &pipeline.stages {
            let watch = Stopwatch::start(self.session.clock());

            // Bring services up first and wait for readiness — the runtime guarantees
            // this ordering anyway (service priority + after_service), but the workflow
            // layer waits explicitly so stage timings are attributable.
            let mut services: Vec<ServiceHandle> = Vec::with_capacity(stage.services.len());
            for sd in &stage.services {
                services.push(self.session.submit_service(sd.clone())?);
            }
            for svc in &services {
                svc.wait_ready_timeout(self.stage_timeout)?;
            }

            // Submit every task of the stage, then wait for all of them.
            let handles: Vec<TaskHandle> = stage
                .tasks
                .iter()
                .map(|td| self.session.submit_task(td.clone()))
                .collect::<Result<_, _>>()?;
            let mut done = 0;
            let mut failed = 0;
            for h in &handles {
                match h.wait_final(self.stage_timeout)? {
                    TaskState::Done => done += 1,
                    _ => failed += 1,
                }
            }

            // Tear the stage's services down unless they span the rest of the pipeline.
            if stage.keep_services_alive {
                keep_alive.extend(services);
            } else {
                for svc in &services {
                    let _ = self.session.service_manager().stop(svc.name());
                }
            }

            stage_reports.push(StageReport {
                name: stage.name.clone(),
                duration_secs: watch.elapsed_secs(),
                tasks_done: done,
                tasks_failed: failed,
                services_started: stage.services.len(),
            });
        }

        // Stop services kept alive across stages.
        for svc in &keep_alive {
            let _ = self.session.service_manager().stop(svc.name());
        }

        Ok(PipelineReport {
            pipeline: pipeline.name.clone(),
            stages: stage_reports,
            total_secs: total_watch.elapsed_secs(),
        })
    }
}

/// Summarise a pipeline's structure as `(stage name, #services, #tasks)` rows — used by
/// the Table I generator and by documentation.
pub fn structure(pipeline: &Pipeline) -> Vec<(String, usize, usize)> {
    pipeline
        .stages
        .iter()
        .map(|s| (s.name.clone(), s.services.len(), s.tasks.len()))
        .collect()
}

/// Group tasks of a pipeline per tag value (e.g. per `stage` tag) — convenience used by
/// reports and tests.
pub fn tasks_by_tag(pipeline: &Pipeline, key: &str) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for stage in &pipeline.stages {
        for task in &stage.tasks {
            if let Some((_, v)) = task.tags.iter().find(|(k, _)| k == key) {
                *map.entry(v.clone()).or_insert(0) += 1;
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcml_platform::PlatformId;
    use hpcml_runtime::describe::{PilotDescription, TaskKind};
    use hpcml_serving::ModelSpec;
    use hpcml_sim::clock::ClockSpec;

    fn session() -> Session {
        let s = Session::builder("dsl-test")
            .platform(PlatformId::Local)
            .clock(ClockSpec::scaled(5000.0))
            .build()
            .unwrap();
        s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(2))
            .unwrap();
        s
    }

    #[test]
    fn pipeline_builder_counts() {
        let p = Pipeline::new("demo")
            .stage(
                Stage::new("a")
                    .task(TaskDescription::new("t1"))
                    .task(TaskDescription::new("t2")),
            )
            .stage(
                Stage::new("b")
                    .service(ServiceDescription::new("svc"))
                    .task(TaskDescription::new("t3")),
            );
        assert_eq!(p.total_tasks(), 3);
        assert_eq!(p.total_services(), 1);
        assert_eq!(
            structure(&p),
            vec![("a".to_string(), 0, 2), ("b".to_string(), 1, 1)]
        );
    }

    #[test]
    fn runner_executes_compute_stages_in_order() {
        let s = session();
        let p = Pipeline::new("two-stage")
            .stage(Stage::new("prep").tasks((0..4).map(|i| {
                TaskDescription::new(format!("prep-{i}"))
                    .kind(TaskKind::compute_secs(2.0))
                    .tag("stage", "prep")
            })))
            .stage(Stage::new("analyze").tasks((0..2).map(|i| {
                TaskDescription::new(format!("analyze-{i}"))
                    .kind(TaskKind::compute_secs(1.0))
                    .tag("stage", "analyze")
            })));
        let report = PipelineRunner::new(&s).run(&p).unwrap();
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.tasks_done(), 6);
        assert!(report.all_succeeded());
        assert!(report.total_secs >= report.stages[0].duration_secs);
        assert!(report.render().contains("prep"));
        assert_eq!(tasks_by_tag(&p, "stage")["prep"], 4);
        s.close();
    }

    #[test]
    fn runner_executes_multi_node_mpi_stage() {
        // A hybrid stage: one 2-node MPI gang plus a narrow single-node task compete
        // for a 2-node pilot; with a lookahead window the narrow task cannot wedge the
        // stage even when the gang parks first.
        let s = Session::builder("dsl-gang")
            .platform(PlatformId::Local)
            .clock(ClockSpec::scaled(5000.0))
            .scheduler_lookahead(4)
            .build()
            .unwrap();
        s.submit_pilot(PilotDescription::new(PlatformId::Local).nodes(2))
            .unwrap();
        let p = Pipeline::new("hybrid-mpi")
            .stage(
                Stage::new("simulate")
                    .task(
                        TaskDescription::new("md-gang")
                            .kind(TaskKind::compute_secs(1.0))
                            .cores(2)
                            .nodes(2),
                    )
                    .task(
                        TaskDescription::new("narrow")
                            .kind(TaskKind::compute_secs(0.5))
                            .cores(1),
                    ),
            )
            .stage(
                Stage::new("train").task(
                    TaskDescription::new("finetune")
                        .kind(TaskKind::compute_secs(0.5))
                        .gpus(1),
                ),
            );
        let report = PipelineRunner::new(&s).run(&p).unwrap();
        assert!(report.all_succeeded(), "{}", report.render());
        assert_eq!(report.tasks_done(), 3);
        // The gang placement was recorded with its node span.
        assert_eq!(s.metrics().scalar_values("task.gang.nodes"), vec![2.0]);
        s.close();
    }

    #[test]
    fn runner_brings_up_services_before_tasks() {
        let s = session();
        let p = Pipeline::new("svc-stage").stage(
            Stage::new("inference")
                .service(
                    ServiceDescription::new("noop-svc")
                        .model(ModelSpec::noop())
                        .gpus(1),
                )
                .task(
                    TaskDescription::new("client")
                        .kind(TaskKind::inference_client("noop-svc", 4))
                        .after_service("noop-svc"),
                ),
        );
        let report = PipelineRunner::new(&s).run(&p).unwrap();
        assert!(report.all_succeeded());
        assert_eq!(report.stages[0].services_started, 1);
        assert_eq!(s.metrics().response_count(), 4);
        s.close();
    }

    #[test]
    fn keep_alive_services_span_stages() {
        let s = session();
        let p = Pipeline::new("span")
            .stage(
                Stage::new("start-svc")
                    .service(
                        ServiceDescription::new("shared")
                            .model(ModelSpec::noop())
                            .gpus(1),
                    )
                    .keep_services(),
            )
            .stage(Stage::new("use-svc").task(
                TaskDescription::new("client").kind(TaskKind::inference_client("shared", 2)),
            ));
        let report = PipelineRunner::new(&s).run(&p).unwrap();
        assert!(report.all_succeeded(), "{}", report.render());
        assert_eq!(report.tasks_done(), 1);
        s.close();
    }

    #[test]
    fn failed_tasks_are_counted_not_fatal() {
        let s = session();
        // A task demanding more cores than a node has fails its stage but the pipeline
        // report still comes back.
        let p = Pipeline::new("failing").stage(
            Stage::new("bad")
                .task(TaskDescription::new("too-big").cores(1024))
                .task(TaskDescription::new("fine").kind(TaskKind::compute_secs(0.5))),
        );
        let report = PipelineRunner::new(&s).run(&p).unwrap();
        assert_eq!(report.tasks_failed(), 1);
        assert_eq!(report.tasks_done(), 1);
        assert!(!report.all_succeeded());
        s.close();
    }
}
