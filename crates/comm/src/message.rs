//! Message envelope and wire codec.
//!
//! Every payload exchanged between runtime components, clients, and services is wrapped
//! in a [`Message`]: a topic (what channel/queue it belongs to), a kind (what operation
//! it represents, e.g. `inference.request`), a set of string headers (timings, entity
//! identifiers), and an opaque byte payload. Messages are encoded with a small
//! self-contained length-prefixed binary codec, standing in for ZeroMQ's multipart
//! frames; the codec is exercised both by the in-process transports and by the codec
//! benchmarks.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::CommError;

/// Protocol magic prefix for encoded messages.
const MAGIC: u32 = 0x4850_434D; // "HPCM"
/// Current wire version.
const VERSION: u8 = 1;
/// Hard cap on any length field to catch corrupt frames early (64 MiB).
const MAX_FIELD_LEN: usize = 64 * 1024 * 1024;

/// A self-describing message envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Monotonic message identifier (unique per process).
    pub id: u64,
    /// Logical channel or destination (e.g. `service.llm-0`).
    pub topic: String,
    /// Operation (e.g. `inference.request`, `state.update`, `control.stop`).
    pub kind: String,
    /// String key/value metadata (timings, entity ids, model names).
    pub headers: BTreeMap<String, String>,
    /// Opaque payload bytes.
    pub payload: Bytes,
}

impl Message {
    /// Create a message with the given topic and kind, empty headers and payload.
    pub fn new(topic: impl Into<String>, kind: impl Into<String>) -> Self {
        Message {
            id: hpcml_sim::ids::next_uid(),
            topic: topic.into(),
            kind: kind.into(),
            headers: BTreeMap::new(),
            payload: Bytes::new(),
        }
    }

    /// Attach a payload.
    pub fn with_payload(mut self, payload: impl Into<Bytes>) -> Self {
        self.payload = payload.into();
        self
    }

    /// Attach a UTF-8 text payload.
    pub fn with_text(self, text: &str) -> Self {
        self.with_payload(Bytes::copy_from_slice(text.as_bytes()))
    }

    /// Add one header.
    pub fn with_header(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.insert(key.into(), value.into());
        self
    }

    /// Add a floating-point header (stored as its `{:.9}` decimal representation).
    pub fn with_f64_header(self, key: impl Into<String>, value: f64) -> Self {
        self.with_header(key, format!("{value:.9}"))
    }

    /// Read a header.
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.get(key).map(String::as_str)
    }

    /// Read a floating-point header.
    pub fn f64_header(&self, key: &str) -> Option<f64> {
        self.header(key).and_then(|v| v.parse().ok())
    }

    /// Interpret the payload as UTF-8 text.
    pub fn text(&self) -> Option<&str> {
        std::str::from_utf8(&self.payload).ok()
    }

    /// Payload size in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Exact encoded size: [`Message::encode`] writes precisely this many bytes, so the
    /// encode buffer is sized once and never reallocates. Also used for bandwidth
    /// modelling.
    pub fn encoded_len(&self) -> usize {
        let headers: usize = self
            .headers
            .iter()
            .map(|(k, v)| 8 + k.len() + v.len())
            .sum();
        4 + 1
            + 8
            + 4
            + self.topic.len()
            + 4
            + self.kind.len()
            + 4
            + headers
            + 4
            + self.payload.len()
    }

    /// Encode to the binary wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf)
    }

    /// Encode into a caller-owned scratch buffer and detach the frame.
    ///
    /// The hot-path variant of [`Message::encode`]: `buf` is reserved to the exact
    /// [`Message::encoded_len`] (so the write never reallocates) and the written
    /// frame is detached with `split().freeze()`, leaving `buf`'s allocation behind
    /// for the next message. A sender encoding a stream of messages through one
    /// scratch buffer stops paying per-message buffer growth.
    pub fn encode_into(&self, buf: &mut BytesMut) -> Bytes {
        let exact_len = self.encoded_len();
        debug_assert!(buf.is_empty(), "scratch buffer must start empty");
        buf.reserve(exact_len);
        buf.put_u32(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64(self.id);
        put_str(buf, &self.topic);
        put_str(buf, &self.kind);
        buf.put_u32(self.headers.len() as u32);
        for (k, v) in &self.headers {
            put_str(buf, k);
            put_str(buf, v);
        }
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        debug_assert_eq!(buf.len(), exact_len, "encoded_len must be exact");
        buf.split().freeze()
    }

    /// Decode from the binary wire format.
    pub fn decode(mut data: Bytes) -> Result<Self, CommError> {
        if data.remaining() < 4 + 1 + 8 {
            return Err(CommError::Codec("frame too short".into()));
        }
        let magic = data.get_u32();
        if magic != MAGIC {
            return Err(CommError::Codec(format!("bad magic 0x{magic:08x}")));
        }
        let version = data.get_u8();
        if version != VERSION {
            return Err(CommError::Codec(format!("unsupported version {version}")));
        }
        let id = data.get_u64();
        let topic = get_str(&mut data)?;
        let kind = get_str(&mut data)?;
        if data.remaining() < 4 {
            return Err(CommError::Codec("truncated header count".into()));
        }
        let n_headers = data.get_u32() as usize;
        if n_headers > MAX_FIELD_LEN {
            return Err(CommError::Codec("header count too large".into()));
        }
        let mut headers = BTreeMap::new();
        for _ in 0..n_headers {
            let k = get_str(&mut data)?;
            let v = get_str(&mut data)?;
            headers.insert(k, v);
        }
        if data.remaining() < 4 {
            return Err(CommError::Codec("truncated payload length".into()));
        }
        let payload_len = data.get_u32() as usize;
        if payload_len > MAX_FIELD_LEN || data.remaining() < payload_len {
            return Err(CommError::Codec("truncated payload".into()));
        }
        // Zero copy: the payload is a sub-view of the input buffer, not a fresh
        // allocation (`Bytes::copy_to_bytes` on `Bytes` slices the backing storage).
        let payload = data.copy_to_bytes(payload_len);
        Ok(Message {
            id,
            topic,
            kind,
            headers,
            payload,
        })
    }

    /// Decode a borrowed, zero-allocation view of an encoded frame.
    ///
    /// Unlike [`Message::decode`], nothing is copied or heap-allocated: topic, kind,
    /// header keys/values, and payload all borrow directly from `data`. Use this on hot
    /// read paths (routing, header inspection) and call [`MessageView::to_message`]
    /// only when an owned envelope is actually needed.
    pub fn decode_view(data: &[u8]) -> Result<MessageView<'_>, CommError> {
        let mut cur = Cursor { data, at: 0 };
        let magic = cur.u32()?;
        if magic != MAGIC {
            return Err(CommError::Codec(format!("bad magic 0x{magic:08x}")));
        }
        let version = cur.u8()?;
        if version != VERSION {
            return Err(CommError::Codec(format!("unsupported version {version}")));
        }
        let id = cur.u64()?;
        let topic = cur.str_field()?;
        let kind = cur.str_field()?;
        let n_headers = cur.u32()? as usize;
        if n_headers > MAX_FIELD_LEN {
            return Err(CommError::Codec("header count too large".into()));
        }
        let mut headers = Vec::with_capacity(n_headers.min(64));
        let mut sorted = true;
        for _ in 0..n_headers {
            let k = cur.str_field()?;
            let v = cur.str_field()?;
            if let Some((prev, _)) = headers.last() {
                sorted &= *prev < k;
            }
            headers.push((k, v));
        }
        let payload_len = cur.u32()? as usize;
        if payload_len > MAX_FIELD_LEN {
            return Err(CommError::Codec("truncated payload".into()));
        }
        let payload = cur.bytes_field(payload_len)?;
        Ok(MessageView {
            id,
            topic,
            kind,
            headers,
            sorted_headers: sorted,
            payload,
        })
    }
}

/// Borrowed decode of one encoded frame: every field points into the source buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageView<'a> {
    /// Monotonic message identifier.
    pub id: u64,
    /// Logical channel or destination.
    pub topic: &'a str,
    /// Operation kind.
    pub kind: &'a str,
    /// Header key/value pairs in wire order.
    headers: Vec<(&'a str, &'a str)>,
    /// Whether the wire order was strictly key-sorted (always true for frames produced
    /// by [`Message::encode`], which walks a `BTreeMap`).
    sorted_headers: bool,
    /// Payload bytes.
    pub payload: &'a [u8],
}

impl<'a> MessageView<'a> {
    /// Read a header without allocating. Frames from [`Message::encode`] carry
    /// key-sorted headers and get a binary search; a foreign frame with unsorted
    /// headers falls back to a linear scan (first match wins) instead of silently
    /// missing present keys.
    pub fn header(&self, key: &str) -> Option<&'a str> {
        if self.sorted_headers {
            self.headers
                .binary_search_by(|(k, _)| (*k).cmp(key))
                .ok()
                .map(|idx| self.headers[idx].1)
        } else {
            self.headers
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| *v)
        }
    }

    /// Read a floating-point header.
    pub fn f64_header(&self, key: &str) -> Option<f64> {
        self.header(key).and_then(|v| v.parse().ok())
    }

    /// All header pairs, in wire order (key-sorted for frames from
    /// [`Message::encode`]; foreign frames may carry any order).
    pub fn headers(&self) -> &[(&'a str, &'a str)] {
        &self.headers
    }

    /// Interpret the payload as UTF-8 text.
    pub fn text(&self) -> Option<&'a str> {
        std::str::from_utf8(self.payload).ok()
    }

    /// Materialise an owned [`Message`] (copies; use only off the hot path).
    pub fn to_message(&self) -> Message {
        Message {
            id: self.id,
            topic: self.topic.to_string(),
            kind: self.kind.to_string(),
            headers: self
                .headers
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            payload: Bytes::copy_from_slice(self.payload),
        }
    }
}

/// Borrowing cursor over an encoded frame.
struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CommError> {
        let end = self
            .at
            .checked_add(n)
            .ok_or_else(|| CommError::Codec("frame too short".into()))?;
        if end > self.data.len() {
            return Err(CommError::Codec("frame too short".into()));
        }
        let out = &self.data[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CommError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CommError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CommError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn bytes_field(&mut self, len: usize) -> Result<&'a [u8], CommError> {
        if len > MAX_FIELD_LEN {
            return Err(CommError::Codec("truncated string".into()));
        }
        self.take(len)
    }

    fn str_field(&mut self) -> Result<&'a str, CommError> {
        let len = self.u32()? as usize;
        let raw = self.bytes_field(len)?;
        std::str::from_utf8(raw).map_err(|_| CommError::Codec("invalid utf-8".into()))
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(data: &mut Bytes) -> Result<String, CommError> {
    if data.remaining() < 4 {
        return Err(CommError::Codec("truncated string length".into()));
    }
    let len = data.get_u32() as usize;
    if len > MAX_FIELD_LEN || data.remaining() < len {
        return Err(CommError::Codec("truncated string".into()));
    }
    let raw = data.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| CommError::Codec("invalid utf-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Message {
        Message::new("service.llm-0", "inference.request")
            .with_header("client", "task.000003")
            .with_f64_header("sent_at", 12.25)
            .with_text("What is the effect of low-dose radiation on cell morphology?")
    }

    #[test]
    fn builder_and_accessors() {
        let m = sample();
        assert_eq!(m.topic, "service.llm-0");
        assert_eq!(m.kind, "inference.request");
        assert_eq!(m.header("client"), Some("task.000003"));
        assert_eq!(m.f64_header("sent_at"), Some(12.25));
        assert_eq!(m.f64_header("missing"), None);
        assert!(m.text().unwrap().starts_with("What is"));
        assert!(m.payload_len() > 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        let encoded = m.encode();
        assert_eq!(
            encoded.len(),
            m.encoded_len(),
            "encoded_len is exact, not approximate"
        );
        let decoded = Message::decode(encoded).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn encode_into_reuses_the_scratch_buffer() {
        let mut scratch = BytesMut::new();
        let frames: Vec<Bytes> = (0..4)
            .map(|i| {
                Message::new("t", "k")
                    .with_text(&format!("payload-{i}"))
                    .encode_into(&mut scratch)
            })
            .collect();
        for (i, frame) in frames.iter().enumerate() {
            let decoded = Message::decode(frame.clone()).unwrap();
            assert_eq!(decoded.text(), Some(format!("payload-{i}").as_str()));
        }
        // The scratch is empty between messages and identical to the one-shot path.
        let m = sample();
        assert_eq!(m.encode_into(&mut scratch), m.encode());
    }

    #[test]
    fn decode_view_matches_owned_decode() {
        let m = sample();
        let encoded = m.encode();
        let view = Message::decode_view(&encoded).unwrap();
        assert_eq!(view.id, m.id);
        assert_eq!(view.topic, m.topic);
        assert_eq!(view.kind, m.kind);
        assert_eq!(view.header("client"), Some("task.000003"));
        assert_eq!(view.f64_header("sent_at"), Some(12.25));
        assert_eq!(view.header("missing"), None);
        assert_eq!(view.text(), m.text());
        assert_eq!(view.headers().len(), m.headers.len());
        assert_eq!(view.to_message(), m);
    }

    #[test]
    fn decode_view_borrows_from_the_buffer() {
        let m = sample();
        let encoded = m.encode();
        let view = Message::decode_view(&encoded).unwrap();
        let buf_range = encoded.as_ptr() as usize..encoded.as_ptr() as usize + encoded.len();
        assert!(
            buf_range.contains(&(view.topic.as_ptr() as usize)),
            "topic borrows"
        );
        assert!(
            buf_range.contains(&(view.payload.as_ptr() as usize)),
            "payload borrows"
        );
    }

    #[test]
    fn decode_view_handles_unsorted_foreign_headers() {
        // Hand-build a frame whose headers are NOT key-sorted (a foreign encoder).
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64(7);
        put_str(&mut buf, "t");
        put_str(&mut buf, "k");
        buf.put_u32(2);
        put_str(&mut buf, "zeta");
        put_str(&mut buf, "1");
        put_str(&mut buf, "alpha");
        put_str(&mut buf, "2");
        buf.put_u32(0);
        let raw = buf.freeze();
        let view = Message::decode_view(&raw).unwrap();
        assert_eq!(
            view.header("alpha"),
            Some("2"),
            "unsorted frames must still resolve keys"
        );
        assert_eq!(view.header("zeta"), Some("1"));
        assert_eq!(view.header("missing"), None);
    }

    #[test]
    fn decode_view_rejects_garbage_and_truncation() {
        assert!(Message::decode_view(b"xx").is_err());
        assert!(Message::decode_view(&[0u8; 64]).is_err());
        let raw = sample().encode();
        for cut in [0, 5, 13, 20, raw.len() - 1] {
            assert!(
                Message::decode_view(&raw[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut bad_version = raw.to_vec();
        bad_version[4] = 99;
        assert!(Message::decode_view(&bad_version).is_err());
    }

    #[test]
    fn roundtrip_empty_message() {
        let m = Message::new("", "");
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.payload_len(), 0);
    }

    #[test]
    fn roundtrip_binary_payload() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let m = Message::new("t", "k").with_payload(payload.clone());
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(&decoded.payload[..], &payload[..]);
        assert!(
            decoded.text().is_none(),
            "binary payload is not valid UTF-8"
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            Message::decode(Bytes::from_static(b"xx")),
            Err(CommError::Codec(_))
        ));
        assert!(matches!(
            Message::decode(Bytes::from_static(&[0u8; 64])),
            Err(CommError::Codec(_))
        ));
        // Corrupt a valid frame's magic.
        let mut raw = sample().encode().to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(
            Message::decode(Bytes::from(raw)),
            Err(CommError::Codec(_))
        ));
    }

    #[test]
    fn decode_rejects_truncated_frames() {
        let raw = sample().encode();
        for cut in [5, 13, 20, raw.len() - 1] {
            let truncated = raw.slice(0..cut.min(raw.len()));
            assert!(
                Message::decode(truncated).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn decode_rejects_wrong_version() {
        let mut raw = sample().encode().to_vec();
        raw[4] = 99;
        assert!(
            matches!(Message::decode(Bytes::from(raw)), Err(CommError::Codec(msg)) if msg.contains("version"))
        );
    }

    #[test]
    fn message_ids_are_unique() {
        let a = Message::new("t", "k");
        let b = Message::new("t", "k");
        assert_ne!(a.id, b.id);
    }
}
