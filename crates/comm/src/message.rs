//! Message envelope and wire codec.
//!
//! Every payload exchanged between runtime components, clients, and services is wrapped
//! in a [`Message`]: a topic (what channel/queue it belongs to), a kind (what operation
//! it represents, e.g. `inference.request`), a set of string headers (timings, entity
//! identifiers), and an opaque byte payload. Messages are encoded with a small
//! self-contained length-prefixed binary codec, standing in for ZeroMQ's multipart
//! frames; the codec is exercised both by the in-process transports and by the codec
//! benchmarks.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::CommError;

/// Protocol magic prefix for encoded messages.
const MAGIC: u32 = 0x4850_434D; // "HPCM"
/// Current wire version.
const VERSION: u8 = 1;
/// Hard cap on any length field to catch corrupt frames early (64 MiB).
const MAX_FIELD_LEN: usize = 64 * 1024 * 1024;

/// A self-describing message envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Monotonic message identifier (unique per process).
    pub id: u64,
    /// Logical channel or destination (e.g. `service.llm-0`).
    pub topic: String,
    /// Operation (e.g. `inference.request`, `state.update`, `control.stop`).
    pub kind: String,
    /// String key/value metadata (timings, entity ids, model names).
    pub headers: BTreeMap<String, String>,
    /// Opaque payload bytes.
    pub payload: Bytes,
}

impl Message {
    /// Create a message with the given topic and kind, empty headers and payload.
    pub fn new(topic: impl Into<String>, kind: impl Into<String>) -> Self {
        Message {
            id: hpcml_sim::ids::next_uid(),
            topic: topic.into(),
            kind: kind.into(),
            headers: BTreeMap::new(),
            payload: Bytes::new(),
        }
    }

    /// Attach a payload.
    pub fn with_payload(mut self, payload: impl Into<Bytes>) -> Self {
        self.payload = payload.into();
        self
    }

    /// Attach a UTF-8 text payload.
    pub fn with_text(self, text: &str) -> Self {
        self.with_payload(Bytes::copy_from_slice(text.as_bytes()))
    }

    /// Add one header.
    pub fn with_header(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.insert(key.into(), value.into());
        self
    }

    /// Add a floating-point header (stored as its `{:.9}` decimal representation).
    pub fn with_f64_header(self, key: impl Into<String>, value: f64) -> Self {
        self.with_header(key, format!("{value:.9}"))
    }

    /// Read a header.
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.get(key).map(String::as_str)
    }

    /// Read a floating-point header.
    pub fn f64_header(&self, key: &str) -> Option<f64> {
        self.header(key).and_then(|v| v.parse().ok())
    }

    /// Interpret the payload as UTF-8 text.
    pub fn text(&self) -> Option<&str> {
        std::str::from_utf8(&self.payload).ok()
    }

    /// Payload size in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Approximate encoded size (used for bandwidth modelling).
    pub fn encoded_len(&self) -> usize {
        let headers: usize = self.headers.iter().map(|(k, v)| 8 + k.len() + v.len()).sum();
        4 + 1 + 8 + 4 + self.topic.len() + 4 + self.kind.len() + 4 + headers + 4 + self.payload.len()
    }

    /// Encode to the binary wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u32(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64(self.id);
        put_str(&mut buf, &self.topic);
        put_str(&mut buf, &self.kind);
        buf.put_u32(self.headers.len() as u32);
        for (k, v) in &self.headers {
            put_str(&mut buf, k);
            put_str(&mut buf, v);
        }
        buf.put_u32(self.payload.len() as u32);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decode from the binary wire format.
    pub fn decode(mut data: Bytes) -> Result<Self, CommError> {
        if data.remaining() < 4 + 1 + 8 {
            return Err(CommError::Codec("frame too short".into()));
        }
        let magic = data.get_u32();
        if magic != MAGIC {
            return Err(CommError::Codec(format!("bad magic 0x{magic:08x}")));
        }
        let version = data.get_u8();
        if version != VERSION {
            return Err(CommError::Codec(format!("unsupported version {version}")));
        }
        let id = data.get_u64();
        let topic = get_str(&mut data)?;
        let kind = get_str(&mut data)?;
        if data.remaining() < 4 {
            return Err(CommError::Codec("truncated header count".into()));
        }
        let n_headers = data.get_u32() as usize;
        if n_headers > MAX_FIELD_LEN {
            return Err(CommError::Codec("header count too large".into()));
        }
        let mut headers = BTreeMap::new();
        for _ in 0..n_headers {
            let k = get_str(&mut data)?;
            let v = get_str(&mut data)?;
            headers.insert(k, v);
        }
        if data.remaining() < 4 {
            return Err(CommError::Codec("truncated payload length".into()));
        }
        let payload_len = data.get_u32() as usize;
        if payload_len > MAX_FIELD_LEN || data.remaining() < payload_len {
            return Err(CommError::Codec("truncated payload".into()));
        }
        let payload = data.copy_to_bytes(payload_len);
        Ok(Message { id, topic, kind, headers, payload })
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(data: &mut Bytes) -> Result<String, CommError> {
    if data.remaining() < 4 {
        return Err(CommError::Codec("truncated string length".into()));
    }
    let len = data.get_u32() as usize;
    if len > MAX_FIELD_LEN || data.remaining() < len {
        return Err(CommError::Codec("truncated string".into()));
    }
    let raw = data.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| CommError::Codec("invalid utf-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Message {
        Message::new("service.llm-0", "inference.request")
            .with_header("client", "task.000003")
            .with_f64_header("sent_at", 12.25)
            .with_text("What is the effect of low-dose radiation on cell morphology?")
    }

    #[test]
    fn builder_and_accessors() {
        let m = sample();
        assert_eq!(m.topic, "service.llm-0");
        assert_eq!(m.kind, "inference.request");
        assert_eq!(m.header("client"), Some("task.000003"));
        assert_eq!(m.f64_header("sent_at"), Some(12.25));
        assert_eq!(m.f64_header("missing"), None);
        assert!(m.text().unwrap().starts_with("What is"));
        assert!(m.payload_len() > 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        let encoded = m.encode();
        assert!(encoded.len() <= m.encoded_len() + 16);
        let decoded = Message::decode(encoded).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn roundtrip_empty_message() {
        let m = Message::new("", "");
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.payload_len(), 0);
    }

    #[test]
    fn roundtrip_binary_payload() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let m = Message::new("t", "k").with_payload(payload.clone());
        let decoded = Message::decode(m.encode()).unwrap();
        assert_eq!(&decoded.payload[..], &payload[..]);
        assert!(decoded.text().is_none(), "binary payload is not valid UTF-8");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(Message::decode(Bytes::from_static(b"xx")), Err(CommError::Codec(_))));
        assert!(matches!(
            Message::decode(Bytes::from_static(&[0u8; 64])),
            Err(CommError::Codec(_))
        ));
        // Corrupt a valid frame's magic.
        let mut raw = sample().encode().to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(Message::decode(Bytes::from(raw)), Err(CommError::Codec(_))));
    }

    #[test]
    fn decode_rejects_truncated_frames() {
        let raw = sample().encode();
        for cut in [5, 13, 20, raw.len() - 1] {
            let truncated = raw.slice(0..cut.min(raw.len()));
            assert!(Message::decode(truncated).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn decode_rejects_wrong_version() {
        let mut raw = sample().encode().to_vec();
        raw[4] = 99;
        assert!(matches!(Message::decode(Bytes::from(raw)), Err(CommError::Codec(msg)) if msg.contains("version")));
    }

    #[test]
    fn message_ids_are_unique() {
        let a = Message::new("t", "k");
        let b = Message::new("t", "k");
        assert_ne!(a.id, b.id);
    }
}
