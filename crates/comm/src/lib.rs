//! # hpcml-comm — ZeroMQ-like messaging substrate
//!
//! RADICAL-Pilot wires its components together with ZeroMQ: clients talk to services over
//! REQ/REP sockets, components publish state updates over PUB/SUB, and queues connect the
//! pipeline of scheduler → executor → stagers. This crate rebuilds those communication
//! patterns from scratch on top of `crossbeam` channels, with:
//!
//! * [`message`] — a self-describing message envelope with a compact binary wire codec
//!   (no external serialisation framework needed) and reusable encode buffers;
//! * [`reqrep`] — request/reply endpoints ([`reqrep::ReqRepServer`], [`reqrep::ReqRepClient`])
//!   used for the service inference API, with batched requests coalescing K messages
//!   onto one link traversal;
//! * [`pubsub`] — topic-based publish/subscribe used for state-update notification:
//!   zero-copy fan-out (encode once, share the frame with every subscriber) over
//!   sharded subscriber lists;
//! * [`queue`] — work queues (PUSH/PULL) connecting runtime components, with batched
//!   push/receive;
//! * [`registry`] — the sharded, read-mostly endpoint registry services publish
//!   themselves into (the `publish` component of the paper's bootstrap time);
//!   lookups read lock-free snapshots, writes hide behind striped locks;
//! * [`link`] — latency injection: every hop between two endpoints samples the
//!   appropriate [`hpcml_platform::LatencyProfile`] (local vs remote) on the shared
//!   virtual clock, so the response-time experiments see the paper's measured
//!   0.063 ms / 0.47 ms link characteristics; batches traverse once with summed
//!   payload bytes ([`link::Link::traverse_batch`]);
//! * [`metrics`] — the `comm.*` scalar series (fan-out width, batch size, queue
//!   depth) the fabric records through a pluggable [`metrics::CommSink`].
//!
//! # Example
//!
//! A request/reply round trip over a zero-latency link, using the binary message
//! codec end to end:
//!
//! ```
//! use hpcml_comm::link::Link;
//! use hpcml_comm::message::Message;
//! use hpcml_comm::reqrep::ReqRepServer;
//! use hpcml_sim::clock::ClockSpec;
//!
//! use std::time::Duration;
//!
//! let server = ReqRepServer::new("service.echo");
//! let client = server.client(Link::instant(ClockSpec::Manual.build()));
//! let worker = std::thread::spawn(move || {
//!     let (request, responder) = server.recv_timeout(Duration::from_secs(5)).unwrap();
//!     let text = request.text().unwrap().to_string();
//!     responder
//!         .reply(Message::new("service.echo", "reply").with_text(&text))
//!         .unwrap();
//! });
//!
//! let reply = client.request(Message::new("service.echo", "ask").with_text("ping"))?;
//! assert_eq!(reply.text(), Some("ping"));
//! worker.join().unwrap();
//! # Ok::<(), hpcml_comm::CommError>(())
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod link;
pub mod message;
pub mod metrics;
pub mod pubsub;
pub mod queue;
pub mod registry;
pub mod reqrep;

pub use error::CommError;
pub use link::Link;
pub use message::{Message, MessageView};
pub use metrics::{null_comm_sink, CommSink, SharedCommSink};
pub use pubsub::{Publisher, Subscriber};
pub use queue::{WorkQueue, WorkQueueReceiver, WorkQueueSender};
pub use registry::{EndpointEntry, EndpointRegistry};
pub use reqrep::{ReqRepClient, ReqRepHandle, ReqRepServer, Responder};
