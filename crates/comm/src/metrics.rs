//! Metrics sink for the comm fabric.
//!
//! The fabric's hot paths record a small set of `comm.*` scalar series — fan-out
//! width, batch sizes, queue depth — through a [`CommSink`]. The runtime wires the
//! session's metric recorder in (its `record_scalar`); standalone uses pass
//! [`null_comm_sink`]. The trait is blanket-implemented for closures, same shape as
//! the serving plane's sink.
//!
//! Series recorded by this crate:
//!
//! | series                    | recorded by                        | meaning                         |
//! |---------------------------|------------------------------------|---------------------------------|
//! | `comm.fanout.width`       | [`crate::pubsub::Publisher`]       | subscribers hit by one publish  |
//! | `comm.publish.batch_size` | [`crate::pubsub::Publisher`]       | messages per `publish_batch`    |
//! | `comm.queue.depth`        | [`crate::queue::WorkQueueSender`]  | queue depth after a push        |

use std::sync::Arc;

/// Destination for `comm.*` scalar metrics. Implemented for any `Fn(&str, f64)`.
pub trait CommSink: Send + Sync {
    /// Record one named scalar observation.
    fn record(&self, name: &str, value: f64);
}

impl<F: Fn(&str, f64) + Send + Sync> CommSink for F {
    fn record(&self, name: &str, value: f64) {
        self(name, value)
    }
}

/// Shared handle to a comm metrics sink.
pub type SharedCommSink = Arc<dyn CommSink>;

/// A sink that drops every observation.
pub fn null_comm_sink() -> SharedCommSink {
    Arc::new(|_: &str, _: f64| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    #[test]
    fn closure_sink_records() {
        let seen: Arc<Mutex<Vec<(String, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let sink: SharedCommSink = Arc::new(move |name: &str, value: f64| {
            seen2.lock().push((name.to_string(), value));
        });
        sink.record("comm.fanout.width", 3.0);
        null_comm_sink().record("dropped", 1.0);
        assert_eq!(seen.lock().as_slice(), &[("comm.fanout.width".into(), 3.0)]);
    }
}
