//! Latency injection for message hops.
//!
//! A [`Link`] represents the network path between two endpoints (client task ↔ service
//! instance, component ↔ component). Every traversal samples the link's
//! [`LatencyProfile`] and sleeps that long on the shared virtual clock, so higher layers
//! measure communication time exactly the way the paper does — as part of the observed
//! round trip, not as a synthetic constant.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hpcml_platform::network::LatencyProfile;
use hpcml_sim::clock::SharedClock;

/// A (possibly latency-injecting) network path between two endpoints.
#[derive(Clone)]
pub struct Link {
    clock: SharedClock,
    profile: LatencyProfile,
    rng: Arc<Mutex<StdRng>>,
    label: String,
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link")
            .field("label", &self.label)
            .field("mean_ms", &self.profile.mean_ms())
            .finish()
    }
}

impl Link {
    /// Create a link with the given latency profile.
    pub fn new(
        label: impl Into<String>,
        clock: SharedClock,
        profile: LatencyProfile,
        seed: u64,
    ) -> Self {
        Link {
            clock,
            profile,
            rng: Arc::new(Mutex::new(StdRng::seed_from_u64(seed))),
            label: label.into(),
        }
    }

    /// A zero-latency link (used for in-process component wiring where the paper would
    /// not count network time).
    pub fn instant(clock: SharedClock) -> Self {
        Link::new("instant", clock, LatencyProfile::normal_ms(0.0, 0.0), 0)
    }

    /// The link's latency profile.
    pub fn profile(&self) -> &LatencyProfile {
        &self.profile
    }

    /// Human-readable label (e.g. `delta->r3`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Traverse the link one way with a payload of `payload_bytes`, sleeping the sampled
    /// latency on the virtual clock. Returns the injected delay in seconds.
    pub fn traverse(&self, payload_bytes: usize) -> f64 {
        let delay = {
            let mut rng = self.rng.lock();
            self.profile.sample_one_way(payload_bytes, &mut *rng)
        };
        self.clock.sleep(delay);
        delay.as_secs_f64()
    }

    /// The clock this link sleeps on.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcml_sim::clock::ClockSpec;

    #[test]
    fn traverse_advances_virtual_time() {
        let clock = ClockSpec::scaled(10_000.0).build();
        let link = Link::new(
            "test",
            Arc::clone(&clock),
            LatencyProfile::normal_ms(5.0, 0.0),
            1,
        );
        let t0 = clock.now();
        let injected = link.traverse(128);
        let elapsed = clock.now().since(t0).as_secs_f64();
        assert!((injected - 0.005).abs() < 1e-6);
        assert!(
            elapsed >= injected * 0.5,
            "virtual clock must advance by roughly the injected delay"
        );
    }

    #[test]
    fn instant_link_is_effectively_free() {
        let clock = ClockSpec::scaled(1000.0).build();
        let link = Link::instant(Arc::clone(&clock));
        let d = link.traverse(1024);
        assert!(d < 1e-6);
        assert_eq!(link.label(), "instant");
    }

    #[test]
    fn remote_link_is_slower_than_local_link() {
        let clock = ClockSpec::scaled(1_000_000.0).build();
        let local = Link::new(
            "local",
            Arc::clone(&clock),
            LatencyProfile::paper_local(),
            2,
        );
        let remote = Link::new(
            "remote",
            Arc::clone(&clock),
            LatencyProfile::paper_remote(),
            2,
        );
        let n = 200;
        let l: f64 = (0..n).map(|_| local.traverse(64)).sum::<f64>() / n as f64;
        let r: f64 = (0..n).map(|_| remote.traverse(64)).sum::<f64>() / n as f64;
        assert!(r > 3.0 * l, "remote mean {r} vs local mean {l}");
        assert!(link_is_debuggable(&local));
    }

    fn link_is_debuggable(l: &Link) -> bool {
        !format!("{l:?}").is_empty() && l.profile().mean_ms() > 0.0 && l.clock().scale() > 0.0
    }
}
