//! Latency injection for message hops.
//!
//! A [`Link`] represents the network path between two endpoints (client task ↔ service
//! instance, component ↔ component). Every traversal samples the link's
//! [`LatencyProfile`] and sleeps that long on the shared virtual clock, so higher layers
//! measure communication time exactly the way the paper does — as part of the observed
//! round trip, not as a synthetic constant.
//!
//! # Batched traversal (message coalescing)
//!
//! [`Link::traverse_batch`] prices a batch of K messages as **one** traversal carrying
//! the summed payload bytes: a single one-way latency sample plus the bandwidth term
//! for the total size. This is the coalescing rule ZeroMQ applies when it packs
//! adjacent messages into one TCP segment — per-message latency is paid once per
//! batch, while the bandwidth cost still scales with the bytes actually moved. A
//! batch of one is exactly [`Link::traverse`].
//!
//! # Determinism
//!
//! Each link instance owns its own seeded RNG stream, advanced lock-free through an
//! atomic state word — traversals never contend on a mutex. Cloning a link (every
//! [`crate::reqrep::ReqRepClient`] clone carries one) derives a fresh stream from the
//! parent's base seed, the link label, and a per-clone index, so concurrent senders
//! draw from independent deterministic sequences instead of racing for one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::RngCore;

use hpcml_platform::network::LatencyProfile;
use hpcml_sim::clock::SharedClock;

/// Shared identity of a link family: every clone derives its RNG stream from here.
struct LinkOrigin {
    base_seed: u64,
    clone_counter: AtomicU64,
}

/// A seeded RNG stream advanced through an atomic word: each draw is one SplitMix64
/// output over a `fetch_add`-advanced state, so sampling is lock-free and every
/// concurrent draw still gets a distinct point of the stream. Under a single sender it
/// yields the same stream as `StdRng::seed_from_u64(seed)`.
struct AtomicRng {
    state: AtomicU64,
}

impl AtomicRng {
    fn seeded(seed: u64) -> Self {
        // Pre-advance once so the draw sequence (`mix` of the pre-`fetch_add` value)
        // matches `StdRng::seed_from_u64(seed)`'s post-advance sequence exactly.
        AtomicRng {
            state: AtomicU64::new(seed.wrapping_add(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// A borrowing handle implementing [`RngCore`] against the shared state.
    fn stream(&self) -> AtomicRngStream<'_> {
        AtomicRngStream { state: &self.state }
    }
}

/// Borrowed draw handle over an [`AtomicRng`] (the `&mut self` in [`RngCore`] applies
/// to the handle, not the shared state — advancement is the atomic `fetch_add`).
struct AtomicRngStream<'a> {
    state: &'a AtomicU64,
}

impl RngCore for AtomicRngStream<'_> {
    fn next_u64(&mut self) -> u64 {
        splitmix64(
            self.state
                .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed),
        )
    }
}

/// One SplitMix64 output step over an already-advanced state word.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a label, to fold it into derived stream seeds.
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A (possibly latency-injecting) network path between two endpoints.
pub struct Link {
    clock: SharedClock,
    profile: LatencyProfile,
    rng: AtomicRng,
    label: Arc<str>,
    origin: Arc<LinkOrigin>,
}

impl Clone for Link {
    /// Clones derive their own deterministic RNG stream (base seed ⊕ label hash ⊕
    /// clone index), so each sender samples latency without touching shared state.
    fn clone(&self) -> Self {
        let idx = self.origin.clone_counter.fetch_add(1, Ordering::Relaxed);
        let seed = splitmix64(
            self.origin
                .base_seed
                .wrapping_add(hash_label(&self.label))
                .wrapping_add(idx.wrapping_mul(0xA076_1D64_78BD_642F)),
        );
        Link {
            clock: Arc::clone(&self.clock),
            profile: self.profile,
            rng: AtomicRng::seeded(seed),
            label: Arc::clone(&self.label),
            origin: Arc::clone(&self.origin),
        }
    }
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link")
            .field("label", &self.label)
            .field("mean_ms", &self.profile.mean_ms())
            .finish()
    }
}

impl Link {
    /// Create a link with the given latency profile.
    pub fn new(
        label: impl Into<String>,
        clock: SharedClock,
        profile: LatencyProfile,
        seed: u64,
    ) -> Self {
        Link {
            clock,
            profile,
            rng: AtomicRng::seeded(seed),
            label: Arc::from(label.into()),
            origin: Arc::new(LinkOrigin {
                base_seed: seed,
                clone_counter: AtomicU64::new(1),
            }),
        }
    }

    /// A zero-latency link (used for in-process component wiring where the paper would
    /// not count network time).
    pub fn instant(clock: SharedClock) -> Self {
        Link::new("instant", clock, LatencyProfile::normal_ms(0.0, 0.0), 0)
    }

    /// The link's latency profile.
    pub fn profile(&self) -> &LatencyProfile {
        &self.profile
    }

    /// Human-readable label (e.g. `delta->r3`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Traverse the link one way with a payload of `payload_bytes`, sleeping the sampled
    /// latency on the virtual clock. Returns the injected delay in seconds.
    pub fn traverse(&self, payload_bytes: usize) -> f64 {
        self.traverse_batch(1, payload_bytes)
    }

    /// Traverse the link once carrying a batch of `count` messages whose payloads sum
    /// to `total_payload_bytes` (the coalescing rule — see the module docs): one
    /// latency sample, the bandwidth term for the summed bytes. `count == 0` is free.
    /// Returns the injected delay in seconds.
    pub fn traverse_batch(&self, count: usize, total_payload_bytes: usize) -> f64 {
        if count == 0 {
            return 0.0;
        }
        // Lock-free sample: the stream state advances via `fetch_add`, so concurrent
        // traversals of a shared link interleave draws instead of serialising.
        let mut rng = self.rng.stream();
        let delay = self.profile.sample_one_way(total_payload_bytes, &mut rng);
        self.clock.sleep(delay);
        delay.as_secs_f64()
    }

    /// The clock this link sleeps on.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcml_sim::clock::ClockSpec;

    #[test]
    fn traverse_advances_virtual_time() {
        let clock = ClockSpec::scaled(10_000.0).build();
        let link = Link::new(
            "test",
            Arc::clone(&clock),
            LatencyProfile::normal_ms(5.0, 0.0),
            1,
        );
        let t0 = clock.now();
        let injected = link.traverse(128);
        let elapsed = clock.now().since(t0).as_secs_f64();
        assert!((injected - 0.005).abs() < 1e-6);
        assert!(
            elapsed >= injected * 0.5,
            "virtual clock must advance by roughly the injected delay"
        );
    }

    #[test]
    fn instant_link_is_effectively_free() {
        let clock = ClockSpec::scaled(1000.0).build();
        let link = Link::instant(Arc::clone(&clock));
        let d = link.traverse(1024);
        assert!(d < 1e-6);
        assert_eq!(link.label(), "instant");
    }

    #[test]
    fn batch_traversal_pays_one_latency_sample() {
        let clock = ClockSpec::scaled(100_000.0).build();
        // Zero-sigma latency plus a bandwidth term, so the pricing is exact.
        let profile = LatencyProfile::normal_ms(4.0, 0.0).with_per_kib_ms(1.0);
        let link = Link::new("batch", Arc::clone(&clock), profile, 3);
        let batched = link.traverse_batch(16, 16 * 1024);
        // One 4 ms latency sample + 16 KiB * 1 ms/KiB of bandwidth.
        assert!((batched - (0.004 + 0.016)).abs() < 1e-9, "got {batched}");
        // Sixteen singletons pay the latency sample sixteen times.
        let singleton_total: f64 = (0..16).map(|_| link.traverse(1024)).sum();
        assert!(
            (singleton_total - 16.0 * 0.005).abs() < 1e-9,
            "got {singleton_total}"
        );
        assert_eq!(link.traverse_batch(0, 0), 0.0, "empty batch is free");
    }

    #[test]
    fn clones_draw_independent_deterministic_streams() {
        let clock = ClockSpec::scaled(1_000_000.0).build();
        let profile = LatencyProfile::normal_ms(1.0, 0.5);
        let make = || Link::new("det", ClockSpec::scaled(1_000_000.0).build(), profile, 42);
        let a = make();
        let b = make();
        // Same construction order ⇒ identical streams, link by link and clone by clone.
        let a1 = a.clone();
        let b1 = b.clone();
        let base: Vec<f64> = (0..8).map(|_| a.traverse(64)).collect();
        let base2: Vec<f64> = (0..8).map(|_| b.traverse(64)).collect();
        assert_eq!(base, base2, "same seed ⇒ same stream");
        let c1: Vec<f64> = (0..8).map(|_| a1.traverse(64)).collect();
        let c2: Vec<f64> = (0..8).map(|_| b1.traverse(64)).collect();
        assert_eq!(c1, c2, "first clones agree across identically-built links");
        assert_ne!(base, c1, "clone stream differs from the parent stream");
        drop(clock);
    }

    #[test]
    fn remote_link_is_slower_than_local_link() {
        let clock = ClockSpec::scaled(1_000_000.0).build();
        let local = Link::new(
            "local",
            Arc::clone(&clock),
            LatencyProfile::paper_local(),
            2,
        );
        let remote = Link::new(
            "remote",
            Arc::clone(&clock),
            LatencyProfile::paper_remote(),
            2,
        );
        let n = 200;
        let l: f64 = (0..n).map(|_| local.traverse(64)).sum::<f64>() / n as f64;
        let r: f64 = (0..n).map(|_| remote.traverse(64)).sum::<f64>() / n as f64;
        assert!(r > 3.0 * l, "remote mean {r} vs local mean {l}");
        assert!(link_is_debuggable(&local));
    }

    fn link_is_debuggable(l: &Link) -> bool {
        !format!("{l:?}").is_empty() && l.profile().mean_ms() > 0.0 && l.clock().scale() > 0.0
    }
}
