//! Error type shared by all communication primitives.

use std::fmt;

/// Errors raised by the messaging layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer endpoint hung up (channel disconnected).
    Disconnected,
    /// A blocking receive or request timed out.
    Timeout,
    /// A bounded queue is at capacity right now (distinct from [`CommError::Timeout`]:
    /// the operation did not wait — retrying after consumers drain can succeed).
    Full,
    /// The message could not be encoded or decoded.
    Codec(String),
    /// A named endpoint was not found in the registry.
    EndpointNotFound(String),
    /// The endpoint name is already registered.
    AlreadyRegistered(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Disconnected => write!(f, "peer endpoint disconnected"),
            CommError::Timeout => write!(f, "operation timed out"),
            CommError::Full => write!(f, "queue is full"),
            CommError::Codec(msg) => write!(f, "codec error: {msg}"),
            CommError::EndpointNotFound(name) => write!(f, "endpoint not found: {name}"),
            CommError::AlreadyRegistered(name) => write!(f, "endpoint already registered: {name}"),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CommError::Disconnected.to_string().contains("disconnected"));
        assert!(CommError::Timeout.to_string().contains("timed out"));
        assert!(CommError::Full.to_string().contains("full"));
        assert!(CommError::Codec("bad length".into())
            .to_string()
            .contains("bad length"));
        assert!(CommError::EndpointNotFound("svc".into())
            .to_string()
            .contains("svc"));
        assert!(CommError::AlreadyRegistered("svc".into())
            .to_string()
            .contains("svc"));
    }
}
