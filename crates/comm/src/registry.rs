//! Endpoint registry: where services publish themselves.
//!
//! The third component of the paper's bootstrap time is *publish* — the time a freshly
//! started service instance needs to make its endpoint known so that client tasks can
//! find it. In this reproduction the [`EndpointRegistry`] plays that role: services
//! register a [`ReqRepHandle`] under their service name together with metadata (model
//! name, node, GPUs); clients look the handle up (optionally blocking until it appears)
//! and connect to it over a [`crate::link::Link`] appropriate to their locality.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::CommError;
use crate::reqrep::ReqRepHandle;

/// A registered endpoint: connection handle plus descriptive metadata.
#[derive(Debug, Clone)]
pub struct EndpointEntry {
    /// Registered name (usually the service id).
    pub name: String,
    /// Connection handle.
    pub handle: ReqRepHandle,
    /// Free-form metadata (model name, node name, platform, ...).
    pub metadata: BTreeMap<String, String>,
}

#[derive(Default)]
struct RegistryState {
    entries: BTreeMap<String, EndpointEntry>,
}

/// Thread-safe endpoint registry with blocking lookup.
#[derive(Default)]
pub struct EndpointRegistry {
    state: Mutex<RegistryState>,
    cond: Condvar,
}

impl std::fmt::Debug for EndpointRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EndpointRegistry")
            .field("len", &self.len())
            .finish()
    }
}

impl EndpointRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an endpoint. Fails if the name is already taken.
    pub fn register(
        &self,
        name: impl Into<String>,
        handle: ReqRepHandle,
        metadata: BTreeMap<String, String>,
    ) -> Result<(), CommError> {
        let name = name.into();
        let mut st = self.state.lock();
        if st.entries.contains_key(&name) {
            return Err(CommError::AlreadyRegistered(name));
        }
        st.entries.insert(
            name.clone(),
            EndpointEntry {
                name,
                handle,
                metadata,
            },
        );
        self.cond.notify_all();
        Ok(())
    }

    /// Remove an endpoint. Returns the removed entry if it existed.
    pub fn unregister(&self, name: &str) -> Option<EndpointEntry> {
        let mut st = self.state.lock();
        let removed = st.entries.remove(name);
        if removed.is_some() {
            self.cond.notify_all();
        }
        removed
    }

    /// Look up an endpoint without blocking.
    pub fn lookup(&self, name: &str) -> Option<EndpointEntry> {
        self.state.lock().entries.get(name).cloned()
    }

    /// Block until the endpoint appears or `timeout` (real time) elapses.
    pub fn wait_for(&self, name: &str, timeout: Duration) -> Result<EndpointEntry, CommError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(entry) = st.entries.get(name) {
                return Ok(entry.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::EndpointNotFound(name.to_string()));
            }
            if self.cond.wait_until(&mut st, deadline).timed_out() && !st.entries.contains_key(name)
            {
                return Err(CommError::EndpointNotFound(name.to_string()));
            }
        }
    }

    /// Names of all registered endpoints.
    pub fn names(&self) -> Vec<String> {
        self.state.lock().entries.keys().cloned().collect()
    }

    /// All entries whose metadata key `key` equals `value`.
    pub fn find_by_metadata(&self, key: &str, value: &str) -> Vec<EndpointEntry> {
        self.state
            .lock()
            .entries
            .values()
            .filter(|e| e.metadata.get(key).map(String::as_str) == Some(value))
            .cloned()
            .collect()
    }

    /// Number of registered endpoints.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// True if no endpoint is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use crate::message::Message;
    use crate::reqrep::ReqRepServer;
    use hpcml_sim::clock::ClockSpec;
    use std::sync::Arc;
    use std::thread;

    fn meta(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn register_lookup_unregister() {
        let reg = EndpointRegistry::new();
        let server = ReqRepServer::new("svc.a");
        assert!(reg.is_empty());
        reg.register("svc.a", server.handle(), meta(&[("model", "llama-8b")]))
            .unwrap();
        assert_eq!(reg.len(), 1);
        let entry = reg.lookup("svc.a").unwrap();
        assert_eq!(entry.metadata["model"], "llama-8b");
        assert_eq!(reg.names(), vec!["svc.a".to_string()]);
        assert!(reg.lookup("svc.b").is_none());
        let removed = reg.unregister("svc.a").unwrap();
        assert_eq!(removed.name, "svc.a");
        assert!(reg.unregister("svc.a").is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let reg = EndpointRegistry::new();
        let server = ReqRepServer::new("svc.dup");
        reg.register("svc.dup", server.handle(), BTreeMap::new())
            .unwrap();
        let err = reg
            .register("svc.dup", server.handle(), BTreeMap::new())
            .unwrap_err();
        assert!(matches!(err, CommError::AlreadyRegistered(_)));
    }

    #[test]
    fn wait_for_blocks_until_registration() {
        let reg = Arc::new(EndpointRegistry::new());
        let reg2 = Arc::clone(&reg);
        let waiter = thread::spawn(move || reg2.wait_for("svc.late", Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        let server = ReqRepServer::new("svc.late");
        reg.register("svc.late", server.handle(), BTreeMap::new())
            .unwrap();
        let entry = waiter.join().unwrap().unwrap();
        assert_eq!(entry.name, "svc.late");
    }

    #[test]
    fn wait_for_times_out() {
        let reg = EndpointRegistry::new();
        let err = reg
            .wait_for("svc.never", Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, CommError::EndpointNotFound(_)));
    }

    #[test]
    fn find_by_metadata_filters() {
        let reg = EndpointRegistry::new();
        let s1 = ReqRepServer::new("svc.1");
        let s2 = ReqRepServer::new("svc.2");
        let s3 = ReqRepServer::new("svc.3");
        reg.register("svc.1", s1.handle(), meta(&[("model", "llama-8b")]))
            .unwrap();
        reg.register("svc.2", s2.handle(), meta(&[("model", "noop")]))
            .unwrap();
        reg.register("svc.3", s3.handle(), meta(&[("model", "llama-8b")]))
            .unwrap();
        let llamas = reg.find_by_metadata("model", "llama-8b");
        assert_eq!(llamas.len(), 2);
        assert!(reg.find_by_metadata("model", "mistral").is_empty());
    }

    #[test]
    fn looked_up_handle_is_usable() {
        let reg = EndpointRegistry::new();
        let server = ReqRepServer::new("svc.echo");
        reg.register("svc.echo", server.handle(), BTreeMap::new())
            .unwrap();
        let entry = reg.lookup("svc.echo").unwrap();
        let clock = ClockSpec::scaled(100_000.0).build();
        let client = entry.handle.connect(Link::instant(clock));
        let t = thread::spawn(move || {
            let (msg, r) = server.recv_timeout(Duration::from_secs(2)).unwrap();
            r.reply(Message::new(msg.topic, "pong")).unwrap();
        });
        let reply = client.request(Message::new("svc.echo", "ping")).unwrap();
        assert_eq!(reply.kind, "pong");
        t.join().unwrap();
    }
}
