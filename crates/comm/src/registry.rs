//! Endpoint registry: where services publish themselves.
//!
//! The third component of the paper's bootstrap time is *publish* — the time a freshly
//! started service instance needs to make its endpoint known so that client tasks can
//! find it. In this reproduction the [`EndpointRegistry`] plays that role: services
//! register a [`ReqRepHandle`] under their service name together with metadata (model
//! name, node, GPUs); clients look the handle up (optionally blocking until it appears)
//! and connect to it over a [`crate::link::Link`] appropriate to their locality.
//!
//! # Sharded, read-mostly design
//!
//! The registry is lookup-heavy: every client task resolves its service endpoint, but
//! registrations happen only when instances start or stop. Names are striped over
//! independent shards by hash; each shard keeps its entries behind an
//! `RwLock<Arc<BTreeMap>>` **snapshot** — a reader takes the lock just long enough to
//! clone the `Arc` (no contention with other readers, and writers hold it only for a
//! pointer swap), then walks the snapshot entirely lock-free. Writers copy the map,
//! mutate the copy, and publish it as a fresh snapshot; registration churn on one
//! shard never slows lookups on another.
//!
//! Blocking [`EndpointRegistry::wait_for`] uses a per-shard version counter under a
//! mutex with a condvar: writers bump the version after publishing a new snapshot and
//! notify, waiters re-check the snapshot on every bump. Lock order within a shard is
//! always `waiters` mutex → snapshot `RwLock` write, never the reverse.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use crate::error::CommError;
use crate::reqrep::ReqRepHandle;

/// Default number of name shards.
const DEFAULT_SHARDS: usize = 8;

/// A registered endpoint: connection handle plus descriptive metadata.
#[derive(Debug, Clone)]
pub struct EndpointEntry {
    /// Registered name (usually the service id).
    pub name: String,
    /// Connection handle.
    pub handle: ReqRepHandle,
    /// Free-form metadata (model name, node name, platform, ...).
    pub metadata: BTreeMap<String, String>,
}

type Snapshot = Arc<BTreeMap<String, EndpointEntry>>;

struct Shard {
    /// Published snapshot; readers clone the Arc and walk it lock-free.
    snapshot: RwLock<Snapshot>,
    /// Version counter bumped on every publish; guards the condvar for waiters.
    version: Mutex<u64>,
    cond: Condvar,
}

impl Default for Shard {
    fn default() -> Self {
        Shard {
            snapshot: RwLock::new(Arc::new(BTreeMap::new())),
            version: Mutex::new(0),
            cond: Condvar::new(),
        }
    }
}

impl Shard {
    fn read(&self) -> Snapshot {
        Arc::clone(&self.snapshot.read())
    }

    /// Copy-on-write mutation: `f` edits a private copy of the map; a changed copy is
    /// published as the new snapshot and waiters are notified. Returns `f`'s payload.
    fn mutate<R>(&self, f: impl FnOnce(&mut BTreeMap<String, EndpointEntry>) -> (bool, R)) -> R {
        // Serialise writers on the version mutex (lock order: waiters → snapshot).
        let mut version = self.version.lock();
        let mut copy = (**self.snapshot.read()).clone();
        let (changed, result) = f(&mut copy);
        if changed {
            *self.snapshot.write() = Arc::new(copy);
            *version += 1;
            self.cond.notify_all();
        }
        result
    }
}

/// Thread-safe, sharded endpoint registry with blocking lookup.
pub struct EndpointRegistry {
    shards: Vec<Shard>,
}

impl Default for EndpointRegistry {
    fn default() -> Self {
        EndpointRegistry::with_shards(DEFAULT_SHARDS)
    }
}

impl std::fmt::Debug for EndpointRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EndpointRegistry")
            .field("len", &self.len())
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// FNV-1a name hash for shard selection.
fn shard_hash(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl EndpointRegistry {
    /// Create an empty registry with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty registry with an explicit shard count (min 1).
    pub fn with_shards(shards: usize) -> Self {
        EndpointRegistry {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
        }
    }

    /// Number of name shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, name: &str) -> &Shard {
        &self.shards[(shard_hash(name) % self.shards.len() as u64) as usize]
    }

    /// Register an endpoint. Fails if the name is already taken.
    pub fn register(
        &self,
        name: impl Into<String>,
        handle: ReqRepHandle,
        metadata: BTreeMap<String, String>,
    ) -> Result<(), CommError> {
        let name = name.into();
        self.shard_for(&name).mutate(|entries| {
            if entries.contains_key(&name) {
                return (false, Err(CommError::AlreadyRegistered(name.clone())));
            }
            entries.insert(
                name.clone(),
                EndpointEntry {
                    name: name.clone(),
                    handle,
                    metadata,
                },
            );
            (true, Ok(()))
        })
    }

    /// Remove an endpoint. Returns the removed entry if it existed.
    pub fn unregister(&self, name: &str) -> Option<EndpointEntry> {
        self.shard_for(name).mutate(|entries| {
            let removed = entries.remove(name);
            (removed.is_some(), removed)
        })
    }

    /// Look up an endpoint without blocking. Snapshot read: never contends with
    /// other readers, and with writers only for the duration of an `Arc` clone.
    pub fn lookup(&self, name: &str) -> Option<EndpointEntry> {
        self.shard_for(name).read().get(name).cloned()
    }

    /// Block until the endpoint appears or `timeout` (real time) elapses.
    pub fn wait_for(&self, name: &str, timeout: Duration) -> Result<EndpointEntry, CommError> {
        let deadline = Instant::now() + timeout;
        let shard = self.shard_for(name);
        loop {
            // Check the current snapshot before touching the waiter mutex.
            if let Some(entry) = shard.read().get(name) {
                return Ok(entry.clone());
            }
            let mut version = shard.version.lock();
            // Re-check under the version lock: a writer may have published between
            // the snapshot read and the lock acquisition.
            if let Some(entry) = shard.read().get(name) {
                return Ok(entry.clone());
            }
            if Instant::now() >= deadline {
                return Err(CommError::EndpointNotFound(name.to_string()));
            }
            if shard.cond.wait_until(&mut version, deadline).timed_out() {
                drop(version);
                return match shard.read().get(name) {
                    Some(entry) => Ok(entry.clone()),
                    None => Err(CommError::EndpointNotFound(name.to_string())),
                };
            }
        }
    }

    /// Names of all registered endpoints (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        out.sort();
        out
    }

    /// All entries whose metadata key `key` equals `value`.
    pub fn find_by_metadata(&self, key: &str, value: &str) -> Vec<EndpointEntry> {
        let mut out: Vec<EndpointEntry> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .values()
                    .filter(|e| e.metadata.get(key).map(String::as_str) == Some(value))
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of registered endpoints.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if no endpoint is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use crate::message::Message;
    use crate::reqrep::ReqRepServer;
    use hpcml_sim::clock::ClockSpec;
    use std::thread;

    fn meta(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn register_lookup_unregister() {
        let reg = EndpointRegistry::new();
        let server = ReqRepServer::new("svc.a");
        assert!(reg.is_empty());
        reg.register("svc.a", server.handle(), meta(&[("model", "llama-8b")]))
            .unwrap();
        assert_eq!(reg.len(), 1);
        let entry = reg.lookup("svc.a").unwrap();
        assert_eq!(entry.metadata["model"], "llama-8b");
        assert_eq!(reg.names(), vec!["svc.a".to_string()]);
        assert!(reg.lookup("svc.b").is_none());
        let removed = reg.unregister("svc.a").unwrap();
        assert_eq!(removed.name, "svc.a");
        assert!(reg.unregister("svc.a").is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn duplicate_registration_rejected() {
        let reg = EndpointRegistry::new();
        let server = ReqRepServer::new("svc.dup");
        reg.register("svc.dup", server.handle(), BTreeMap::new())
            .unwrap();
        let err = reg
            .register("svc.dup", server.handle(), BTreeMap::new())
            .unwrap_err();
        assert!(matches!(err, CommError::AlreadyRegistered(_)));
        assert_eq!(reg.len(), 1, "failed insert publishes nothing");
    }

    #[test]
    fn wait_for_blocks_until_registration() {
        let reg = Arc::new(EndpointRegistry::new());
        let reg2 = Arc::clone(&reg);
        let waiter = thread::spawn(move || reg2.wait_for("svc.late", Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        let server = ReqRepServer::new("svc.late");
        reg.register("svc.late", server.handle(), BTreeMap::new())
            .unwrap();
        let entry = waiter.join().unwrap().unwrap();
        assert_eq!(entry.name, "svc.late");
    }

    #[test]
    fn wait_for_times_out() {
        let reg = EndpointRegistry::new();
        let err = reg
            .wait_for("svc.never", Duration::from_millis(20))
            .unwrap_err();
        assert!(matches!(err, CommError::EndpointNotFound(_)));
    }

    #[test]
    fn find_by_metadata_filters() {
        let reg = EndpointRegistry::new();
        let s1 = ReqRepServer::new("svc.1");
        let s2 = ReqRepServer::new("svc.2");
        let s3 = ReqRepServer::new("svc.3");
        reg.register("svc.1", s1.handle(), meta(&[("model", "llama-8b")]))
            .unwrap();
        reg.register("svc.2", s2.handle(), meta(&[("model", "noop")]))
            .unwrap();
        reg.register("svc.3", s3.handle(), meta(&[("model", "llama-8b")]))
            .unwrap();
        let llamas = reg.find_by_metadata("model", "llama-8b");
        assert_eq!(llamas.len(), 2);
        assert!(reg.find_by_metadata("model", "mistral").is_empty());
    }

    #[test]
    fn looked_up_handle_is_usable() {
        let reg = EndpointRegistry::new();
        let server = ReqRepServer::new("svc.echo");
        reg.register("svc.echo", server.handle(), BTreeMap::new())
            .unwrap();
        let entry = reg.lookup("svc.echo").unwrap();
        let clock = ClockSpec::scaled(100_000.0).build();
        let client = entry.handle.connect(Link::instant(clock));
        let t = thread::spawn(move || {
            let (msg, r) = server.recv_timeout(Duration::from_secs(2)).unwrap();
            r.reply(Message::new(msg.topic, "pong")).unwrap();
        });
        let reply = client.request(Message::new("svc.echo", "ping")).unwrap();
        assert_eq!(reply.kind, "pong");
        t.join().unwrap();
    }

    #[test]
    fn sharded_views_agree_with_single_shard() {
        let sharded = EndpointRegistry::with_shards(8);
        let single = EndpointRegistry::with_shards(1);
        assert_eq!(sharded.shard_count(), 8);
        for reg in [&sharded, &single] {
            for i in 0..32 {
                let name = format!("svc.{i:02}");
                let server = ReqRepServer::new(name.clone());
                let group = if i % 2 == 0 { "even" } else { "odd" };
                reg.register(name, server.handle(), meta(&[("group", group)]))
                    .unwrap();
            }
        }
        assert_eq!(sharded.names(), single.names(), "sorted global view");
        assert_eq!(sharded.len(), 32);
        let evens = sharded.find_by_metadata("group", "even");
        assert_eq!(evens.len(), 16);
        let names: Vec<&str> = evens.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "metadata scan output is name-sorted");
        for i in (0..32).step_by(3) {
            assert!(sharded.unregister(&format!("svc.{i:02}")).is_some());
        }
        assert_eq!(sharded.len(), 32 - 11);
        assert!(!format!("{sharded:?}").is_empty());
    }

    #[test]
    fn lookups_race_registration_churn() {
        let reg = Arc::new(EndpointRegistry::with_shards(4));
        let stable = ReqRepServer::new("svc.stable");
        reg.register("svc.stable", stable.handle(), BTreeMap::new())
            .unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let churn = {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let name = format!("svc.churn.{}", i % 16);
                    let server = ReqRepServer::new(name.clone());
                    let _ = reg.register(name.clone(), server.handle(), BTreeMap::new());
                    let _ = reg.unregister(&name);
                    i += 1;
                }
            })
        };
        for _ in 0..2_000 {
            assert!(
                reg.lookup("svc.stable").is_some(),
                "stable entry visible through every snapshot"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        churn.join().unwrap();
        assert!(reg.lookup("svc.stable").is_some());
    }
}
