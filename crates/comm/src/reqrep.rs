//! Request/reply endpoints (ZeroMQ REQ/REP analogue).
//!
//! A [`ReqRepServer`] owns the receive side of an endpoint; any number of
//! [`ReqRepClient`]s can send requests to it and block for the reply. Each request
//! carries a one-shot reply channel (ZeroMQ would route the reply frame back over the
//! socket). The client optionally traverses a [`Link`] before the request is delivered
//! and before the reply is returned, which is how local vs remote deployments differ.
//!
//! # Batched requests
//!
//! [`ReqRepClient::request_batch`] ships K requests over **one** link traversal
//! (the coalescing rule — see [`Link::traverse_batch`]): a single one-way latency
//! sample plus the bandwidth term for the summed encoded bytes, and the same on the
//! way back for the replies. Replies come back in request order. The server sees K
//! independent requests — [`ReqRepServer::recv_batch`] on the other side completes
//! the batched path end-to-end.

use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};

use crate::error::CommError;
use crate::link::Link;
use crate::message::Message;

/// Header stamped on requests with the virtual time at which the request reached the
/// server's queue (after link traversal). Servers use it to compute queue time.
pub const HDR_ENQUEUED_AT: &str = "comm.enqueued_at";

struct Request {
    msg: Message,
    reply_tx: Sender<Message>,
}

/// Server side of a request/reply endpoint.
pub struct ReqRepServer {
    name: String,
    rx: Receiver<Request>,
    tx: Sender<Request>,
}

impl std::fmt::Debug for ReqRepServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReqRepServer")
            .field("name", &self.name)
            .field("queued", &self.rx.len())
            .finish()
    }
}

/// Handle used to reply to one received request.
#[derive(Debug)]
pub struct Responder {
    reply_tx: Sender<Message>,
}

impl Responder {
    /// Send the reply. Returns an error if the requesting client has gone away.
    pub fn reply(self, msg: Message) -> Result<(), CommError> {
        self.reply_tx.send(msg).map_err(|_| CommError::Disconnected)
    }
}

/// A cheap, cloneable connection point for a [`ReqRepServer`], suitable for storing in
/// an endpoint registry. Combine it with a [`Link`] to obtain a [`ReqRepClient`].
#[derive(Clone)]
pub struct ReqRepHandle {
    endpoint: String,
    tx: Sender<Request>,
}

impl std::fmt::Debug for ReqRepHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReqRepHandle")
            .field("endpoint", &self.endpoint)
            .finish()
    }
}

impl ReqRepHandle {
    /// Name of the endpoint.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// Connect to the endpoint over the given link.
    pub fn connect(&self, link: Link) -> ReqRepClient {
        ReqRepClient {
            endpoint: self.endpoint.clone(),
            tx: self.tx.clone(),
            link,
        }
    }
}

impl ReqRepServer {
    /// Create a new endpoint with an unbounded request queue.
    pub fn new(name: impl Into<String>) -> Self {
        let (tx, rx) = unbounded();
        ReqRepServer {
            name: name.into(),
            rx,
            tx,
        }
    }

    /// Endpoint name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of requests currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.rx.len()
    }

    /// Create a client handle connected to this endpoint over the given link.
    pub fn client(&self, link: Link) -> ReqRepClient {
        ReqRepClient {
            endpoint: self.name.clone(),
            tx: self.tx.clone(),
            link,
        }
    }

    /// A registrable connection point for this endpoint.
    pub fn handle(&self) -> ReqRepHandle {
        ReqRepHandle {
            endpoint: self.name.clone(),
            tx: self.tx.clone(),
        }
    }

    /// Block until a request arrives, or until `timeout` elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<(Message, Responder), CommError> {
        match self.rx.recv_timeout(timeout) {
            Ok(req) => Ok((
                req.msg,
                Responder {
                    reply_tx: req.reply_tx,
                },
            )),
            Err(RecvTimeoutError::Timeout) => Err(CommError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(CommError::Disconnected),
        }
    }

    /// Drain up to `max` queued requests in one call: block up to `timeout` for the
    /// first request, then take whatever else is already waiting without blocking
    /// again. Batch-oriented servers (the serving front-end's admission loop) use this
    /// to absorb request bursts in one wake-up instead of one receive per request.
    pub fn recv_batch(
        &self,
        max: usize,
        timeout: Duration,
    ) -> Result<Vec<(Message, Responder)>, CommError> {
        let first = self.recv_timeout(timeout)?;
        let mut out = Vec::with_capacity(max.clamp(1, 64));
        out.push(first);
        while out.len() < max {
            match self.try_recv() {
                Some(pair) => out.push(pair),
                None => break,
            }
        }
        Ok(out)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<(Message, Responder)> {
        self.rx.try_recv().ok().map(|req| {
            (
                req.msg,
                Responder {
                    reply_tx: req.reply_tx,
                },
            )
        })
    }
}

/// Client side of a request/reply endpoint.
#[derive(Clone)]
pub struct ReqRepClient {
    endpoint: String,
    tx: Sender<Request>,
    link: Link,
}

impl std::fmt::Debug for ReqRepClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReqRepClient")
            .field("endpoint", &self.endpoint)
            .field("link", &self.link)
            .finish()
    }
}

impl ReqRepClient {
    /// Name of the endpoint this client talks to.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The link this client traverses.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Send `msg` and block until the reply arrives (or the server goes away).
    ///
    /// The request traverses the link (injecting the sampled one-way latency), is
    /// stamped with its arrival time, and queues at the server; the reply traverses the
    /// link again on the way back. The total virtual time spent in this call is the
    /// response time (RT) as defined in the paper.
    pub fn request(&self, msg: Message) -> Result<Message, CommError> {
        self.request_timeout(msg, Duration::from_secs(3600))
    }

    /// [`ReqRepClient::request`] with an explicit real-time timeout on the reply wait.
    pub fn request_timeout(&self, msg: Message, timeout: Duration) -> Result<Message, CommError> {
        let payload_len = msg.encoded_len();
        // Outbound hop.
        self.link.traverse(payload_len);
        let enqueued_at = self.link.clock().now().as_secs_f64();
        let msg = msg.with_f64_header(HDR_ENQUEUED_AT, enqueued_at);
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Request { msg, reply_tx })
            .map_err(|_| CommError::Disconnected)?;
        let reply = match reply_rx.recv_timeout(timeout) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout),
            Err(RecvTimeoutError::Disconnected) => return Err(CommError::Disconnected),
        };
        // Return hop.
        self.link.traverse(reply.encoded_len());
        Ok(reply)
    }

    /// Send a batch of requests over one link traversal and block for all replies.
    ///
    /// The batch pays one outbound latency sample carrying the summed encoded bytes,
    /// queues at the server as individual requests (each stamped with the shared
    /// arrival time), and the replies pay one return traversal of their summed bytes.
    /// Replies are returned in request order. An empty batch is free and returns
    /// an empty vec.
    pub fn request_batch(
        &self,
        msgs: Vec<Message>,
        timeout: Duration,
    ) -> Result<Vec<Message>, CommError> {
        if msgs.is_empty() {
            return Ok(Vec::new());
        }
        let count = msgs.len();
        let total_bytes: usize = msgs.iter().map(Message::encoded_len).sum();
        // One coalesced outbound hop for the whole batch.
        self.link.traverse_batch(count, total_bytes);
        let enqueued_at = self.link.clock().now().as_secs_f64();
        let mut reply_rxs = Vec::with_capacity(count);
        for msg in msgs {
            let msg = msg.with_f64_header(HDR_ENQUEUED_AT, enqueued_at);
            let (reply_tx, reply_rx) = bounded(1);
            self.tx
                .send(Request { msg, reply_tx })
                .map_err(|_| CommError::Disconnected)?;
            reply_rxs.push(reply_rx);
        }
        // Collect in request order; the timeout bounds the whole batch, not each reply.
        let deadline = std::time::Instant::now() + timeout;
        let mut replies = Vec::with_capacity(count);
        for rx in reply_rxs {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            match rx.recv_timeout(left) {
                Ok(m) => replies.push(m),
                Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout),
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Disconnected),
            }
        }
        // One coalesced return hop for all replies.
        let reply_bytes: usize = replies.iter().map(Message::encoded_len).sum();
        self.link.traverse_batch(count, reply_bytes);
        Ok(replies)
    }

    /// Fire-and-forget send (no reply expected). Used for control messages. A bounded
    /// endpoint at capacity returns [`CommError::Full`].
    pub fn send(&self, msg: Message) -> Result<(), CommError> {
        self.link.traverse(msg.encoded_len());
        let enqueued_at = self.link.clock().now().as_secs_f64();
        let msg = msg.with_f64_header(HDR_ENQUEUED_AT, enqueued_at);
        let (reply_tx, _reply_rx) = bounded(1);
        match self.tx.try_send(Request { msg, reply_tx }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Disconnected(_)) => Err(CommError::Disconnected),
            Err(TrySendError::Full(_)) => Err(CommError::Full),
        }
    }

    /// Fire-and-forget a batch of control messages over one coalesced link traversal.
    pub fn send_batch(&self, msgs: Vec<Message>) -> Result<(), CommError> {
        if msgs.is_empty() {
            return Ok(());
        }
        let count = msgs.len();
        let total_bytes: usize = msgs.iter().map(Message::encoded_len).sum();
        self.link.traverse_batch(count, total_bytes);
        let enqueued_at = self.link.clock().now().as_secs_f64();
        for msg in msgs {
            let msg = msg.with_f64_header(HDR_ENQUEUED_AT, enqueued_at);
            let (reply_tx, _reply_rx) = bounded(1);
            match self.tx.try_send(Request { msg, reply_tx }) {
                Ok(()) => {}
                Err(TrySendError::Disconnected(_)) => return Err(CommError::Disconnected),
                Err(TrySendError::Full(_)) => return Err(CommError::Full),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcml_platform::network::LatencyProfile;
    use hpcml_sim::clock::ClockSpec;
    use std::sync::Arc;
    use std::thread;

    fn instant_link() -> Link {
        Link::instant(ClockSpec::scaled(100_000.0).build())
    }

    #[test]
    fn request_reply_roundtrip() {
        let server = ReqRepServer::new("svc.echo");
        let client = server.client(instant_link());
        let handle = thread::spawn(move || {
            let (msg, responder) = server.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(msg.kind, "inference.request");
            assert!(msg.f64_header(HDR_ENQUEUED_AT).is_some());
            responder
                .reply(Message::new(msg.topic.clone(), "inference.reply").with_text("ok"))
                .unwrap();
        });
        let reply = client
            .request(Message::new("svc.echo", "inference.request").with_text("hello"))
            .unwrap();
        assert_eq!(reply.kind, "inference.reply");
        assert_eq!(reply.text(), Some("ok"));
        handle.join().unwrap();
    }

    #[test]
    fn many_clients_one_server() {
        let server = ReqRepServer::new("svc.multi");
        let clients: Vec<ReqRepClient> = (0..8).map(|_| server.client(instant_link())).collect();
        let server_thread = thread::spawn(move || {
            for _ in 0..8 {
                let (msg, responder) = server.recv_timeout(Duration::from_secs(5)).unwrap();
                let n: u64 = msg.text().unwrap().parse().unwrap();
                responder
                    .reply(Message::new("svc.multi", "reply").with_text(&(n * 2).to_string()))
                    .unwrap();
            }
        });
        let mut handles = Vec::new();
        for (i, c) in clients.into_iter().enumerate() {
            handles.push(thread::spawn(move || {
                let reply = c
                    .request(Message::new("svc.multi", "req").with_text(&i.to_string()))
                    .unwrap();
                let v: u64 = reply.text().unwrap().parse().unwrap();
                assert_eq!(v, i as u64 * 2);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server_thread.join().unwrap();
    }

    #[test]
    fn recv_times_out_when_idle() {
        let server = ReqRepServer::new("svc.idle");
        assert_eq!(
            server.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            CommError::Timeout
        );
        assert!(server.try_recv().is_none());
        assert_eq!(server.queue_len(), 0);
        assert_eq!(server.name(), "svc.idle");
    }

    #[test]
    fn recv_batch_drains_a_burst_in_one_call() {
        let server = ReqRepServer::new("svc.batch");
        let clients: Vec<ReqRepClient> = (0..5).map(|_| server.client(instant_link())).collect();
        let handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                thread::spawn(move || {
                    c.request(Message::new("svc.batch", "req").with_text(&i.to_string()))
                        .unwrap()
                })
            })
            .collect();
        let mut got = 0;
        while got < 5 {
            let batch = server.recv_batch(3, Duration::from_secs(5)).unwrap();
            assert!(!batch.is_empty() && batch.len() <= 3, "len {}", batch.len());
            got += batch.len();
            for (msg, r) in batch {
                r.reply(Message::new(msg.topic.clone(), "reply")).unwrap();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        // Empty queue: recv_batch times out like recv_timeout.
        assert_eq!(
            server.recv_batch(3, Duration::from_millis(5)).unwrap_err(),
            CommError::Timeout
        );
    }

    #[test]
    fn request_fails_when_server_dropped() {
        let server = ReqRepServer::new("svc.gone");
        let client = server.client(instant_link());
        drop(server);
        let err = client.request(Message::new("svc.gone", "req")).unwrap_err();
        assert_eq!(err, CommError::Disconnected);
    }

    #[test]
    fn request_timeout_when_server_never_replies() {
        let server = ReqRepServer::new("svc.slow");
        let client = server.client(instant_link());
        // Server never replies: hold the request but do not respond.
        let err = client
            .request_timeout(Message::new("svc.slow", "req"), Duration::from_millis(20))
            .unwrap_err();
        assert_eq!(err, CommError::Timeout);
        assert_eq!(server.queue_len(), 1);
    }

    #[test]
    fn latency_link_adds_round_trip_time() {
        let clock = ClockSpec::scaled(10_000.0).build();
        let link = Link::new(
            "lat",
            Arc::clone(&clock),
            LatencyProfile::normal_ms(10.0, 0.0),
            5,
        );
        let server = ReqRepServer::new("svc.lat");
        let client = server.client(link);
        let handle = thread::spawn(move || {
            let (msg, r) = server.recv_timeout(Duration::from_secs(10)).unwrap();
            r.reply(Message::new(msg.topic, "reply")).unwrap();
        });
        let t0 = clock.now();
        let _ = client.request(Message::new("svc.lat", "req")).unwrap();
        let rt = clock.now().since(t0).as_secs_f64();
        // Two hops of 10 ms each => at least ~20 ms of virtual time.
        assert!(
            rt >= 0.015,
            "round trip {rt} should include both link traversals"
        );
        handle.join().unwrap();
    }

    #[test]
    fn request_batch_pays_one_round_trip_and_preserves_order() {
        // Real-time scale: a scaled clock would amplify thread-scheduling time into
        // virtual seconds and swamp the 10 ms hops this test prices.
        let clock = ClockSpec::scaled(1.0).build();
        // Deterministic pricing: zero sigma, no bandwidth term.
        let link = Link::new(
            "batch",
            Arc::clone(&clock),
            LatencyProfile::normal_ms(10.0, 0.0),
            7,
        );
        let server = ReqRepServer::new("svc.reqbatch");
        let client = server.client(link);
        let handle = thread::spawn(move || {
            let mut served = 0;
            while served < 8 {
                let batch = server.recv_batch(8, Duration::from_secs(10)).unwrap();
                for (msg, r) in batch {
                    served += 1;
                    let n: u64 = msg.text().unwrap().parse().unwrap();
                    assert!(msg.f64_header(HDR_ENQUEUED_AT).is_some());
                    r.reply(Message::new("svc.reqbatch", "reply").with_text(&(n * 3).to_string()))
                        .unwrap();
                }
            }
        });
        let reqs: Vec<Message> = (0..8)
            .map(|i| Message::new("svc.reqbatch", "req").with_text(&i.to_string()))
            .collect();
        let t0 = clock.now();
        let replies = client.request_batch(reqs, Duration::from_secs(10)).unwrap();
        let rt = clock.now().since(t0).as_secs_f64();
        handle.join().unwrap();
        let vals: Vec<u64> = replies
            .iter()
            .map(|m| m.text().unwrap().parse().unwrap())
            .collect();
        assert_eq!(
            vals,
            (0..8).map(|i| i * 3).collect::<Vec<u64>>(),
            "replies in request order"
        );
        // One 10 ms hop out + one back, NOT 8 of each. Allow slack for wall-clock
        // scheduling between the virtual-time reads.
        assert!(
            rt < 0.08,
            "batched round trip {rt} must not pay per-request latency (8x would be 0.16)"
        );
        assert!(rt >= 0.019, "round trip {rt} includes both hops");
        assert!(client
            .request_batch(Vec::new(), Duration::from_secs(1))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn send_batch_delivers_all_control_messages() {
        let server = ReqRepServer::new("svc.ctrlbatch");
        let client = server.client(instant_link());
        let msgs: Vec<Message> = (0..4)
            .map(|i| Message::new("svc.ctrlbatch", "control.cmd").with_text(&i.to_string()))
            .collect();
        client.send_batch(msgs).unwrap();
        client.send_batch(Vec::new()).unwrap();
        assert_eq!(server.queue_len(), 4);
        let batch = server.recv_batch(8, Duration::from_secs(1)).unwrap();
        let texts: Vec<&str> = batch.iter().map(|(m, _)| m.text().unwrap()).collect();
        assert_eq!(texts, ["0", "1", "2", "3"], "FIFO through the batch path");
    }

    #[test]
    fn fire_and_forget_send() {
        let server = ReqRepServer::new("svc.ctrl");
        let client = server.client(instant_link());
        client
            .send(Message::new("svc.ctrl", "control.stop"))
            .unwrap();
        let (msg, _r) = server.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.kind, "control.stop");
        assert_eq!(client.endpoint(), "svc.ctrl");
    }
}
