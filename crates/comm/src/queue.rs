//! Work queues (ZeroMQ PUSH/PULL analogue).
//!
//! RADICAL-Pilot's components are connected by queues: the scheduler's input queue, the
//! executor's queue, the stagers' queues (paper Fig. 2). A [`WorkQueue`] is a typed
//! multi-producer/multi-consumer queue with optional bounded capacity, shared by the
//! runtime components in this reproduction.

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::time::Duration;

use crate::error::CommError;

/// Sending half of a [`WorkQueue`].
pub struct WorkQueueSender<T> {
    tx: Sender<T>,
    name: String,
}

impl<T> Clone for WorkQueueSender<T> {
    fn clone(&self) -> Self {
        WorkQueueSender {
            tx: self.tx.clone(),
            name: self.name.clone(),
        }
    }
}

impl<T> std::fmt::Debug for WorkQueueSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkQueueSender")
            .field("name", &self.name)
            .finish()
    }
}

impl<T> WorkQueueSender<T> {
    /// Enqueue an item, blocking if the queue is bounded and full.
    pub fn push(&self, item: T) -> Result<(), CommError> {
        self.tx.send(item).map_err(|_| CommError::Disconnected)
    }

    /// Enqueue an item without blocking.
    pub fn try_push(&self, item: T) -> Result<(), CommError> {
        match self.tx.try_send(item) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(CommError::Timeout),
            Err(TrySendError::Disconnected(_)) => Err(CommError::Disconnected),
        }
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.tx.len()
    }

    /// True if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.tx.is_empty()
    }
}

/// Receiving half of a [`WorkQueue`].
pub struct WorkQueueReceiver<T> {
    rx: Receiver<T>,
    name: String,
}

impl<T> Clone for WorkQueueReceiver<T> {
    fn clone(&self) -> Self {
        WorkQueueReceiver {
            rx: self.rx.clone(),
            name: self.name.clone(),
        }
    }
}

impl<T> std::fmt::Debug for WorkQueueReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkQueueReceiver")
            .field("name", &self.name)
            .field("pending", &self.rx.len())
            .finish()
    }
}

impl<T> WorkQueueReceiver<T> {
    /// Block until an item is available or `timeout` elapses.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, CommError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => CommError::Timeout,
            RecvTimeoutError::Disconnected => CommError::Disconnected,
        })
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        self.rx.try_recv().ok()
    }

    /// Drain everything currently available.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(item) = self.try_pop() {
            out.push(item);
        }
        out
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

/// A named multi-producer/multi-consumer work queue.
pub struct WorkQueue<T> {
    sender: WorkQueueSender<T>,
    receiver: WorkQueueReceiver<T>,
}

impl<T> WorkQueue<T> {
    /// Create an unbounded queue.
    pub fn unbounded(name: impl Into<String>) -> Self {
        let name = name.into();
        let (tx, rx) = unbounded();
        WorkQueue {
            sender: WorkQueueSender {
                tx,
                name: name.clone(),
            },
            receiver: WorkQueueReceiver { rx, name },
        }
    }

    /// Create a bounded queue with the given capacity.
    pub fn bounded(name: impl Into<String>, capacity: usize) -> Self {
        let name = name.into();
        let (tx, rx) = bounded(capacity);
        WorkQueue {
            sender: WorkQueueSender {
                tx,
                name: name.clone(),
            },
            receiver: WorkQueueReceiver { rx, name },
        }
    }

    /// Clone the sending half.
    pub fn sender(&self) -> WorkQueueSender<T> {
        self.sender.clone()
    }

    /// Clone the receiving half.
    pub fn receiver(&self) -> WorkQueueReceiver<T> {
        self.receiver.clone()
    }

    /// Split into its two halves, dropping the queue wrapper.
    pub fn split(self) -> (WorkQueueSender<T>, WorkQueueReceiver<T>) {
        (self.sender, self.receiver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_single_consumer() {
        let q = WorkQueue::unbounded("test");
        let tx = q.sender();
        let rx = q.receiver();
        for i in 0..10 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.len(), 10);
        assert!(!tx.is_empty());
        let got: Vec<i32> = rx.drain();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(rx.is_empty());
    }

    #[test]
    fn bounded_queue_reports_full() {
        let q = WorkQueue::bounded("small", 2);
        let tx = q.sender();
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.try_push(3).unwrap_err(), CommError::Timeout);
        let rx = q.receiver();
        assert_eq!(rx.try_pop(), Some(1));
        tx.try_push(3).unwrap();
        assert_eq!(rx.drain(), vec![2, 3]);
    }

    #[test]
    fn pop_timeout_on_empty_queue() {
        let q: WorkQueue<u32> = WorkQueue::unbounded("empty");
        let rx = q.receiver();
        assert_eq!(
            rx.pop_timeout(Duration::from_millis(5)).unwrap_err(),
            CommError::Timeout
        );
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn disconnected_when_all_senders_dropped() {
        let q: WorkQueue<u32> = WorkQueue::unbounded("dropme");
        let (tx, rx) = q.split();
        drop(tx);
        assert_eq!(
            rx.pop_timeout(Duration::from_millis(5)).unwrap_err(),
            CommError::Disconnected
        );
    }

    #[test]
    fn work_is_distributed_across_consumers() {
        let q = WorkQueue::unbounded("mpmc");
        let tx = q.sender();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = q.receiver();
            handles.push(thread::spawn(move || {
                let mut count = 0;
                while rx.pop_timeout(Duration::from_millis(100)).is_ok() {
                    count += 1;
                }
                count
            }));
        }
        for i in 0..200 {
            tx.push(i).unwrap();
        }
        drop(tx);
        drop(q);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn debug_output_mentions_name() {
        let q: WorkQueue<u8> = WorkQueue::unbounded("sched-input");
        assert!(format!("{:?}", q.sender()).contains("sched-input"));
        assert!(format!("{:?}", q.receiver()).contains("sched-input"));
    }
}
