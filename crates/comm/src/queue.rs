//! Work queues (ZeroMQ PUSH/PULL analogue).
//!
//! RADICAL-Pilot's components are connected by queues: the scheduler's input queue, the
//! executor's queue, the stagers' queues (paper Fig. 2). A [`WorkQueue`] is a typed
//! multi-producer/multi-consumer queue with optional bounded capacity, shared by the
//! runtime components in this reproduction.
//!
//! # Batched transfer
//!
//! The fabric moves items in batches wherever the caller can tolerate it:
//! [`WorkQueueSender::push_batch`] enqueues a whole `Vec` in one call and
//! [`WorkQueueReceiver::recv_batch`] blocks for the first item, then takes whatever
//! else is already waiting (up to `max`) — the same greedy-drain rule as
//! [`crate::reqrep::ReqRepServer::recv_batch`], so a consumer loop amortises its
//! wake-up over every item that arrived while it slept. Order is FIFO per consumer:
//! `recv_batch` never reorders relative to a singleton [`WorkQueueReceiver::pop_timeout`]
//! loop.

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::time::Duration;

use crate::error::CommError;
use crate::metrics::SharedCommSink;

/// Sending half of a [`WorkQueue`].
pub struct WorkQueueSender<T> {
    tx: Sender<T>,
    name: String,
    sink: Option<SharedCommSink>,
}

impl<T> Clone for WorkQueueSender<T> {
    fn clone(&self) -> Self {
        WorkQueueSender {
            tx: self.tx.clone(),
            name: self.name.clone(),
            sink: self.sink.clone(),
        }
    }
}

impl<T> std::fmt::Debug for WorkQueueSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkQueueSender")
            .field("name", &self.name)
            .finish()
    }
}

impl<T> WorkQueueSender<T> {
    /// Attach a metrics sink; every push records `comm.queue.depth` (post-push depth).
    pub fn with_sink(mut self, sink: SharedCommSink) -> Self {
        self.sink = Some(sink);
        self
    }

    fn record_depth(&self) {
        if let Some(sink) = &self.sink {
            sink.record("comm.queue.depth", self.tx.len() as f64);
        }
    }

    /// Enqueue an item, blocking if the queue is bounded and full.
    pub fn push(&self, item: T) -> Result<(), CommError> {
        self.tx.send(item).map_err(|_| CommError::Disconnected)?;
        self.record_depth();
        Ok(())
    }

    /// Enqueue an item without blocking. A bounded queue at capacity returns
    /// [`CommError::Full`] — retry after consumers drain.
    pub fn try_push(&self, item: T) -> Result<(), CommError> {
        match self.tx.try_send(item) {
            Ok(()) => {
                self.record_depth();
                Ok(())
            }
            Err(TrySendError::Full(_)) => Err(CommError::Full),
            Err(TrySendError::Disconnected(_)) => Err(CommError::Disconnected),
        }
    }

    /// Enqueue a whole batch, blocking per item if the queue is bounded. One depth
    /// observation is recorded for the batch.
    pub fn push_batch(&self, items: Vec<T>) -> Result<(), CommError> {
        for item in items {
            self.tx.send(item).map_err(|_| CommError::Disconnected)?;
        }
        self.record_depth();
        Ok(())
    }

    /// Enqueue as much of a batch as fits without blocking. Returns the items that
    /// did **not** fit (empty on full success) or [`CommError::Disconnected`] if the
    /// receiving side is gone.
    pub fn try_push_batch(&self, items: Vec<T>) -> Result<Vec<T>, CommError> {
        let mut iter = items.into_iter();
        let mut rejected = Vec::new();
        for item in iter.by_ref() {
            match self.tx.try_send(item) {
                Ok(()) => {}
                Err(TrySendError::Full(item)) => {
                    rejected.push(item);
                    rejected.extend(iter);
                    break;
                }
                Err(TrySendError::Disconnected(_)) => return Err(CommError::Disconnected),
            }
        }
        self.record_depth();
        Ok(rejected)
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.tx.len()
    }

    /// True if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.tx.is_empty()
    }
}

/// Receiving half of a [`WorkQueue`].
pub struct WorkQueueReceiver<T> {
    rx: Receiver<T>,
    name: String,
}

impl<T> Clone for WorkQueueReceiver<T> {
    fn clone(&self) -> Self {
        WorkQueueReceiver {
            rx: self.rx.clone(),
            name: self.name.clone(),
        }
    }
}

impl<T> std::fmt::Debug for WorkQueueReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkQueueReceiver")
            .field("name", &self.name)
            .field("pending", &self.rx.len())
            .finish()
    }
}

impl<T> WorkQueueReceiver<T> {
    /// Block until an item is available (no timeout). Errors only when every sender
    /// is gone — the shape a dedicated worker loop wants (`while let Ok(item) = rx.pop()`).
    pub fn pop(&self) -> Result<T, CommError> {
        self.rx.recv().map_err(|_| CommError::Disconnected)
    }

    /// Block until an item is available or `timeout` elapses.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, CommError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => CommError::Timeout,
            RecvTimeoutError::Disconnected => CommError::Disconnected,
        })
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        self.rx.try_recv().ok()
    }

    /// Receive up to `max` items in one call: block up to `timeout` for the first,
    /// then take whatever is already waiting. FIFO order relative to singleton pops.
    pub fn recv_batch(&self, max: usize, timeout: Duration) -> Result<Vec<T>, CommError> {
        let first = self.pop_timeout(timeout)?;
        let mut out = Vec::with_capacity(max.clamp(1, 64));
        out.push(first);
        while out.len() < max {
            match self.try_pop() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        Ok(out)
    }

    /// Drain everything currently available.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(item) = self.try_pop() {
            out.push(item);
        }
        out
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

/// A named multi-producer/multi-consumer work queue.
pub struct WorkQueue<T> {
    sender: WorkQueueSender<T>,
    receiver: WorkQueueReceiver<T>,
}

impl<T> WorkQueue<T> {
    /// Create an unbounded queue.
    pub fn unbounded(name: impl Into<String>) -> Self {
        let name = name.into();
        let (tx, rx) = unbounded();
        WorkQueue {
            sender: WorkQueueSender {
                tx,
                name: name.clone(),
                sink: None,
            },
            receiver: WorkQueueReceiver { rx, name },
        }
    }

    /// Create a bounded queue with the given capacity.
    pub fn bounded(name: impl Into<String>, capacity: usize) -> Self {
        let name = name.into();
        let (tx, rx) = bounded(capacity);
        WorkQueue {
            sender: WorkQueueSender {
                tx,
                name: name.clone(),
                sink: None,
            },
            receiver: WorkQueueReceiver { rx, name },
        }
    }

    /// Clone the sending half.
    pub fn sender(&self) -> WorkQueueSender<T> {
        self.sender.clone()
    }

    /// Clone the receiving half.
    pub fn receiver(&self) -> WorkQueueReceiver<T> {
        self.receiver.clone()
    }

    /// Split into its two halves, dropping the queue wrapper.
    pub fn split(self) -> (WorkQueueSender<T>, WorkQueueReceiver<T>) {
        (self.sender, self.receiver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_within_single_consumer() {
        let q = WorkQueue::unbounded("test");
        let tx = q.sender();
        let rx = q.receiver();
        for i in 0..10 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.len(), 10);
        assert!(!tx.is_empty());
        let got: Vec<i32> = rx.drain();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(rx.is_empty());
    }

    #[test]
    fn bounded_queue_reports_full() {
        let q = WorkQueue::bounded("small", 2);
        let tx = q.sender();
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.try_push(3).unwrap_err(), CommError::Full);
        let rx = q.receiver();
        assert_eq!(rx.try_pop(), Some(1));
        tx.try_push(3).unwrap();
        assert_eq!(rx.drain(), vec![2, 3]);
    }

    #[test]
    fn batch_push_and_recv_preserve_fifo() {
        let q = WorkQueue::unbounded("batched");
        let (tx, rx) = q.split();
        tx.push_batch((0..8).collect()).unwrap();
        tx.push(8).unwrap();
        let first = rx.recv_batch(4, Duration::from_millis(50)).unwrap();
        assert_eq!(first, vec![0, 1, 2, 3]);
        let rest = rx.recv_batch(64, Duration::from_millis(50)).unwrap();
        assert_eq!(rest, vec![4, 5, 6, 7, 8]);
        assert_eq!(
            rx.recv_batch(4, Duration::from_millis(5)).unwrap_err(),
            CommError::Timeout
        );
    }

    #[test]
    fn try_push_batch_returns_overflow() {
        let q = WorkQueue::bounded("tight", 3);
        let (tx, rx) = q.split();
        let rejected = tx.try_push_batch(vec![1, 2, 3, 4, 5]).unwrap();
        assert_eq!(rejected, vec![4, 5], "overflow comes back in order");
        assert_eq!(rx.drain(), vec![1, 2, 3]);
        assert!(tx.try_push_batch(vec![6]).unwrap().is_empty());
        assert_eq!(rx.try_pop(), Some(6));
    }

    #[test]
    fn blocking_pop_sees_items_and_disconnect() {
        let q = WorkQueue::unbounded("worker");
        let (tx, rx) = q.split();
        let handle = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(item) = rx.pop() {
                got.push(item);
            }
            got
        });
        tx.push_batch(vec![1, 2, 3]).unwrap();
        drop(tx);
        assert_eq!(handle.join().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn sink_records_queue_depth() {
        use parking_lot::Mutex;
        use std::sync::Arc;
        let depths: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let depths2 = Arc::clone(&depths);
        let q = WorkQueue::unbounded("observed");
        let tx = q
            .sender()
            .with_sink(Arc::new(move |name: &str, value: f64| {
                assert_eq!(name, "comm.queue.depth");
                depths2.lock().push(value);
            }));
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        tx.push_batch(vec![3, 4]).unwrap();
        assert_eq!(depths.lock().as_slice(), &[1.0, 2.0, 4.0]);
    }

    #[test]
    fn pop_timeout_on_empty_queue() {
        let q: WorkQueue<u32> = WorkQueue::unbounded("empty");
        let rx = q.receiver();
        assert_eq!(
            rx.pop_timeout(Duration::from_millis(5)).unwrap_err(),
            CommError::Timeout
        );
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn disconnected_when_all_senders_dropped() {
        let q: WorkQueue<u32> = WorkQueue::unbounded("dropme");
        let (tx, rx) = q.split();
        drop(tx);
        assert_eq!(
            rx.pop_timeout(Duration::from_millis(5)).unwrap_err(),
            CommError::Disconnected
        );
    }

    #[test]
    fn work_is_distributed_across_consumers() {
        let q = WorkQueue::unbounded("mpmc");
        let tx = q.sender();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = q.receiver();
            handles.push(thread::spawn(move || {
                let mut count = 0;
                while rx.pop_timeout(Duration::from_millis(100)).is_ok() {
                    count += 1;
                }
                count
            }));
        }
        for i in 0..200 {
            tx.push(i).unwrap();
        }
        drop(tx);
        drop(q);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn debug_output_mentions_name() {
        let q: WorkQueue<u8> = WorkQueue::unbounded("sched-input");
        assert!(format!("{:?}", q.sender()).contains("sched-input"));
        assert!(format!("{:?}", q.receiver()).contains("sched-input"));
    }
}
