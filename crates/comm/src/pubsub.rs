//! Topic-based publish/subscribe (ZeroMQ PUB/SUB analogue).
//!
//! The runtime's `Updater` publishes entity state changes (task/service/pilot state
//! transitions) on topics; clients, dashboards, and third-party middleware subscribe to
//! the topics they care about (paper Fig. 2, flow ⑥). Subscriptions are prefix matches
//! like ZeroMQ's, so `state.task` receives `state.task.running` and `state.task.done`.
//!
//! # Zero-copy fan-out
//!
//! A publish encodes the message **once** into a frozen [`Bytes`] frame and hands the
//! same buffer to every matching subscriber — delivery to N subscribers is one encode
//! plus N reference-count bumps, never N clones or re-encodes. Subscribers decode
//! lazily: [`Subscriber::recv_timeout`] materialises an owned [`Message`],
//! [`Subscriber::recv_frame_timeout`] / [`Subscriber::drain_frames`] hand the shared
//! frame through untouched for consumers that route on
//! [`Message::decode_view`] without paying an owned decode.
//!
//! # Sharded subscriber lists
//!
//! Subscribers are striped over independent reader-writer-locked shards
//! ([`Publisher::with_shards`]); subscribe/unsubscribe churn write-locks exactly one
//! shard, so publishers (shared readers on every shard) keep fanning out instead of
//! serialising behind membership changes. Per-subscriber delivery order equals
//! publish order for any single publisher regardless of the shard count: a publish
//! walks the shards in index order and a subscriber lives in exactly one shard.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Bytes, BytesMut};

use crate::error::CommError;
use crate::message::Message;
use crate::metrics::{null_comm_sink, SharedCommSink};

/// Default number of subscriber shards.
const DEFAULT_SHARDS: usize = 4;

struct SubscriberEntry {
    prefixes: Vec<String>,
    tx: Sender<Bytes>,
    /// Set by the subscriber's drop/close; the publisher prunes flagged entries.
    closed: Arc<AtomicBool>,
}

impl SubscriberEntry {
    fn matches(&self, topic: &str) -> bool {
        self.prefixes.is_empty() || self.prefixes.iter().any(|p| topic.starts_with(p.as_str()))
    }
}

struct Inner {
    shards: Vec<RwLock<Vec<SubscriberEntry>>>,
    /// Round-robin rotor assigning new subscribers to shards.
    next_shard: AtomicUsize,
    /// Live subscriber count (kept exact across subscribe/close/prune).
    live: AtomicUsize,
    sink: SharedCommSink,
}

/// Publishing side of a PUB/SUB channel.
#[derive(Clone)]
pub struct Publisher {
    inner: Arc<Inner>,
}

impl Default for Publisher {
    fn default() -> Self {
        Publisher::with_shards(DEFAULT_SHARDS)
    }
}

impl std::fmt::Debug for Publisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publisher")
            .field("subscribers", &self.subscriber_count())
            .field("shards", &self.inner.shards.len())
            .finish()
    }
}

impl Publisher {
    /// Create a publisher with the default shard count and no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a publisher with an explicit subscriber-shard count (min 1). Shard
    /// count 1 serialises all membership changes on one lock — the pre-sharding
    /// behaviour, useful as a comparison baseline.
    pub fn with_shards(shards: usize) -> Self {
        Publisher {
            inner: Arc::new(Inner {
                shards: (0..shards.max(1))
                    .map(|_| RwLock::new(Vec::new()))
                    .collect(),
                next_shard: AtomicUsize::new(0),
                live: AtomicUsize::new(0),
                sink: null_comm_sink(),
            }),
        }
    }

    /// Builder: attach a metrics sink recording `comm.fanout.width` per publish and
    /// `comm.publish.batch_size` per batch. Call at construction, before any
    /// subscriber joins — the runtime wires this in when the session is built.
    pub fn with_sink(self, sink: SharedCommSink) -> Self {
        debug_assert_eq!(
            self.subscriber_count(),
            0,
            "attach the sink before subscribers join"
        );
        let shard_count = self.inner.shards.len();
        Publisher {
            inner: Arc::new(Inner {
                shards: (0..shard_count).map(|_| RwLock::new(Vec::new())).collect(),
                next_shard: AtomicUsize::new(0),
                live: AtomicUsize::new(0),
                sink,
            }),
        }
    }

    /// Number of subscriber shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Number of live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.inner.live.load(Ordering::Acquire)
    }

    /// Create a subscription for the given topic prefixes (empty prefix = everything).
    /// Write-locks exactly one shard.
    pub fn subscribe(&self, prefixes: &[&str]) -> Subscriber {
        let (tx, rx) = unbounded();
        let closed = Arc::new(AtomicBool::new(false));
        let entry = SubscriberEntry {
            prefixes: prefixes.iter().map(|s| s.to_string()).collect(),
            tx,
            closed: Arc::clone(&closed),
        };
        let shard = self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % self.inner.shards.len();
        self.inner.shards[shard].write().push(entry);
        self.inner.live.fetch_add(1, Ordering::AcqRel);
        Subscriber { rx, closed }
    }

    /// Publish a message to every subscriber whose prefix matches the message topic.
    ///
    /// The message is encoded once; every delivery shares the same frozen frame.
    /// Returns the number of subscribers that received it. Subscribers that closed
    /// are pruned from their shard in passing.
    pub fn publish(&self, msg: &Message) -> usize {
        let delivered = self.fan_out(std::slice::from_ref(msg), &mut BytesMut::new());
        self.inner
            .sink
            .record("comm.fanout.width", delivered as f64);
        delivered
    }

    /// Publish a batch of messages in one pass: each message is encoded once (through
    /// one reusable scratch buffer), and each shard lock is taken once for the whole
    /// batch rather than once per message. Returns total deliveries.
    pub fn publish_batch(&self, msgs: &[Message]) -> usize {
        if msgs.is_empty() {
            return 0;
        }
        let mut scratch = BytesMut::new();
        let delivered = self.fan_out(msgs, &mut scratch);
        self.inner
            .sink
            .record("comm.publish.batch_size", msgs.len() as f64);
        self.inner
            .sink
            .record("comm.fanout.width", delivered as f64 / msgs.len() as f64);
        delivered
    }

    /// Shared fan-out core: encode each message at most once (lazily, on first
    /// match), deliver the same frame to every matching subscriber, prune closed
    /// entries per shard.
    fn fan_out(&self, msgs: &[Message], scratch: &mut BytesMut) -> usize {
        let mut frames: Vec<Option<Bytes>> = vec![None; msgs.len()];
        let mut delivered = 0;
        for shard in &self.inner.shards {
            let mut any_closed = false;
            {
                let subs = shard.read();
                for sub in subs.iter() {
                    if sub.closed.load(Ordering::Acquire) {
                        any_closed = true;
                        continue;
                    }
                    for (i, msg) in msgs.iter().enumerate() {
                        if !sub.matches(&msg.topic) {
                            continue;
                        }
                        let frame = frames[i]
                            .get_or_insert_with(|| msg.encode_into(scratch))
                            .clone();
                        if sub.tx.send(frame).is_ok() {
                            delivered += 1;
                        } else {
                            any_closed = true;
                        }
                    }
                }
            }
            if any_closed {
                let mut subs = shard.write();
                let before = subs.len();
                subs.retain(|s| !s.closed.load(Ordering::Acquire));
                let pruned = before - subs.len();
                if pruned > 0 {
                    self.inner.live.fetch_sub(pruned, Ordering::AcqRel);
                }
            }
        }
        delivered
    }
}

/// Receiving side of a PUB/SUB channel. Dropping (or [`Subscriber::close`]-ing) the
/// subscriber unsubscribes it: the publisher stops delivering and prunes the entry.
pub struct Subscriber {
    rx: Receiver<Bytes>,
    closed: Arc<AtomicBool>,
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        self.closed.store(true, Ordering::Release);
    }
}

impl std::fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("pending", &self.rx.len())
            .finish()
    }
}

impl Subscriber {
    /// Stop receiving. Equivalent to dropping the subscriber; already-delivered
    /// frames stay readable.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Block for the next message, up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, CommError> {
        self.recv_frame_timeout(timeout).and_then(Message::decode)
    }

    /// Block for the next raw frame (the publisher's shared encoded buffer), up to
    /// `timeout`. Zero-copy: decode with [`Message::decode_view`] to route without
    /// materialising an owned message.
    pub fn recv_frame_timeout(&self, timeout: Duration) -> Result<Bytes, CommError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => CommError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => CommError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Option<Message>, CommError> {
        match self.rx.try_recv() {
            Ok(frame) => Message::decode(frame).map(Some),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(CommError::Disconnected),
        }
    }

    /// Receive up to `max` messages in one call: block up to `timeout` for the first,
    /// then take whatever else is already waiting. Order matches publish order.
    pub fn recv_batch(&self, max: usize, timeout: Duration) -> Result<Vec<Message>, CommError> {
        let first = self.recv_timeout(timeout)?;
        let mut out = Vec::with_capacity(max.clamp(1, 64));
        out.push(first);
        while out.len() < max {
            match self.try_recv()? {
                Some(m) => out.push(m),
                None => break,
            }
        }
        Ok(out)
    }

    /// Drain everything currently pending as owned messages.
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Ok(Some(m)) = self.try_recv() {
            out.push(m);
        }
        out
    }

    /// Drain everything currently pending as shared frames (no decode at all).
    pub fn drain_frames(&self) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Ok(frame) = self.rx.try_recv() {
            out.push(frame);
        }
        out
    }

    /// Number of messages waiting.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_delivery() {
        let publisher = Publisher::new();
        let tasks = publisher.subscribe(&["state.task"]);
        let services = publisher.subscribe(&["state.service"]);
        let all = publisher.subscribe(&[]);
        assert_eq!(publisher.subscriber_count(), 3);

        let n = publisher.publish(&Message::new("state.task.running", "state.update"));
        assert_eq!(n, 2); // task subscriber + catch-all
        let n = publisher.publish(&Message::new("state.service.ready", "state.update"));
        assert_eq!(n, 2);

        assert_eq!(tasks.drain().len(), 1);
        assert_eq!(services.drain().len(), 1);
        assert_eq!(all.drain().len(), 2);
    }

    #[test]
    fn multiple_prefixes_one_subscriber() {
        let publisher = Publisher::new();
        let sub = publisher.subscribe(&["state.task", "state.pilot"]);
        publisher.publish(&Message::new("state.task.done", "u"));
        publisher.publish(&Message::new("state.pilot.active", "u"));
        publisher.publish(&Message::new("state.service.ready", "u"));
        assert_eq!(sub.drain().len(), 2);
    }

    #[test]
    fn recv_timeout_and_pending() {
        let publisher = Publisher::new();
        let sub = publisher.subscribe(&[]);
        assert_eq!(
            sub.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            CommError::Timeout
        );
        publisher.publish(&Message::new("x", "y"));
        assert_eq!(sub.pending(), 1);
        let m = sub.recv_timeout(Duration::from_millis(50)).unwrap();
        assert_eq!(m.topic, "x");
    }

    #[test]
    fn publish_with_no_subscribers_is_zero() {
        let publisher = Publisher::new();
        assert_eq!(publisher.publish(&Message::new("t", "k")), 0);
        assert!(!format!("{publisher:?}").is_empty());
    }

    #[test]
    fn fanout_shares_one_encoded_frame() {
        let publisher = Publisher::with_shards(2);
        let subs: Vec<Subscriber> = (0..4).map(|_| publisher.subscribe(&[])).collect();
        let msg = Message::new("events", "tick").with_text("shared payload");
        publisher.publish(&msg);
        let frames: Vec<Bytes> = subs
            .iter()
            .map(|s| s.recv_frame_timeout(Duration::from_millis(100)).unwrap())
            .collect();
        let first_ptr = frames[0].as_ref().as_ptr();
        for frame in &frames {
            assert_eq!(
                frame.as_ref().as_ptr(),
                first_ptr,
                "all subscribers share the same backing buffer"
            );
            let view = Message::decode_view(frame).unwrap();
            assert_eq!(view.topic, "events");
            assert_eq!(view.text(), Some("shared payload"));
        }
    }

    #[test]
    fn dropping_a_subscriber_unsubscribes_it() {
        let publisher = Publisher::with_shards(1);
        let keep = publisher.subscribe(&[]);
        let gone = publisher.subscribe(&[]);
        assert_eq!(publisher.subscriber_count(), 2);
        drop(gone);
        // First publish notices the closed flag and prunes.
        assert_eq!(publisher.publish(&Message::new("t", "k")), 1);
        assert_eq!(publisher.subscriber_count(), 1);
        assert_eq!(keep.drain().len(), 1);
    }

    #[test]
    fn publish_batch_delivers_in_order() {
        let publisher = Publisher::with_shards(4);
        let sub = publisher.subscribe(&["seq"]);
        let other = publisher.subscribe(&["other"]);
        let msgs: Vec<Message> = (0..10)
            .map(|i| Message::new("seq", "tick").with_text(&i.to_string()))
            .collect();
        let delivered = publisher.publish_batch(&msgs);
        assert_eq!(delivered, 10);
        let got = sub.recv_batch(64, Duration::from_millis(100)).unwrap();
        let texts: Vec<&str> = got.iter().map(|m| m.text().unwrap()).collect();
        assert_eq!(
            texts,
            (0..10).map(|i| i.to_string()).collect::<Vec<_>>(),
            "batch order equals publish order"
        );
        assert_eq!(other.pending(), 0);
        assert_eq!(publisher.publish_batch(&[]), 0);
    }

    #[test]
    fn cross_thread_delivery() {
        let publisher = Publisher::new();
        let sub = publisher.subscribe(&["events"]);
        let p2 = publisher.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..50 {
                p2.publish(&Message::new("events", "tick").with_text(&i.to_string()));
            }
        });
        handle.join().unwrap();
        let got = sub.drain();
        assert_eq!(got.len(), 50);
        assert!(!format!("{sub:?}").is_empty());
    }

    #[test]
    fn sink_records_fanout_width() {
        use parking_lot::Mutex;
        let seen: Arc<Mutex<Vec<(String, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let publisher = Publisher::new().with_sink(Arc::new(move |name: &str, v: f64| {
            seen2.lock().push((name.to_string(), v));
        }));
        let _a = publisher.subscribe(&[]);
        let _b = publisher.subscribe(&[]);
        publisher.publish(&Message::new("t", "k"));
        publisher.publish_batch(&[Message::new("t", "k"), Message::new("t", "k")]);
        let seen = seen.lock();
        assert!(seen.contains(&("comm.fanout.width".to_string(), 2.0)));
        assert!(seen.contains(&("comm.publish.batch_size".to_string(), 2.0)));
    }
}
