//! Topic-based publish/subscribe (ZeroMQ PUB/SUB analogue).
//!
//! The runtime's `Updater` publishes entity state changes (task/service/pilot state
//! transitions) on topics; clients, dashboards, and third-party middleware subscribe to
//! the topics they care about (paper Fig. 2, flow ⑥). Subscriptions are prefix matches
//! like ZeroMQ's, so `state.task` receives `state.task.running` and `state.task.done`.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

use crate::error::CommError;
use crate::message::Message;

struct SubscriberEntry {
    prefixes: Vec<String>,
    tx: Sender<Message>,
}

#[derive(Default)]
struct Inner {
    subscribers: RwLock<Vec<SubscriberEntry>>,
}

/// Publishing side of a PUB/SUB channel.
#[derive(Clone, Default)]
pub struct Publisher {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Publisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publisher")
            .field("subscribers", &self.subscriber_count())
            .finish()
    }
}

impl Publisher {
    /// Create a publisher with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.inner.subscribers.read().len()
    }

    /// Create a subscription for the given topic prefixes (empty prefix = everything).
    pub fn subscribe(&self, prefixes: &[&str]) -> Subscriber {
        let (tx, rx) = unbounded();
        let entry = SubscriberEntry {
            prefixes: prefixes.iter().map(|s| s.to_string()).collect(),
            tx,
        };
        self.inner.subscribers.write().push(entry);
        Subscriber { rx }
    }

    /// Publish a message to every subscriber whose prefix matches the message topic.
    /// Returns the number of subscribers that received it. Dead subscribers are pruned.
    pub fn publish(&self, msg: &Message) -> usize {
        let mut delivered = 0;
        let mut any_dead = false;
        {
            let subs = self.inner.subscribers.read();
            for sub in subs.iter() {
                let matches = sub.prefixes.is_empty()
                    || sub
                        .prefixes
                        .iter()
                        .any(|p| msg.topic.starts_with(p.as_str()));
                if matches {
                    if sub.tx.send(msg.clone()).is_ok() {
                        delivered += 1;
                    } else {
                        any_dead = true;
                    }
                }
            }
        }
        if any_dead {
            self.inner
                .subscribers
                .write()
                .retain(|s| !s.tx.is_empty() || s.tx.send(Message::new("", "comm.ping")).is_ok());
        }
        delivered
    }
}

/// Receiving side of a PUB/SUB channel.
pub struct Subscriber {
    rx: Receiver<Message>,
}

impl std::fmt::Debug for Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("pending", &self.rx.len())
            .finish()
    }
}

impl Subscriber {
    /// Block for the next message, up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, CommError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => CommError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => CommError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Option<Message>, CommError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(CommError::Disconnected),
        }
    }

    /// Drain everything currently pending, filtering out internal ping messages.
    pub fn drain(&self) -> Vec<Message> {
        let mut out = Vec::new();
        while let Ok(Some(m)) = self.try_recv() {
            if m.kind != "comm.ping" {
                out.push(m);
            }
        }
        out
    }

    /// Number of messages waiting.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_delivery() {
        let publisher = Publisher::new();
        let tasks = publisher.subscribe(&["state.task"]);
        let services = publisher.subscribe(&["state.service"]);
        let all = publisher.subscribe(&[]);
        assert_eq!(publisher.subscriber_count(), 3);

        let n = publisher.publish(&Message::new("state.task.running", "state.update"));
        assert_eq!(n, 2); // task subscriber + catch-all
        let n = publisher.publish(&Message::new("state.service.ready", "state.update"));
        assert_eq!(n, 2);

        assert_eq!(tasks.drain().len(), 1);
        assert_eq!(services.drain().len(), 1);
        assert_eq!(all.drain().len(), 2);
    }

    #[test]
    fn multiple_prefixes_one_subscriber() {
        let publisher = Publisher::new();
        let sub = publisher.subscribe(&["state.task", "state.pilot"]);
        publisher.publish(&Message::new("state.task.done", "u"));
        publisher.publish(&Message::new("state.pilot.active", "u"));
        publisher.publish(&Message::new("state.service.ready", "u"));
        assert_eq!(sub.drain().len(), 2);
    }

    #[test]
    fn recv_timeout_and_pending() {
        let publisher = Publisher::new();
        let sub = publisher.subscribe(&[]);
        assert_eq!(
            sub.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            CommError::Timeout
        );
        publisher.publish(&Message::new("x", "y"));
        assert_eq!(sub.pending(), 1);
        let m = sub.recv_timeout(Duration::from_millis(50)).unwrap();
        assert_eq!(m.topic, "x");
    }

    #[test]
    fn publish_with_no_subscribers_is_zero() {
        let publisher = Publisher::new();
        assert_eq!(publisher.publish(&Message::new("t", "k")), 0);
        assert!(!format!("{publisher:?}").is_empty());
    }

    #[test]
    fn cross_thread_delivery() {
        let publisher = Publisher::new();
        let sub = publisher.subscribe(&["events"]);
        let p2 = publisher.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..50 {
                p2.publish(&Message::new("events", "tick").with_text(&i.to_string()));
            }
        });
        handle.join().unwrap();
        let got = sub.drain();
        assert_eq!(got.len(), 50);
        assert!(!format!("{sub:?}").is_empty());
    }
}
