//! Offline shim for the `serde` facade.
//!
//! The derive macros (re-exported from the `serde_derive` shim) expand to nothing, and
//! the traits are blanket-implemented markers, so `#[derive(Serialize, Deserialize)]`
//! and `T: Serialize` bounds compile unchanged. Swap this shim for the real crates by
//! pointing the workspace `[workspace.dependencies]` entries back at the registry.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket-implemented owned-deserialisation marker.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
