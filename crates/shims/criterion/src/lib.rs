//! Offline shim for the `criterion` surface used by this workspace's benches.
//!
//! Implements a compact timing harness behind criterion's API: warm-up, then timed
//! batches until the measurement budget is spent, reporting the median per-iteration
//! time. No statistical regression machinery — the workspace benches compare orders of
//! magnitude (e.g. allocation latency across node counts), for which median ns/iter is
//! plenty. Output format: `name  time: [median ns/iter]  iters: N`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Run one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.measurement_time, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A named group sharing sample-size/measurement-time configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Benchmark parameterised by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op; reports are printed eagerly).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    /// Measured per-iteration durations (one per sample).
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `f`, batching iterations so that per-call overhead amortises away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: grow the batch until one batch costs >= ~1 ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let deadline = Instant::now() + self.measurement_time;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} time: [no samples]");
        return;
    }
    b.samples.sort_by(|a, x| a.partial_cmp(x).unwrap());
    let median = b.samples[b.samples.len() / 2];
    let (scaled, unit) = if median < 1e-6 {
        (median * 1e9, "ns")
    } else if median < 1e-3 {
        (median * 1e6, "µs")
    } else {
        (median * 1e3, "ms")
    };
    println!(
        "{name:<48} time: [{scaled:9.2} {unit}/iter]  samples: {}",
        b.samples.len()
    );
}

/// Bundle benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. `--bench`); ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(20));
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| {
                count = count.wrapping_add(x);
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("alloc", 256).0, "alloc/256");
        assert_eq!(BenchmarkId::from_parameter("local").0, "local");
    }
}
