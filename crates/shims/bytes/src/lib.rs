//! Offline shim for the `bytes` crate surface used by this workspace.
//!
//! [`Bytes`] is an `Arc<Vec<u8>>` plus a window, so `clone`, [`Bytes::slice`] and
//! [`Buf::copy_to_bytes`] are all O(1) reference-count bumps — the zero-copy property
//! the message codec relies on. [`BytesMut`] is a thin `Vec<u8>` wrapper implementing
//! the [`BufMut`] writer surface, frozen into [`Bytes`] without copying the bytes
//! (the `Vec` moves behind the `Arc` as-is). [`BytesMut::split`] supports the real
//! crate's buffer-reuse idiom (`reserve` → write → `split().freeze()`); unlike the
//! real crate the detached portion does not share the parent's allocation, so reuse
//! here saves buffer *growth*, not the one allocation per frozen frame.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// A buffer copied from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// A buffer copied from an arbitrary slice.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes {
            data: Arc::new(bytes.to_vec()),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// View as a plain byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "...")?;
        }
        write!(f, "\"")
    }
}

/// Reader surface over a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Advance the cursor.
    fn advance(&mut self, n: usize);
    /// Current unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Take `len` bytes off the front as an owned buffer.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        // Zero copy: the returned view shares the backing Arc.
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

/// Growable byte buffer, frozen into [`Bytes`] without copying.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Current allocation size.
    pub fn capacity(&self) -> usize {
        self.vec.capacity()
    }

    /// Ensure room for `additional` more bytes without reallocating mid-write.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Drop all written bytes, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Detach everything written so far into its own `BytesMut`, leaving this buffer
    /// empty but still holding its allocation — the reusable-encode-buffer idiom
    /// (`reserve` → write → `split().freeze()`). The detached bytes move; they are
    /// not copied.
    pub fn split(&mut self) -> BytesMut {
        let cap = self.vec.capacity();
        BytesMut {
            vec: std::mem::replace(&mut self.vec, Vec::with_capacity(cap)),
        }
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

/// Writer surface over a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_reader_writer() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32(0xDEAD_BEEF);
        w.put_u8(7);
        w.put_u64(42);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 1 + 8 + 3);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.copy_to_bytes(3).as_slice(), b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_detaches_and_keeps_capacity() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"frame-1");
        let first = w.split().freeze();
        assert_eq!(first.as_slice(), b"frame-1");
        assert!(w.is_empty(), "writer empty after split");
        assert!(w.capacity() >= 64, "allocation kept for reuse");
        w.put_slice(b"frame-2");
        let second = w.split().freeze();
        assert_eq!(second.as_slice(), b"frame-2");
        assert_eq!(first.as_slice(), b"frame-1", "detached frame unaffected");
        w.reserve(128);
        assert!(w.capacity() >= 128);
        w.put_u8(1);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::copy_from_slice(b"hello world");
        let s = b.slice(6..);
        assert_eq!(s.as_slice(), b"world");
        assert_eq!(b.len(), 11, "parent view unchanged");
        let s2 = s.slice(0..3);
        assert_eq!(s2.as_slice(), b"wor");
    }

    #[test]
    fn copy_to_bytes_is_zero_copy() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head_ptr = b.as_slice().as_ptr();
        let taken = b.copy_to_bytes(2);
        assert_eq!(taken.as_slice(), &[1, 2]);
        assert_eq!(
            taken.as_slice().as_ptr(),
            head_ptr,
            "shares backing storage"
        );
        assert_eq!(b.as_slice(), &[3, 4, 5]);
    }

    #[test]
    fn equality_and_debug() {
        let a = Bytes::from_static(b"xy");
        let b = Bytes::from(vec![b'x', b'y']);
        assert_eq!(a, b);
        assert!(format!("{a:?}").contains("xy"));
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from_static(b"abc");
        let _ = b.slice(0..4);
    }
}
