//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace derives `Serialize`/`Deserialize` on its spec/description types so
//! they stay wire-ready, but nothing in the tree actually serialises them (there is no
//! `serde_json` in the environment). The companion `serde` shim provides blanket
//! implementations of the marker traits, so an empty expansion is exactly right.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`. Accepts (and ignores) `#[serde(...)]` field and
/// container attributes, as the real macro does.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`. Accepts (and ignores) `#[serde(...)]` field and
/// container attributes, as the real macro does.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
