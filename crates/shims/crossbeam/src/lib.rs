//! Offline shim for the `crossbeam` crate surface used by this workspace.
//!
//! Only [`channel`] is provided: multi-producer multi-consumer channels (bounded and
//! unbounded) built on `std::sync::{Mutex, Condvar}` with crossbeam-channel's API and
//! disconnection semantics. Throughput is far below real crossbeam but comfortably
//! above what the simulated runtime needs (the hot paths of this workspace are the
//! scheduler and the codec, not the channels).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// A bounded MPMC channel. Capacity 0 is treated as capacity 1 (this shim does not
    /// implement rendezvous channels; nothing in the workspace uses them).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(capacity.max(1)))
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Sending half of a channel; cloneable for multiple producers.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .chan
                            .not_full
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Send without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.chan.capacity {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake blocked receivers so they observe the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Receiving half of a channel; cloneable for multiple consumers.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, left)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .len()
        }

        /// True when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self
                .chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Wake blocked senders so they observe the disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            let _ = rx.recv().unwrap();
            tx.try_send(3).unwrap();
        }

        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).map_err(|_| ()));
            thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn dropping_senders_disconnects() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn dropping_receivers_fails_send() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(5).is_err());
            assert!(matches!(tx.try_send(5), Err(TrySendError::Disconnected(5))));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn mpmc_all_items_delivered() {
            let (tx, rx) = unbounded();
            let mut producers = Vec::new();
            for p in 0..4 {
                let tx = tx.clone();
                producers.push(thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut consumers = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                consumers.push(thread::spawn(move || rx.iter().count()));
            }
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 400);
        }
    }
}
