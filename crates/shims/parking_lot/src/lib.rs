//! Offline shim for the `parking_lot` API surface used by this workspace.
//!
//! The build environment has no access to a crates registry, so the workspace vendors
//! a minimal, API-compatible implementation on top of `std::sync`. Poisoning is
//! swallowed (parking_lot has none), and `Condvar` takes guards by `&mut` reference
//! exactly like the real crate.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutex that never poisons and whose guard can be re-acquired by a [`Condvar`].
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access to the mutex).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`]; wraps the std guard so a [`Condvar`] can take it by `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or until `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Block until notified or for at most `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(format!("{m:?}").contains('2'));
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
