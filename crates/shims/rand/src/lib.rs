//! Offline shim for the `rand` API surface used by this workspace.
//!
//! Provides [`RngCore`], [`Rng`] (with `gen_range`/`gen_bool`), [`SeedableRng`] and
//! [`rngs::StdRng`] backed by the SplitMix64 generator. The statistical quality is more
//! than sufficient for the duration models in this workspace, and seeding is fully
//! deterministic (same seed → same stream), which is all the experiments require.

use std::ops::Range;

/// Low-level generator interface (object safe).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Sample a uniform value of type `T` (only `f64` in `[0,1)` is supported).
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample_unit(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
    /// Uniform draw from the type's unit interval / full domain.
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(
            range.start < range.end,
            "gen_range requires a non-empty range"
        );
        let u = unit_f64(rng.next_u64());
        let v = range.start + u * (range.end - range.start);
        // Guard against FP rounding landing exactly on the excluded upper bound.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }

    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range requires a non-empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                range.start.wrapping_add(draw as $t)
            }

            fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Passes the statistical bar needed by the duration models here (uniform 64-bit
    /// output, full period over the state space) while staying dependency-free.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&v));
        }
        let mean: f64 = (0..40_000).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / 40_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn dyn_rngcore_is_usable() {
        let mut r = StdRng::seed_from_u64(4);
        let dynr: &mut dyn RngCore = &mut r;
        let v = dynr.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
    }
}
