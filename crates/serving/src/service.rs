//! The inference service loop: binds a model host to a REQ/REP endpoint.
//!
//! [`InferenceService::serve`] is what runs inside a *service task* once the runtime has
//! launched it: it receives requests from the endpoint, decomposes the time it spends on
//! each one into the paper's `service` (queueing + parsing + serialising) and
//! `inference` (model compute) components, stamps those onto the reply headers, and
//! answers readiness probes and shutdown commands from the service manager.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hpcml_comm::message::Message;
use hpcml_comm::reqrep::{ReqRepServer, Responder, HDR_ENQUEUED_AT};
use hpcml_sim::clock::SharedClock;
use hpcml_sim::dist::Dist;

use crate::host::ModelHost;
use crate::protocol::*;
use crate::request::InferenceRequest;

/// How long the serve loop blocks on the endpoint before re-checking its stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// The serve loop of one service instance.
pub struct InferenceService {
    name: String,
    host: Arc<ModelHost>,
    clock: SharedClock,
    /// Request parsing/serialisation overhead (the non-queue part of `service` time).
    handling_overhead: Dist,
    rng: Mutex<StdRng>,
    requests_served: AtomicU64,
}

impl std::fmt::Debug for InferenceService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceService")
            .field("name", &self.name)
            .field("model", &self.host.spec().name)
            .field("requests_served", &self.requests_served())
            .finish()
    }
}

impl InferenceService {
    /// Create a service around a loaded (or to-be-loaded) model host.
    pub fn new(
        name: impl Into<String>,
        host: Arc<ModelHost>,
        clock: SharedClock,
        seed: u64,
    ) -> Self {
        InferenceService {
            name: name.into(),
            host,
            clock,
            // Parsing + reply serialisation: tens of microseconds, so the "service"
            // component stays below the network latency for NOOP calls (Figs. 4-5).
            handling_overhead: Dist::normal(0.00003, 0.00001),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            requests_served: AtomicU64::new(0),
        }
    }

    /// Service name (usually the service task id).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hosted model.
    pub fn host(&self) -> &Arc<ModelHost> {
        &self.host
    }

    /// Requests served by this service loop.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Run the serve loop until `stop` is set or a shutdown message arrives.
    /// Returns the number of requests served in this invocation.
    pub fn serve(&self, endpoint: &ReqRepServer, stop: &AtomicBool) -> u64 {
        let mut served = 0;
        while !stop.load(Ordering::Acquire) {
            match endpoint.recv_timeout(POLL_INTERVAL) {
                Ok((msg, responder)) => {
                    let is_shutdown = msg.kind == KIND_SHUTDOWN;
                    self.dispatch(msg, responder);
                    if is_shutdown {
                        break;
                    }
                    served += 1;
                }
                Err(hpcml_comm::CommError::Timeout) => continue,
                Err(_) => break,
            }
        }
        served
    }

    /// Handle one message (used directly by unit tests and by [`InferenceService::serve`]).
    pub fn dispatch(&self, msg: Message, responder: Responder) {
        match msg.kind.as_str() {
            KIND_PING => {
                let ready = self.host.is_loaded();
                let reply = Message::new(msg.topic.clone(), KIND_PONG)
                    .with_header("ready", if ready { "true" } else { "false" })
                    .with_header(HDR_MODEL, self.host.spec().name.clone());
                let _ = responder.reply(reply);
            }
            KIND_SHUTDOWN => {
                let reply =
                    Message::new(msg.topic.clone(), KIND_PONG).with_header("stopping", "true");
                let _ = responder.reply(reply);
            }
            KIND_INFER_REQUEST => {
                self.handle_inference(msg, responder);
            }
            other => {
                let reply = Message::new(msg.topic.clone(), KIND_ERROR)
                    .with_header(HDR_ERROR, format!("unknown message kind: {other}"));
                let _ = responder.reply(reply);
            }
        }
    }

    fn handle_inference(&self, msg: Message, responder: Responder) {
        let dequeued_at = self.clock.now().as_secs_f64();
        // Time the request spent waiting in the endpoint queue (the paper counts this
        // in the `service` component).
        let queue_secs = msg
            .f64_header(HDR_ENQUEUED_AT)
            .map(|enq| (dequeued_at - enq).max(0.0))
            .unwrap_or(0.0);

        // Parsing / deserialisation overhead.
        let handling_secs = {
            let mut rng = self.rng.lock();
            self.handling_overhead.sample(&mut *rng).max(0.0)
        };
        self.clock.sleep(Duration::from_secs_f64(handling_secs));

        let request = match msg.text().and_then(InferenceRequest::from_payload) {
            Some(r) => r,
            None => {
                let reply = Message::new(msg.topic.clone(), KIND_ERROR)
                    .with_header(HDR_ERROR, "malformed inference request payload");
                let _ = responder.reply(reply);
                return;
            }
        };

        match self.host.handle(&request) {
            Ok(resp) => {
                self.requests_served.fetch_add(1, Ordering::Relaxed);
                let service_secs = queue_secs + handling_secs;
                let reply = Message::new(msg.topic.clone(), KIND_INFER_REPLY)
                    .with_header(HDR_REQUEST_ID, resp.request_id.clone())
                    .with_header(HDR_MODEL, resp.model.clone())
                    .with_f64_header(HDR_SERVICE_SECS, service_secs)
                    .with_f64_header(HDR_INFERENCE_SECS, resp.inference_secs)
                    .with_header(HDR_PROMPT_TOKENS, resp.prompt_tokens.to_string())
                    .with_header(HDR_COMPLETION_TOKENS, resp.completion_tokens.to_string())
                    .with_text(&resp.text);
                let _ = responder.reply(reply);
            }
            Err(err) => {
                let reply = Message::new(msg.topic.clone(), KIND_ERROR)
                    .with_header(HDR_ERROR, err.to_string())
                    .with_header(HDR_REQUEST_ID, request.request_id);
                let _ = responder.reply(reply);
            }
        }
    }
}

/// Build the wire message for an inference request (client side helper).
pub fn inference_request_message(endpoint: &str, request: &InferenceRequest) -> Message {
    Message::new(endpoint, KIND_INFER_REQUEST)
        .with_header(HDR_REQUEST_ID, request.request_id.clone())
        .with_text(&request.to_payload())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::shared_host;
    use crate::model::ModelSpec;
    use hpcml_comm::link::Link;
    use hpcml_sim::clock::ClockSpec;
    use std::thread;

    // Moderate compression: real scheduling jitter (tens of µs) stays well below the
    // virtual durations asserted on (hundreds of ms and up).
    fn clock() -> SharedClock {
        ClockSpec::scaled(1000.0).build()
    }

    fn start_service(
        spec: ModelSpec,
        clock: SharedClock,
    ) -> (
        Arc<AtomicBool>,
        thread::JoinHandle<u64>,
        hpcml_comm::ReqRepClient,
    ) {
        let host = shared_host(spec, Arc::clone(&clock), 7);
        host.load();
        let service = InferenceService::new("svc.test", host, Arc::clone(&clock), 8);
        let endpoint = ReqRepServer::new("svc.test");
        let client = endpoint.client(Link::instant(Arc::clone(&clock)));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::spawn(move || service.serve(&endpoint, &stop2));
        (stop, handle, client)
    }

    #[test]
    fn ping_reports_readiness() {
        let c = clock();
        let (stop, handle, client) = start_service(ModelSpec::noop(), Arc::clone(&c));
        let reply = client.request(Message::new("svc.test", KIND_PING)).unwrap();
        assert_eq!(reply.kind, KIND_PONG);
        assert_eq!(reply.header("ready"), Some("true"));
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn noop_inference_has_negligible_inference_time() {
        let c = clock();
        let (stop, handle, client) = start_service(ModelSpec::noop(), Arc::clone(&c));
        let req = InferenceRequest::new("ping", 1).from_client("task.0");
        let reply = client
            .request(inference_request_message("svc.test", &req))
            .unwrap();
        assert_eq!(reply.kind, KIND_INFER_REPLY);
        assert_eq!(reply.f64_header(HDR_INFERENCE_SECS), Some(0.0));
        assert!(reply.f64_header(HDR_SERVICE_SECS).unwrap() >= 0.0);
        assert_eq!(reply.header(HDR_MODEL), Some("noop"));
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn llm_inference_reports_dominant_inference_time() {
        let c = clock();
        let (stop, handle, client) = start_service(ModelSpec::sim_llama_8b(), Arc::clone(&c));
        let req = InferenceRequest::new("word ".repeat(60), 128).from_client("task.1");
        let reply = client
            .request(inference_request_message("svc.test", &req))
            .unwrap();
        assert_eq!(reply.kind, KIND_INFER_REPLY);
        let inference = reply.f64_header(HDR_INFERENCE_SECS).unwrap();
        let service = reply.f64_header(HDR_SERVICE_SECS).unwrap();
        assert!(inference > 0.5, "inference {inference}");
        assert!(
            service < inference,
            "service {service} must be dwarfed by inference {inference}"
        );
        let tokens: u32 = reply
            .header(HDR_COMPLETION_TOKENS)
            .unwrap()
            .parse()
            .unwrap();
        assert!(tokens >= 1);
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn malformed_payload_yields_error_reply() {
        let c = clock();
        let (stop, handle, client) = start_service(ModelSpec::noop(), Arc::clone(&c));
        let reply = client
            .request(Message::new("svc.test", KIND_INFER_REQUEST).with_text("not a valid payload"))
            .unwrap();
        assert_eq!(reply.kind, KIND_ERROR);
        assert!(reply.header(HDR_ERROR).unwrap().contains("malformed"));
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn unknown_kind_yields_error_reply() {
        let c = clock();
        let (stop, handle, client) = start_service(ModelSpec::noop(), Arc::clone(&c));
        let reply = client
            .request(Message::new("svc.test", "bogus.kind"))
            .unwrap();
        assert_eq!(reply.kind, KIND_ERROR);
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_message_stops_the_loop() {
        let c = clock();
        let (_stop, handle, client) = start_service(ModelSpec::noop(), Arc::clone(&c));
        let reply = client
            .request(Message::new("svc.test", KIND_SHUTDOWN))
            .unwrap();
        assert_eq!(reply.header("stopping"), Some("true"));
        // The loop must exit on its own without the stop flag being set.
        handle.join().unwrap();
    }

    #[test]
    fn unloaded_host_reports_not_ready_and_errors() {
        let c = clock();
        let host = shared_host(ModelSpec::sim_llama_8b(), Arc::clone(&c), 9);
        // Deliberately not loaded.
        let service = InferenceService::new("svc.cold", Arc::clone(&host), Arc::clone(&c), 10);
        let endpoint = ReqRepServer::new("svc.cold");
        let client = endpoint.client(Link::instant(Arc::clone(&c)));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::spawn(move || service.serve(&endpoint, &stop2));

        let pong = client.request(Message::new("svc.cold", KIND_PING)).unwrap();
        assert_eq!(pong.header("ready"), Some("false"));
        let req = InferenceRequest::new("early", 4);
        let reply = client
            .request(inference_request_message("svc.cold", &req))
            .unwrap();
        assert_eq!(reply.kind, KIND_ERROR);
        assert!(reply.header(HDR_ERROR).unwrap().contains("not loaded"));

        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn queueing_shows_up_in_service_time() {
        // One single-threaded service, two clients racing: the second's reply must
        // include queue time roughly equal to the first request's inference time.
        let c = clock();
        let host = shared_host(ModelSpec::sim_llama_8b(), Arc::clone(&c), 20);
        host.load();
        let service = Arc::new(InferenceService::new("svc.q", host, Arc::clone(&c), 21));
        let endpoint = ReqRepServer::new("svc.q");
        let client_a = endpoint.client(Link::instant(Arc::clone(&c)));
        let client_b = endpoint.client(Link::instant(Arc::clone(&c)));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let svc = Arc::clone(&service);
        let server_thread = thread::spawn(move || svc.serve(&endpoint, &stop2));

        let send = |client: hpcml_comm::ReqRepClient| {
            thread::spawn(move || {
                let req = InferenceRequest::new("w ".repeat(40), 64);
                client
                    .request(inference_request_message("svc.q", &req))
                    .unwrap()
            })
        };
        let h1 = send(client_a);
        let h2 = send(client_b);
        let r1 = h1.join().unwrap();
        let r2 = h2.join().unwrap();
        let max_service = r1
            .f64_header(HDR_SERVICE_SECS)
            .unwrap()
            .max(r2.f64_header(HDR_SERVICE_SECS).unwrap());
        // One of the two requests must have waited for the other's inference.
        assert!(
            max_service > 0.3,
            "queued request should show queue time, got {max_service}"
        );
        assert_eq!(service.requests_served(), 2);
        stop.store(true, Ordering::Release);
        server_thread.join().unwrap();
    }
}
