//! The inference service loop: binds a replica pool to a REQ/REP endpoint.
//!
//! [`InferenceService::serve`] is what runs inside a *service task* once the runtime has
//! launched it. The loop is an admission front-end over the serving plane:
//!
//! 1. requests are received in bursts ([`ReqRepServer::recv_batch`]) and decoded
//!    zero-copy ([`InferenceRequest::decode_view`]); malformed payloads get a typed
//!    protocol error reply;
//! 2. admission control sheds requests when the assembler queue is full or when a
//!    request's deadline cannot be met at the current estimated queue delay
//!    ([`KIND_SHED`] + [`HDR_RETRY_AFTER_SECS`]);
//! 3. admitted requests queue in a [`BatchAssembler`] which dispatches a batch when
//!    `max_batch_size` is reached or the oldest entry's latency budget expires;
//! 4. batches route to the least-loaded replica of a [`ReplicaPool`], whose worker
//!    executes them and stamps the paper's `service` / `inference` time decomposition
//!    onto each reply.
//!
//! With the default [`ServingConfig`] (1 replica, batch size 1) every request
//! dispatches immediately to a single host — the seed-era behaviour, bit for bit.
//!
//! Lock order: the serve loop owns the assembler outright (no lock); the pool's replica
//! list lock is only ever taken *after* assembler operations complete, and replica
//! workers take the host `serve_lock` without holding the replica-list lock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hpcml_comm::message::Message;
use hpcml_comm::reqrep::{ReqRepServer, Responder, HDR_ENQUEUED_AT};
use hpcml_sim::clock::SharedClock;
use hpcml_sim::dist::Dist;

use crate::batcher::{BatchAssembler, ServingConfig};
use crate::host::ModelHost;
use crate::pool::{null_sink, BatchItem, ReplicaPool, SharedMetricsSink};
use crate::protocol::*;
use crate::request::InferenceRequest;

/// How long the serve loop blocks on the endpoint before re-checking its stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Floor on the batch-deadline wait, so a near-due budget never busy-spins.
const MIN_WAIT_SECS: f64 = 0.000_05;

/// The serve loop of one service instance.
pub struct InferenceService {
    name: String,
    /// The first replica's host, kept for readiness probes and spec queries.
    primary: Arc<ModelHost>,
    pool: Arc<ReplicaPool>,
    clock: SharedClock,
    config: ServingConfig,
    /// Request parsing/serialisation overhead (the non-queue part of `service` time).
    handling_overhead: Dist,
    rng: Mutex<StdRng>,
    requests_served: AtomicU64,
    sink: SharedMetricsSink,
}

impl std::fmt::Debug for InferenceService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceService")
            .field("name", &self.name)
            .field("model", &self.primary.spec().name)
            .field("replicas", &self.pool.replica_count())
            .field("max_batch_size", &self.config.max_batch_size)
            .field("requests_served", &self.requests_served())
            .finish()
    }
}

impl InferenceService {
    /// Create a single-replica, unbatched service around one model host — the legacy
    /// shape, equivalent to `with_config` with [`ServingConfig::default`].
    pub fn new(
        name: impl Into<String>,
        host: Arc<ModelHost>,
        clock: SharedClock,
        seed: u64,
    ) -> Self {
        Self::with_config(
            name,
            vec![host],
            clock,
            seed,
            ServingConfig::default(),
            null_sink(),
        )
    }

    /// Create a service over explicit replicas with a full serving configuration.
    ///
    /// # Panics
    /// Panics when `hosts` is empty — a service needs at least one replica.
    pub fn with_config(
        name: impl Into<String>,
        hosts: Vec<Arc<ModelHost>>,
        clock: SharedClock,
        seed: u64,
        config: ServingConfig,
        sink: SharedMetricsSink,
    ) -> Self {
        assert!(!hosts.is_empty(), "a service needs at least one replica");
        let primary = Arc::clone(&hosts[0]);
        let pool = Arc::new(ReplicaPool::new(
            hosts,
            Arc::clone(&clock),
            Arc::clone(&sink),
        ));
        InferenceService {
            name: name.into(),
            primary,
            pool,
            clock,
            config,
            // Parsing + reply serialisation: tens of microseconds, so the "service"
            // component stays below the network latency for NOOP calls (Figs. 4-5).
            handling_overhead: Dist::normal(0.00003, 0.00001),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            requests_served: AtomicU64::new(0),
            sink,
        }
    }

    /// Service name (usually the service task id).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primary replica's model host.
    pub fn host(&self) -> &Arc<ModelHost> {
        &self.primary
    }

    /// The replica pool behind this service.
    pub fn pool(&self) -> &Arc<ReplicaPool> {
        &self.pool
    }

    /// The serving configuration in effect.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Inference requests admitted by this service loop.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Run the serve loop until `stop` is set or a shutdown message arrives.
    /// Returns the number of messages handled in this invocation. On exit the
    /// assembler is flushed and the pool quiesced, so every admitted request is
    /// answered before the loop returns.
    pub fn serve(&self, endpoint: &ReqRepServer, stop: &AtomicBool) -> u64 {
        let mut served = 0u64;
        let mut assembler: BatchAssembler<BatchItem> = BatchAssembler::new(
            self.config.max_batch_size,
            self.config.batch_latency_budget_secs,
        );
        let admit_chunk = self.config.max_batch_size.max(16);
        'serve: while !stop.load(Ordering::Acquire) {
            self.flush_ready(&mut assembler, false);
            match endpoint.recv_batch(admit_chunk, self.recv_timeout_for(&assembler)) {
                Ok(burst) => {
                    for (msg, responder) in burst {
                        if msg.kind == KIND_SHUTDOWN {
                            let reply = Message::new(msg.topic.clone(), KIND_PONG)
                                .with_header("stopping", "true");
                            let _ = responder.reply(reply);
                            break 'serve;
                        }
                        self.admit(msg, responder, &mut assembler);
                        served += 1;
                    }
                }
                Err(hpcml_comm::CommError::Timeout) => {
                    // Liveness valve: a manual clock (scale = ∞) never expires a
                    // virtual budget from inside this loop, so an idle wait flushes
                    // whatever is queued rather than stranding it.
                    if self.clock.scale().is_infinite() {
                        self.flush_ready(&mut assembler, true);
                    }
                }
                Err(_) => break,
            }
        }
        self.flush_ready(&mut assembler, true);
        self.pool.quiesce();
        served
    }

    /// Real-time receive timeout for the next wait: the virtual time until the oldest
    /// assembler entry's budget expires, converted through the clock scale.
    fn recv_timeout_for(&self, assembler: &BatchAssembler<BatchItem>) -> Duration {
        match assembler.secs_until_due(self.clock.now().as_secs_f64()) {
            None => POLL_INTERVAL,
            Some(due) => {
                let scale = self.clock.scale();
                let real = if scale.is_finite() && scale > 0.0 {
                    due.max(0.0) / scale
                } else {
                    0.0
                };
                Duration::from_secs_f64(real.clamp(MIN_WAIT_SECS, POLL_INTERVAL.as_secs_f64()))
            }
        }
    }

    /// Dispatch every due batch to the pool, stamping each member's assembler wait.
    fn flush_ready(&self, assembler: &mut BatchAssembler<BatchItem>, force: bool) {
        let now = self.clock.now().as_secs_f64();
        while let Some(batch) = assembler.take_ready(now, force) {
            let items: Vec<BatchItem> = batch
                .into_iter()
                .map(|d| {
                    let mut item = d.item;
                    item.batch_wait_secs = (now - d.arrival_secs).max(0.0);
                    item.dispatched_secs = now;
                    item
                })
                .collect();
            self.pool.dispatch(items);
        }
    }

    /// Handle one received message: control messages answer inline, inference
    /// requests pass admission control into the assembler.
    fn admit(&self, msg: Message, responder: Responder, assembler: &mut BatchAssembler<BatchItem>) {
        match msg.kind.as_str() {
            KIND_PING => {
                let ready = self.primary.is_loaded();
                let reply = Message::new(msg.topic.clone(), KIND_PONG)
                    .with_header("ready", if ready { "true" } else { "false" })
                    .with_header(HDR_MODEL, self.primary.spec().name.clone());
                let _ = responder.reply(reply);
            }
            KIND_INFER_REQUEST => self.admit_inference(msg, responder, assembler),
            other => {
                let reply = Message::new(msg.topic.clone(), KIND_ERROR)
                    .with_header(HDR_ERROR, format!("unknown message kind: {other}"));
                let _ = responder.reply(reply);
            }
        }
    }

    fn admit_inference(
        &self,
        msg: Message,
        responder: Responder,
        assembler: &mut BatchAssembler<BatchItem>,
    ) {
        let arrived_secs = self.clock.now().as_secs_f64();
        // Time already spent in the endpoint queue counts toward `service` time; the
        // client stamps its enqueue instant after link traversal.
        let admission_queue_secs = msg
            .f64_header(HDR_ENQUEUED_AT)
            .map(|enq| (arrived_secs - enq).max(0.0))
            .unwrap_or(0.0);

        let view = match InferenceRequest::decode_view(&msg.payload) {
            Ok(view) => view,
            Err(err) => {
                let reply = Message::new(msg.topic.clone(), KIND_ERROR)
                    .with_header(HDR_ERROR, err.to_string());
                let _ = responder.reply(reply);
                return;
            }
        };

        // Bounded admission queue: beyond capacity the request is shed, not queued.
        if assembler.len() >= self.config.queue_capacity {
            self.shed(
                msg.topic.clone(),
                view.request_id,
                responder,
                assembler.len(),
            );
            return;
        }

        // Deadline-aware shedding: reject now (cheap) rather than time out later
        // (expensive) when the estimated queue delay already exceeds the deadline.
        if self.config.shed_deadlines {
            if let Some(deadline_secs) = msg.f64_header(HDR_DEADLINE_SECS) {
                let est = self.pool.estimated_queue_delay_secs(assembler.len());
                if est > deadline_secs {
                    self.shed(
                        msg.topic.clone(),
                        view.request_id,
                        responder,
                        assembler.len(),
                    );
                    return;
                }
            }
        }

        // Parsing / deserialisation overhead.
        let handling_secs = {
            let mut rng = self.rng.lock();
            self.handling_overhead.sample(&mut *rng).max(0.0)
        };
        self.clock.sleep(Duration::from_secs_f64(handling_secs));

        let request = view.to_request();
        assembler.push(
            BatchItem {
                request,
                responder,
                topic: msg.topic.clone(),
                admission_queue_secs,
                handling_secs,
                batch_wait_secs: 0.0,
                dispatched_secs: arrived_secs,
            },
            arrived_secs,
        );
        self.requests_served.fetch_add(1, Ordering::Relaxed);
        self.sink
            .record("serving.queue.depth", assembler.len() as f64);
    }

    fn shed(&self, topic: String, request_id: &str, responder: Responder, queued: usize) {
        let retry_after_secs = self
            .pool
            .estimated_queue_delay_secs(queued)
            .max(self.config.batch_latency_budget_secs);
        let reply = Message::new(topic, KIND_SHED)
            .with_header(HDR_REQUEST_ID, request_id)
            .with_f64_header(HDR_RETRY_AFTER_SECS, retry_after_secs);
        let _ = responder.reply(reply);
        self.sink.record("serving.shed", 1.0);
    }
}

/// Build the wire message for an inference request (client side helper).
pub fn inference_request_message(endpoint: &str, request: &InferenceRequest) -> Message {
    Message::new(endpoint, KIND_INFER_REQUEST)
        .with_header(HDR_REQUEST_ID, request.request_id.clone())
        .with_payload(request.encode_payload())
}

/// [`inference_request_message`] with a completion deadline attached: the service sheds
/// the request upfront when its estimated queue delay exceeds `deadline_secs`.
pub fn inference_request_message_with_deadline(
    endpoint: &str,
    request: &InferenceRequest,
    deadline_secs: f64,
) -> Message {
    inference_request_message(endpoint, request).with_f64_header(HDR_DEADLINE_SECS, deadline_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::shared_host;
    use crate::model::ModelSpec;
    use hpcml_comm::link::Link;
    use hpcml_sim::clock::ClockSpec;
    use std::thread;

    // Moderate compression: real scheduling jitter (tens of µs) stays well below the
    // virtual durations asserted on (hundreds of ms and up).
    fn clock() -> SharedClock {
        ClockSpec::scaled(1000.0).build()
    }

    fn start_service(
        spec: ModelSpec,
        clock: SharedClock,
    ) -> (
        Arc<AtomicBool>,
        thread::JoinHandle<u64>,
        hpcml_comm::ReqRepClient,
    ) {
        start_with_config(spec, clock, 1, ServingConfig::default())
    }

    fn start_with_config(
        spec: ModelSpec,
        clock: SharedClock,
        replicas: usize,
        config: ServingConfig,
    ) -> (
        Arc<AtomicBool>,
        thread::JoinHandle<u64>,
        hpcml_comm::ReqRepClient,
    ) {
        let hosts: Vec<Arc<ModelHost>> = (0..replicas.max(1))
            .map(|i| {
                let h = shared_host(spec.clone(), Arc::clone(&clock), 7 + i as u64);
                h.load();
                h
            })
            .collect();
        let service = InferenceService::with_config(
            "svc.test",
            hosts,
            Arc::clone(&clock),
            8,
            config,
            null_sink(),
        );
        let endpoint = ReqRepServer::new("svc.test");
        let client = endpoint.client(Link::instant(Arc::clone(&clock)));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::spawn(move || service.serve(&endpoint, &stop2));
        (stop, handle, client)
    }

    #[test]
    fn ping_reports_readiness() {
        let c = clock();
        let (stop, handle, client) = start_service(ModelSpec::noop(), Arc::clone(&c));
        let reply = client.request(Message::new("svc.test", KIND_PING)).unwrap();
        assert_eq!(reply.kind, KIND_PONG);
        assert_eq!(reply.header("ready"), Some("true"));
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn noop_inference_has_negligible_inference_time() {
        let c = clock();
        let (stop, handle, client) = start_service(ModelSpec::noop(), Arc::clone(&c));
        let req = InferenceRequest::new("ping", 1).from_client("task.0");
        let reply = client
            .request(inference_request_message("svc.test", &req))
            .unwrap();
        assert_eq!(reply.kind, KIND_INFER_REPLY);
        assert_eq!(reply.f64_header(HDR_INFERENCE_SECS), Some(0.0));
        assert!(reply.f64_header(HDR_SERVICE_SECS).unwrap() >= 0.0);
        assert_eq!(reply.header(HDR_MODEL), Some("noop"));
        assert_eq!(reply.header(HDR_BATCH_SIZE), Some("1"));
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn llm_inference_reports_dominant_inference_time() {
        let c = clock();
        let (stop, handle, client) = start_service(ModelSpec::sim_llama_8b(), Arc::clone(&c));
        let req = InferenceRequest::new("word ".repeat(60), 128).from_client("task.1");
        let reply = client
            .request(inference_request_message("svc.test", &req))
            .unwrap();
        assert_eq!(reply.kind, KIND_INFER_REPLY);
        let inference = reply.f64_header(HDR_INFERENCE_SECS).unwrap();
        let service = reply.f64_header(HDR_SERVICE_SECS).unwrap();
        assert!(inference > 0.5, "inference {inference}");
        assert!(
            service < inference,
            "service {service} must be dwarfed by inference {inference}"
        );
        let tokens: u32 = reply
            .header(HDR_COMPLETION_TOKENS)
            .unwrap()
            .parse()
            .unwrap();
        assert!(tokens >= 1);
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn malformed_payload_yields_error_reply() {
        let c = clock();
        let (stop, handle, client) = start_service(ModelSpec::noop(), Arc::clone(&c));
        let reply = client
            .request(Message::new("svc.test", KIND_INFER_REQUEST).with_text("not a valid payload"))
            .unwrap();
        assert_eq!(reply.kind, KIND_ERROR);
        assert!(reply.header(HDR_ERROR).unwrap().contains("malformed"));
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn unknown_kind_yields_error_reply() {
        let c = clock();
        let (stop, handle, client) = start_service(ModelSpec::noop(), Arc::clone(&c));
        let reply = client
            .request(Message::new("svc.test", "bogus.kind"))
            .unwrap();
        assert_eq!(reply.kind, KIND_ERROR);
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_message_stops_the_loop() {
        let c = clock();
        let (_stop, handle, client) = start_service(ModelSpec::noop(), Arc::clone(&c));
        let reply = client
            .request(Message::new("svc.test", KIND_SHUTDOWN))
            .unwrap();
        assert_eq!(reply.header("stopping"), Some("true"));
        // The loop must exit on its own without the stop flag being set.
        handle.join().unwrap();
    }

    #[test]
    fn unloaded_host_reports_not_ready_and_errors() {
        let c = clock();
        let host = shared_host(ModelSpec::sim_llama_8b(), Arc::clone(&c), 9);
        // Deliberately not loaded.
        let service = InferenceService::new("svc.cold", Arc::clone(&host), Arc::clone(&c), 10);
        let endpoint = ReqRepServer::new("svc.cold");
        let client = endpoint.client(Link::instant(Arc::clone(&c)));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::spawn(move || service.serve(&endpoint, &stop2));

        let pong = client.request(Message::new("svc.cold", KIND_PING)).unwrap();
        assert_eq!(pong.header("ready"), Some("false"));
        let req = InferenceRequest::new("early", 4);
        let reply = client
            .request(inference_request_message("svc.cold", &req))
            .unwrap();
        assert_eq!(reply.kind, KIND_ERROR);
        assert!(reply.header(HDR_ERROR).unwrap().contains("not loaded"));

        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn queueing_shows_up_in_service_time() {
        // One single-threaded service, two clients racing: the second's reply must
        // include queue time roughly equal to the first request's inference time.
        let c = clock();
        let host = shared_host(ModelSpec::sim_llama_8b(), Arc::clone(&c), 20);
        host.load();
        let service = Arc::new(InferenceService::new("svc.q", host, Arc::clone(&c), 21));
        let endpoint = ReqRepServer::new("svc.q");
        let client_a = endpoint.client(Link::instant(Arc::clone(&c)));
        let client_b = endpoint.client(Link::instant(Arc::clone(&c)));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let svc = Arc::clone(&service);
        let server_thread = thread::spawn(move || svc.serve(&endpoint, &stop2));

        let send = |client: hpcml_comm::ReqRepClient| {
            thread::spawn(move || {
                let req = InferenceRequest::new("w ".repeat(40), 64);
                client
                    .request(inference_request_message("svc.q", &req))
                    .unwrap()
            })
        };
        let h1 = send(client_a);
        let h2 = send(client_b);
        let r1 = h1.join().unwrap();
        let r2 = h2.join().unwrap();
        let max_service = r1
            .f64_header(HDR_SERVICE_SECS)
            .unwrap()
            .max(r2.f64_header(HDR_SERVICE_SECS).unwrap());
        // One of the two requests must have waited for the other's inference.
        assert!(
            max_service > 0.3,
            "queued request should show queue time, got {max_service}"
        );
        assert_eq!(service.requests_served(), 2);
        stop.store(true, Ordering::Release);
        server_thread.join().unwrap();
    }

    #[test]
    fn batched_service_answers_every_client_with_one_dispatch() {
        let c = clock();
        let config = ServingConfig::default()
            .max_batch_size(8)
            .batch_latency_budget_secs(0.5);
        let (stop, handle, client) =
            start_with_config(ModelSpec::sim_llama_8b(), Arc::clone(&c), 1, config);
        let clients: Vec<_> = (0..8).map(|_| client.clone()).collect();
        let handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(i, cl)| {
                thread::spawn(move || {
                    let req =
                        InferenceRequest::new("q ".repeat(30), 64).from_client(format!("task.{i}"));
                    cl.request(inference_request_message("svc.test", &req))
                        .unwrap()
                })
            })
            .collect();
        let replies: Vec<Message> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut max_batch = 0usize;
        for reply in &replies {
            assert_eq!(
                reply.kind,
                KIND_INFER_REPLY,
                "{:?}",
                reply.header(HDR_ERROR)
            );
            let b: usize = reply.header(HDR_BATCH_SIZE).unwrap().parse().unwrap();
            max_batch = max_batch.max(b);
            assert!(reply.f64_header(HDR_BATCH_WAIT_SECS).unwrap() >= 0.0);
        }
        assert!(
            max_batch >= 2,
            "concurrent requests should batch, best batch {max_batch}"
        );
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn capacity_overflow_sheds_with_retry_after() {
        let c = clock();
        // Batch of 4 with a long budget and a 2-deep admission queue: three
        // near-simultaneous requests -> two queue, one sheds.
        let config = ServingConfig::default()
            .max_batch_size(4)
            .batch_latency_budget_secs(5.0)
            .queue_capacity(2);
        let (stop, handle, client) =
            start_with_config(ModelSpec::noop(), Arc::clone(&c), 1, config);
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let cl = client.clone();
                thread::spawn(move || {
                    let req = InferenceRequest::new("x", 1).from_client(format!("task.{i}"));
                    cl.request(inference_request_message("svc.test", &req))
                        .unwrap()
                })
            })
            .collect();
        let replies: Vec<Message> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let shed: Vec<&Message> = replies.iter().filter(|r| r.kind == KIND_SHED).collect();
        let ok = replies
            .iter()
            .filter(|r| r.kind == KIND_INFER_REPLY)
            .count();
        assert_eq!(shed.len(), 1, "exactly one of three must shed: {replies:?}");
        assert_eq!(ok, 2);
        assert!(shed[0].f64_header(HDR_RETRY_AFTER_SECS).unwrap() > 0.0);
        assert!(shed[0].header(HDR_REQUEST_ID).is_some());
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn deadline_miss_is_shed_upfront() {
        let c = clock();
        let (stop, handle, client) = start_with_config(
            ModelSpec::sim_llama_8b(),
            Arc::clone(&c),
            1,
            ServingConfig::default(),
        );
        // Warm the service-time estimate with one completed request.
        let warm = InferenceRequest::new("w ".repeat(40), 64);
        client
            .request(inference_request_message("svc.test", &warm))
            .unwrap();
        // Occupy the replica...
        let blocker = client.clone();
        let blocker_handle = thread::spawn(move || {
            let req = InferenceRequest::new("w ".repeat(40), 64);
            blocker
                .request(inference_request_message("svc.test", &req))
                .unwrap()
        });
        thread::sleep(Duration::from_millis(1));
        // ...then ask for an impossible deadline: the estimated queue delay (about one
        // full inference) dwarfs a 1 ms budget, so admission sheds immediately.
        let req = InferenceRequest::new("now or never", 64);
        let reply = client
            .request(inference_request_message_with_deadline(
                "svc.test", &req, 0.001,
            ))
            .unwrap();
        assert_eq!(reply.kind, KIND_SHED, "{:?}", reply.header(HDR_ERROR));
        assert!(reply.f64_header(HDR_RETRY_AFTER_SECS).unwrap() > 0.001);
        assert_eq!(blocker_handle.join().unwrap().kind, KIND_INFER_REPLY);
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }

    #[test]
    fn replicas_split_concurrent_load() {
        let c = clock();
        let config = ServingConfig::default().replicas(2);
        let (stop, handle, client) =
            start_with_config(ModelSpec::sim_llama_8b(), Arc::clone(&c), 2, config);
        let t0 = c.now();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cl = client.clone();
                thread::spawn(move || {
                    let req = InferenceRequest::new("w ".repeat(40), 64);
                    cl.request(inference_request_message("svc.test", &req))
                        .unwrap()
                })
            })
            .collect();
        let replies: Vec<Message> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let elapsed = c.now().since(t0).as_secs_f64();
        let sum_inference: f64 = replies
            .iter()
            .map(|r| r.f64_header(HDR_INFERENCE_SECS).unwrap())
            .sum();
        // Two replicas serve two requests concurrently: wall time well under the
        // serial sum (the single-replica `queueing_shows_up_in_service_time` shape).
        assert!(
            elapsed < sum_inference * 0.9,
            "elapsed {elapsed} vs serial {sum_inference}"
        );
        stop.store(true, Ordering::Release);
        handle.join().unwrap();
    }
}
