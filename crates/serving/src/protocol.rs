//! The service API protocol: message kinds and header keys.
//!
//! Every service instance, regardless of the model it hosts, speaks this protocol over
//! its REQ/REP endpoint — this is the "unified API for ML models" of the paper's §III.
//! The protocol is deliberately model-agnostic: an inference request carries an opaque
//! prompt payload; replies carry the time-decomposition headers the metrics need.

/// Message kind: inference request (client → service).
pub const KIND_INFER_REQUEST: &str = "inference.request";
/// Message kind: inference reply (service → client).
pub const KIND_INFER_REPLY: &str = "inference.reply";
/// Message kind: readiness/liveness probe (manager → service).
pub const KIND_PING: &str = "service.ping";
/// Message kind: probe acknowledgement (service → manager).
pub const KIND_PONG: &str = "service.pong";
/// Message kind: orderly shutdown request (manager → service).
pub const KIND_SHUTDOWN: &str = "service.shutdown";
/// Message kind: error reply (service → client).
pub const KIND_ERROR: &str = "service.error";

/// Header: time spent queued + parsing + serialising at the service, seconds.
pub const HDR_SERVICE_SECS: &str = "svc.service_secs";
/// Header: pure model compute time, seconds.
pub const HDR_INFERENCE_SECS: &str = "svc.inference_secs";
/// Header: name of the model that served the request.
pub const HDR_MODEL: &str = "svc.model";
/// Header: request identifier.
pub const HDR_REQUEST_ID: &str = "svc.request_id";
/// Header: number of generated tokens.
pub const HDR_COMPLETION_TOKENS: &str = "svc.completion_tokens";
/// Header: number of prompt tokens.
pub const HDR_PROMPT_TOKENS: &str = "svc.prompt_tokens";
/// Header: error description on `KIND_ERROR` replies.
pub const HDR_ERROR: &str = "svc.error";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_headers_are_distinct() {
        let all = [
            KIND_INFER_REQUEST,
            KIND_INFER_REPLY,
            KIND_PING,
            KIND_PONG,
            KIND_SHUTDOWN,
            KIND_ERROR,
            HDR_SERVICE_SECS,
            HDR_INFERENCE_SECS,
            HDR_MODEL,
            HDR_REQUEST_ID,
            HDR_COMPLETION_TOKENS,
            HDR_PROMPT_TOKENS,
            HDR_ERROR,
        ];
        let unique: std::collections::HashSet<&str> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }
}
