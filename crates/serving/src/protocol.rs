//! The service API protocol: message kinds, header keys, and typed protocol errors.
//!
//! Every service instance, regardless of the model it hosts, speaks this protocol over
//! its REQ/REP endpoint — this is the "unified API for ML models" of the paper's §III.
//! The protocol is deliberately model-agnostic: an inference request carries an opaque
//! binary prompt payload; replies carry the time-decomposition headers the metrics
//! need. Overload is part of the protocol: a service may answer a request with a
//! [`KIND_SHED`] reply carrying a retry-after hint instead of queueing it unboundedly.

/// Message kind: inference request (client → service).
pub const KIND_INFER_REQUEST: &str = "inference.request";
/// Message kind: inference reply (service → client).
pub const KIND_INFER_REPLY: &str = "inference.reply";
/// Message kind: readiness/liveness probe (manager → service).
pub const KIND_PING: &str = "service.ping";
/// Message kind: probe acknowledgement (service → manager).
pub const KIND_PONG: &str = "service.pong";
/// Message kind: orderly shutdown request (manager → service).
pub const KIND_SHUTDOWN: &str = "service.shutdown";
/// Message kind: error reply (service → client).
pub const KIND_ERROR: &str = "service.error";
/// Message kind: admission-control rejection (service → client). The reply carries
/// [`HDR_RETRY_AFTER_SECS`] — the service's estimate of when the queue will have
/// drained enough for a retry to be admitted.
pub const KIND_SHED: &str = "service.shed";

/// Header: time spent queued + parsing + serialising at the service, seconds.
pub const HDR_SERVICE_SECS: &str = "svc.service_secs";
/// Header: pure model compute time, seconds.
pub const HDR_INFERENCE_SECS: &str = "svc.inference_secs";
/// Header: name of the model that served the request.
pub const HDR_MODEL: &str = "svc.model";
/// Header: request identifier.
pub const HDR_REQUEST_ID: &str = "svc.request_id";
/// Header: number of generated tokens.
pub const HDR_COMPLETION_TOKENS: &str = "svc.completion_tokens";
/// Header: number of prompt tokens.
pub const HDR_PROMPT_TOKENS: &str = "svc.prompt_tokens";
/// Header: error description on `KIND_ERROR` replies.
pub const HDR_ERROR: &str = "svc.error";
/// Header (request): the client's queueing-delay deadline in seconds. A service with
/// admission control sheds the request when its estimated queue delay exceeds this.
pub const HDR_DEADLINE_SECS: &str = "svc.deadline_secs";
/// Header ([`KIND_SHED`] reply): suggested virtual seconds to wait before retrying.
pub const HDR_RETRY_AFTER_SECS: &str = "svc.retry_after_secs";
/// Header (reply): number of requests in the batch this request was served in.
pub const HDR_BATCH_SIZE: &str = "svc.batch_size";
/// Header (reply): virtual seconds the request waited in the batch assembler before
/// dispatch — bounded by the configured batch latency budget.
pub const HDR_BATCH_WAIT_SECS: &str = "svc.batch_wait_secs";

/// A malformed wire payload, decoded into a typed error instead of a silent `None`.
///
/// Raised by [`crate::request::InferenceRequest::decode_view`] when an inference
/// request payload does not parse; the service surfaces it verbatim on the
/// [`KIND_ERROR`] reply so clients can distinguish codec failures from host failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before the named field was complete.
    Truncated {
        /// Which field the decoder was reading when the payload ran out.
        field: &'static str,
    },
    /// The payload's version byte is not one this decoder understands.
    UnsupportedVersion(u8),
    /// A string field was not valid UTF-8.
    InvalidUtf8 {
        /// Which field held the invalid bytes.
        field: &'static str,
    },
    /// Trailing bytes after a structurally complete payload (corrupt length prefix).
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated { field } => {
                write!(f, "malformed inference request payload: truncated {field}")
            }
            ProtocolError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "malformed inference request payload: unsupported version {v}"
                )
            }
            ProtocolError::InvalidUtf8 { field } => {
                write!(
                    f,
                    "malformed inference request payload: invalid utf-8 in {field}"
                )
            }
            ProtocolError::TrailingBytes { extra } => {
                write!(
                    f,
                    "malformed inference request payload: {extra} trailing bytes"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_headers_are_distinct() {
        let all = [
            KIND_INFER_REQUEST,
            KIND_INFER_REPLY,
            KIND_PING,
            KIND_PONG,
            KIND_SHUTDOWN,
            KIND_ERROR,
            KIND_SHED,
            HDR_SERVICE_SECS,
            HDR_INFERENCE_SECS,
            HDR_MODEL,
            HDR_REQUEST_ID,
            HDR_COMPLETION_TOKENS,
            HDR_PROMPT_TOKENS,
            HDR_ERROR,
            HDR_DEADLINE_SECS,
            HDR_RETRY_AFTER_SECS,
            HDR_BATCH_SIZE,
            HDR_BATCH_WAIT_SECS,
        ];
        let unique: std::collections::HashSet<&str> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn protocol_errors_display_as_malformed() {
        for err in [
            ProtocolError::Truncated { field: "prompt" },
            ProtocolError::UnsupportedVersion(9),
            ProtocolError::InvalidUtf8 { field: "client_id" },
            ProtocolError::TrailingBytes { extra: 3 },
        ] {
            assert!(err.to_string().contains("malformed"), "{err}");
        }
    }
}
