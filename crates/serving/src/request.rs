//! Inference request and response types exchanged over the service API.

use serde::{Deserialize, Serialize};

/// A single inference request submitted to a model service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// Client-assigned request identifier.
    pub request_id: String,
    /// Prompt text (or image descriptor for classifier models).
    pub prompt: String,
    /// Upper bound on generated tokens.
    pub max_tokens: u32,
    /// Identifier of the requesting client (task id).
    pub client_id: String,
}

impl InferenceRequest {
    /// Create a request with a generated identifier.
    pub fn new(prompt: impl Into<String>, max_tokens: u32) -> Self {
        InferenceRequest {
            request_id: hpcml_sim::ids::next_id("request"),
            prompt: prompt.into(),
            max_tokens,
            client_id: String::new(),
        }
    }

    /// Attach the requesting client's identifier.
    pub fn from_client(mut self, client_id: impl Into<String>) -> Self {
        self.client_id = client_id.into();
        self
    }

    /// Rough prompt length in tokens (whitespace tokenisation ≈ 1.3 tokens per word,
    /// which is accurate enough for duration modelling).
    pub fn prompt_tokens(&self) -> u32 {
        let words = self.prompt.split_whitespace().count() as f64;
        (words * 1.3).ceil() as u32
    }

    /// Encode to a plain-text wire payload (`request_id\nclient\nmax_tokens\nprompt`).
    pub fn to_payload(&self) -> String {
        format!(
            "{}\n{}\n{}\n{}",
            self.request_id, self.client_id, self.max_tokens, self.prompt
        )
    }

    /// Decode from the wire payload produced by [`InferenceRequest::to_payload`].
    pub fn from_payload(payload: &str) -> Option<Self> {
        let mut parts = payload.splitn(4, '\n');
        let request_id = parts.next()?.to_string();
        let client_id = parts.next()?.to_string();
        let max_tokens: u32 = parts.next()?.parse().ok()?;
        let prompt = parts.next().unwrap_or_default().to_string();
        Some(InferenceRequest {
            request_id,
            prompt,
            max_tokens,
            client_id,
        })
    }
}

/// The result of serving one inference request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceResponse {
    /// The request this responds to.
    pub request_id: String,
    /// Generated text (synthetic in this reproduction).
    pub text: String,
    /// Number of prompt tokens processed.
    pub prompt_tokens: u32,
    /// Number of tokens generated.
    pub completion_tokens: u32,
    /// Pure model compute time, seconds (the paper's `inference` component).
    pub inference_secs: f64,
    /// Time spent queued and being parsed/serialised by the service, seconds (the
    /// paper's `service` component).
    pub service_secs: f64,
    /// Name of the model that served the request.
    pub model: String,
}

impl InferenceResponse {
    /// Total time spent at the service (queue + handling + compute).
    pub fn server_side_secs(&self) -> f64 {
        self.inference_secs + self.service_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_and_token_estimate() {
        let r = InferenceRequest::new("what is the mechanism of low dose radiation damage", 128)
            .from_client("task.000001");
        assert_eq!(r.max_tokens, 128);
        assert_eq!(r.client_id, "task.000001");
        assert!(r.request_id.starts_with("request."));
        // 9 words * 1.3 = 11.7 -> 12 tokens
        assert_eq!(r.prompt_tokens(), 12);
    }

    #[test]
    fn empty_prompt_has_zero_tokens() {
        let r = InferenceRequest::new("", 8);
        assert_eq!(r.prompt_tokens(), 0);
    }

    #[test]
    fn payload_roundtrip() {
        let r =
            InferenceRequest::new("multi\nline\nprompt with newlines", 64).from_client("task.7");
        let decoded = InferenceRequest::from_payload(&r.to_payload()).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn payload_rejects_garbage() {
        assert!(InferenceRequest::from_payload("only-one-field").is_none());
        assert!(InferenceRequest::from_payload("a\nb\nnot-a-number\nprompt").is_none());
    }

    #[test]
    fn response_totals() {
        let resp = InferenceResponse {
            request_id: "request.000001".into(),
            text: "answer".into(),
            prompt_tokens: 10,
            completion_tokens: 50,
            inference_secs: 2.5,
            service_secs: 0.01,
            model: "llama-8b".into(),
        };
        assert!((resp.server_side_secs() - 2.51).abs() < 1e-12);
    }
}
