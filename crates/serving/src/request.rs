//! Inference request and response types exchanged over the service API.
//!
//! Requests cross the wire as a small length-prefixed binary payload (the same codec
//! idiom as `hpcml_comm::Message`): a version byte followed by length-prefixed string
//! fields and a fixed-width token bound. [`InferenceRequest::decode_view`] decodes a
//! borrowed [`InferenceRequestView`] with zero allocation — the hot admission path
//! inspects ids without materialising owned strings — and malformed payloads surface
//! as a typed [`ProtocolError`] instead of a silent `None`.

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::protocol::ProtocolError;

/// Wire version of the request payload codec.
const REQUEST_WIRE_VERSION: u8 = 1;

/// A single inference request submitted to a model service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// Client-assigned request identifier.
    pub request_id: String,
    /// Prompt text (or image descriptor for classifier models).
    pub prompt: String,
    /// Upper bound on generated tokens.
    pub max_tokens: u32,
    /// Identifier of the requesting client (task id).
    pub client_id: String,
}

impl InferenceRequest {
    /// Create a request with a generated identifier.
    pub fn new(prompt: impl Into<String>, max_tokens: u32) -> Self {
        InferenceRequest {
            request_id: hpcml_sim::ids::next_id("request"),
            prompt: prompt.into(),
            max_tokens,
            client_id: String::new(),
        }
    }

    /// Attach the requesting client's identifier.
    pub fn from_client(mut self, client_id: impl Into<String>) -> Self {
        self.client_id = client_id.into();
        self
    }

    /// Rough prompt length in tokens (whitespace tokenisation ≈ 1.3 tokens per word,
    /// which is accurate enough for duration modelling).
    pub fn prompt_tokens(&self) -> u32 {
        let words = self.prompt.split_whitespace().count() as f64;
        (words * 1.3).ceil() as u32
    }

    /// Exact encoded payload size in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + 4 + self.request_id.len() + 4 + self.client_id.len() + 4 + 4 + self.prompt.len()
    }

    /// Encode to the binary wire payload.
    pub fn encode_payload(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u8(REQUEST_WIRE_VERSION);
        put_str(&mut buf, &self.request_id);
        put_str(&mut buf, &self.client_id);
        buf.put_u32(self.max_tokens);
        put_str(&mut buf, &self.prompt);
        debug_assert_eq!(buf.len(), self.encoded_len(), "encoded_len must be exact");
        buf.freeze()
    }

    /// Decode a borrowed, zero-allocation view of an encoded payload.
    pub fn decode_view(payload: &[u8]) -> Result<InferenceRequestView<'_>, ProtocolError> {
        let mut cur = Cursor {
            data: payload,
            at: 0,
        };
        let version = cur.u8("version")?;
        if version != REQUEST_WIRE_VERSION {
            return Err(ProtocolError::UnsupportedVersion(version));
        }
        let request_id = cur.str_field("request_id")?;
        let client_id = cur.str_field("client_id")?;
        let max_tokens = cur.u32("max_tokens")?;
        let prompt = cur.str_field("prompt")?;
        if cur.at != payload.len() {
            return Err(ProtocolError::TrailingBytes {
                extra: payload.len() - cur.at,
            });
        }
        Ok(InferenceRequestView {
            request_id,
            client_id,
            max_tokens,
            prompt,
        })
    }

    /// Decode an owned request from an encoded payload.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, ProtocolError> {
        Self::decode_view(payload).map(|v| v.to_request())
    }
}

/// Borrowed decode of one request payload: every field points into the source buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferenceRequestView<'a> {
    /// Client-assigned request identifier.
    pub request_id: &'a str,
    /// Identifier of the requesting client.
    pub client_id: &'a str,
    /// Upper bound on generated tokens.
    pub max_tokens: u32,
    /// Prompt text.
    pub prompt: &'a str,
}

impl InferenceRequestView<'_> {
    /// Materialise an owned [`InferenceRequest`] (copies; call once admission decided).
    pub fn to_request(&self) -> InferenceRequest {
        InferenceRequest {
            request_id: self.request_id.to_string(),
            prompt: self.prompt.to_string(),
            max_tokens: self.max_tokens,
            client_id: self.client_id.to_string(),
        }
    }
}

/// Borrowing cursor over an encoded payload (mirror of the `hpcml_comm` codec cursor,
/// with field names threaded through for typed errors).
struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .at
            .checked_add(n)
            .ok_or(ProtocolError::Truncated { field })?;
        if end > self.data.len() {
            return Err(ProtocolError::Truncated { field });
        }
        let out = &self.data[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, ProtocolError> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, ProtocolError> {
        Ok(u32::from_be_bytes(
            self.take(4, field)?.try_into().expect("4 bytes"),
        ))
    }

    fn str_field(&mut self, field: &'static str) -> Result<&'a str, ProtocolError> {
        let len = self.u32(field)? as usize;
        let raw = self.take(len, field)?;
        std::str::from_utf8(raw).map_err(|_| ProtocolError::InvalidUtf8 { field })
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// The result of serving one inference request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceResponse {
    /// The request this responds to.
    pub request_id: String,
    /// Generated text (synthetic in this reproduction).
    pub text: String,
    /// Number of prompt tokens processed.
    pub prompt_tokens: u32,
    /// Number of tokens generated.
    pub completion_tokens: u32,
    /// Pure model compute time, seconds (the paper's `inference` component).
    pub inference_secs: f64,
    /// Time spent queued and being parsed/serialised by the service, seconds (the
    /// paper's `service` component).
    pub service_secs: f64,
    /// Name of the model that served the request.
    pub model: String,
}

impl InferenceResponse {
    /// Total time spent at the service (queue + handling + compute).
    pub fn server_side_secs(&self) -> f64 {
        self.inference_secs + self.service_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_and_token_estimate() {
        let r = InferenceRequest::new("what is the mechanism of low dose radiation damage", 128)
            .from_client("task.000001");
        assert_eq!(r.max_tokens, 128);
        assert_eq!(r.client_id, "task.000001");
        assert!(r.request_id.starts_with("request."));
        // 9 words * 1.3 = 11.7 -> 12 tokens
        assert_eq!(r.prompt_tokens(), 12);
    }

    #[test]
    fn empty_prompt_has_zero_tokens() {
        let r = InferenceRequest::new("", 8);
        assert_eq!(r.prompt_tokens(), 0);
    }

    #[test]
    fn payload_roundtrip() {
        let r =
            InferenceRequest::new("multi\nline\nprompt with newlines", 64).from_client("task.7");
        let encoded = r.encode_payload();
        assert_eq!(encoded.len(), r.encoded_len(), "encoded_len is exact");
        let decoded = InferenceRequest::decode_payload(&encoded).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn payload_roundtrip_preserves_hostile_field_contents() {
        // The seed-era newline-delimited codec could not carry newlines in the id or
        // client fields; the length-prefixed codec must round-trip anything.
        let r = InferenceRequest {
            request_id: "id\nwith\nnewlines".into(),
            prompt: "unicode ∞ prompt \0 with nul".into(),
            max_tokens: u32::MAX,
            client_id: "client\n\n".into(),
        };
        let decoded = InferenceRequest::decode_payload(&r.encode_payload()).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn decode_view_borrows_from_the_buffer() {
        let r = InferenceRequest::new("zero copy decode", 32).from_client("task.9");
        let encoded = r.encode_payload();
        let view = InferenceRequest::decode_view(&encoded).unwrap();
        assert_eq!(view.request_id, r.request_id);
        assert_eq!(view.client_id, "task.9");
        assert_eq!(view.max_tokens, 32);
        assert_eq!(view.prompt, "zero copy decode");
        let buf_range = encoded.as_ptr() as usize..encoded.as_ptr() as usize + encoded.len();
        assert!(
            buf_range.contains(&(view.prompt.as_ptr() as usize)),
            "prompt borrows"
        );
        assert_eq!(view.to_request(), r);
    }

    #[test]
    fn decode_rejects_garbage_with_typed_errors() {
        assert_eq!(
            InferenceRequest::decode_view(b""),
            Err(ProtocolError::Truncated { field: "version" })
        );
        assert_eq!(
            InferenceRequest::decode_view(&[99]),
            Err(ProtocolError::UnsupportedVersion(99))
        );
        // Valid frame truncated at every prefix length must fail as Truncated.
        let encoded = InferenceRequest::new("p", 1)
            .from_client("c")
            .encode_payload();
        for cut in 0..encoded.len() {
            let err = InferenceRequest::decode_view(&encoded[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ProtocolError::Truncated { .. } | ProtocolError::UnsupportedVersion(_)
                ),
                "cut at {cut}: {err:?}"
            );
        }
        // Trailing bytes after a complete frame are corruption, not padding.
        let mut extra = encoded.to_vec();
        extra.push(0);
        assert_eq!(
            InferenceRequest::decode_view(&extra),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let r = InferenceRequest::new("ok", 1).from_client("c");
        let mut raw = r.encode_payload().to_vec();
        // Corrupt the last prompt byte into an invalid UTF-8 continuation.
        let n = raw.len();
        raw[n - 1] = 0xFF;
        assert_eq!(
            InferenceRequest::decode_view(&raw),
            Err(ProtocolError::InvalidUtf8 { field: "prompt" })
        );
    }

    #[test]
    fn response_totals() {
        let resp = InferenceResponse {
            request_id: "request.000001".into(),
            text: "answer".into(),
            prompt_tokens: 10,
            completion_tokens: 50,
            inference_secs: 2.5,
            service_secs: 0.01,
            model: "llama-8b".into(),
        };
        assert!((resp.server_side_secs() - 2.51).abs() < 1e-12);
    }
}
