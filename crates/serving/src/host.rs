//! The model host: an Ollama stand-in.
//!
//! A [`ModelHost`] owns one [`ModelBackend`], loads it (spending the load time on the
//! virtual clock — this is the `init` component of the paper's bootstrap time), and then
//! serves inference requests **one at a time**, exactly like the paper's current
//! implementation: "services are single-threaded, and, as such, they only handle one
//! request at a time, queuing further incoming requests" (§IV-A).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hpcml_sim::clock::SharedClock;

use crate::backend::{BatchResult, ModelBackend, NoopBackend, SimLlmBackend};
use crate::model::{ModelKind, ModelSpec};
use crate::request::{InferenceRequest, InferenceResponse};

/// Errors raised by a model host.
#[derive(Debug, Clone, PartialEq)]
pub enum HostError {
    /// A request arrived before the model finished loading.
    NotLoaded,
    /// The model does not fit the GPU memory of the slot it was placed on.
    InsufficientGpuMemory {
        /// GiB needed by the model.
        needed_gib: f64,
        /// GiB available on the assigned GPU.
        available_gib: f64,
    },
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::NotLoaded => write!(f, "model is not loaded yet"),
            HostError::InsufficientGpuMemory { needed_gib, available_gib } => write!(
                f,
                "model needs {needed_gib:.1} GiB of GPU memory but only {available_gib:.1} GiB is available"
            ),
        }
    }
}

impl std::error::Error for HostError {}

/// Hosts one model instance: load once, then serve requests sequentially.
pub struct ModelHost {
    backend: Box<dyn ModelBackend>,
    clock: SharedClock,
    rng: Mutex<StdRng>,
    loaded: AtomicBool,
    requests_served: AtomicU64,
    /// Serialises request handling: a single-threaded backend can only run one
    /// inference at a time even if multiple serve threads share the host.
    serve_lock: Mutex<()>,
}

impl std::fmt::Debug for ModelHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelHost")
            .field("model", &self.backend.spec().name)
            .field("loaded", &self.is_loaded())
            .field("requests_served", &self.requests_served())
            .finish()
    }
}

impl ModelHost {
    /// Create a host around an explicit backend.
    pub fn new(backend: Box<dyn ModelBackend>, clock: SharedClock, seed: u64) -> Self {
        ModelHost {
            backend,
            clock,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            loaded: AtomicBool::new(false),
            requests_served: AtomicU64::new(0),
            serve_lock: Mutex::new(()),
        }
    }

    /// Create a host for a catalog model, choosing the right backend kind.
    pub fn from_spec(spec: ModelSpec, clock: SharedClock, seed: u64) -> Self {
        let backend: Box<dyn ModelBackend> = match spec.kind {
            ModelKind::Noop => Box::new(NoopBackend::new()),
            _ => Box::new(SimLlmBackend::new(spec)),
        };
        Self::new(backend, clock, seed)
    }

    /// The hosted model's specification.
    pub fn spec(&self) -> &ModelSpec {
        self.backend.spec()
    }

    /// Whether [`ModelHost::load`] has completed.
    pub fn is_loaded(&self) -> bool {
        self.loaded.load(Ordering::Acquire)
    }

    /// Number of requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Check that the model fits a GPU with `available_gib` of memory.
    pub fn check_gpu_fit(&self, available_gib: f64) -> Result<(), HostError> {
        let spec = self.backend.spec();
        if spec.fits_gpu(available_gib) {
            Ok(())
        } else {
            Err(HostError::InsufficientGpuMemory {
                needed_gib: spec.gpu_mem_gib,
                available_gib,
            })
        }
    }

    /// Load and initialise the model, spending the sampled load time on the virtual
    /// clock. Returns the load duration in seconds. Loading twice is a no-op.
    pub fn load(&self) -> f64 {
        if self.loaded.swap(true, Ordering::AcqRel) {
            return 0.0;
        }
        let load_secs = {
            let mut rng = self.rng.lock();
            self.backend.sample_load_secs(&mut *rng)
        };
        self.clock
            .sleep(std::time::Duration::from_secs_f64(load_secs));
        load_secs
    }

    /// Serve one inference request, spending its compute time on the virtual clock.
    ///
    /// The returned response has `service_secs = 0`; the service layer that owns the
    /// endpoint fills in queueing/parsing time.
    pub fn handle(&self, request: &InferenceRequest) -> Result<InferenceResponse, HostError> {
        if !self.is_loaded() {
            return Err(HostError::NotLoaded);
        }
        let _guard = self.serve_lock.lock();
        let result = {
            let mut rng = self.rng.lock();
            self.backend.infer(request, &mut *rng)
        };
        self.clock
            .sleep(std::time::Duration::from_secs_f64(result.compute_secs));
        self.requests_served.fetch_add(1, Ordering::Relaxed);
        Ok(InferenceResponse {
            request_id: request.request_id.clone(),
            text: result.text,
            prompt_tokens: result.prompt_tokens,
            completion_tokens: result.completion_tokens,
            inference_secs: result.compute_secs,
            service_secs: 0.0,
            model: self.backend.spec().name.clone(),
        })
    }

    /// Serve a batch of requests in one backend dispatch, spending the *batch* compute
    /// time on the virtual clock exactly once. Every member's `inference_secs` is the
    /// shared batch wall time — in continuous batching all members finish when the
    /// batch's last decode step does.
    ///
    /// Returns one response per request, in request order.
    pub fn handle_batch(
        &self,
        requests: &[InferenceRequest],
    ) -> Result<Vec<InferenceResponse>, HostError> {
        if !self.is_loaded() {
            return Err(HostError::NotLoaded);
        }
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let _guard = self.serve_lock.lock();
        let BatchResult {
            results,
            batch_compute_secs,
        } = {
            let mut rng = self.rng.lock();
            self.backend.infer_batch(requests, &mut *rng)
        };
        self.clock
            .sleep(std::time::Duration::from_secs_f64(batch_compute_secs));
        self.requests_served
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let model = self.backend.spec().name.clone();
        Ok(requests
            .iter()
            .zip(results)
            .map(|(req, result)| InferenceResponse {
                request_id: req.request_id.clone(),
                text: result.text,
                prompt_tokens: result.prompt_tokens,
                completion_tokens: result.completion_tokens,
                inference_secs: batch_compute_secs,
                service_secs: 0.0,
                model: model.clone(),
            })
            .collect())
    }

    /// The clock this host spends time on.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }
}

/// Convenience constructor used throughout the tests and benches.
pub fn shared_host(spec: ModelSpec, clock: SharedClock, seed: u64) -> Arc<ModelHost> {
    Arc::new(ModelHost::from_spec(spec, clock, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcml_sim::clock::ClockSpec;

    fn clock() -> SharedClock {
        ClockSpec::scaled(100_000.0).build()
    }

    #[test]
    fn load_spends_virtual_time_once() {
        let c = clock();
        let host = ModelHost::from_spec(ModelSpec::sim_llama_8b(), std::sync::Arc::clone(&c), 1);
        assert!(!host.is_loaded());
        let t0 = c.now();
        let load = host.load();
        assert!(
            load > 10.0,
            "llama-8b load should be tens of seconds, got {load}"
        );
        assert!(c.now().since(t0).as_secs_f64() >= load * 0.5);
        assert!(host.is_loaded());
        assert_eq!(host.load(), 0.0, "second load must be a no-op");
    }

    #[test]
    fn handle_before_load_fails() {
        let host = ModelHost::from_spec(ModelSpec::noop(), clock(), 2);
        let err = host.handle(&InferenceRequest::new("hi", 4)).unwrap_err();
        assert_eq!(err, HostError::NotLoaded);
    }

    #[test]
    fn noop_host_serves_instantly() {
        let c = clock();
        let host = ModelHost::from_spec(ModelSpec::noop(), std::sync::Arc::clone(&c), 3);
        assert_eq!(host.load(), 0.0);
        let resp = host.handle(&InferenceRequest::new("ping", 1)).unwrap();
        assert_eq!(resp.inference_secs, 0.0);
        assert_eq!(resp.model, "noop");
        assert_eq!(host.requests_served(), 1);
    }

    #[test]
    fn llm_host_spends_inference_time() {
        let c = clock();
        let host = ModelHost::from_spec(ModelSpec::sim_llama_8b(), std::sync::Arc::clone(&c), 4);
        host.load();
        let t0 = c.now();
        let resp = host
            .handle(&InferenceRequest::new("a ".repeat(50).as_str(), 128))
            .unwrap();
        let elapsed = c.now().since(t0).as_secs_f64();
        assert!(resp.inference_secs > 0.5);
        assert!(elapsed >= resp.inference_secs * 0.5);
        assert_eq!(resp.service_secs, 0.0);
        assert!(resp.server_side_secs() > 0.5);
    }

    #[test]
    fn batch_handle_spends_batch_time_once() {
        // Moderate compression so scheduler jitter (tens of µs real = tens of ms
        // virtual) stays far below the asserted bound of ~2x the batch seconds.
        let c = ClockSpec::scaled(1000.0).build();
        let host = ModelHost::from_spec(ModelSpec::sim_llama_8b(), std::sync::Arc::clone(&c), 11);
        host.load();
        let requests: Vec<InferenceRequest> = (0..6)
            .map(|_| InferenceRequest::new("b ".repeat(40), 96))
            .collect();
        let t0 = c.now();
        let responses = host.handle_batch(&requests).unwrap();
        let elapsed = c.now().since(t0).as_secs_f64();
        assert_eq!(responses.len(), 6);
        let batch_secs = responses[0].inference_secs;
        assert!(responses.iter().all(|r| r.inference_secs == batch_secs));
        // The clock advanced once by the batch cost, not 6x by the solo cost.
        assert!(elapsed >= batch_secs * 0.5);
        assert!(
            elapsed < batch_secs * 3.0,
            "elapsed {elapsed} vs {batch_secs}"
        );
        assert_eq!(host.requests_served(), 6);
        // Responses preserve request order.
        for (req, resp) in requests.iter().zip(&responses) {
            assert_eq!(req.request_id, resp.request_id);
        }
    }

    #[test]
    fn batch_handle_requires_load_and_tolerates_empty() {
        let host = ModelHost::from_spec(ModelSpec::noop(), clock(), 12);
        let reqs = vec![InferenceRequest::new("x", 1)];
        assert_eq!(host.handle_batch(&reqs).unwrap_err(), HostError::NotLoaded);
        host.load();
        assert!(host.handle_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn gpu_fit_check() {
        let host = ModelHost::from_spec(ModelSpec::sim_llama_70b(), clock(), 5);
        assert!(host.check_gpu_fit(200.0).is_ok());
        let err = host.check_gpu_fit(40.0).unwrap_err();
        assert!(matches!(err, HostError::InsufficientGpuMemory { .. }));
        assert!(err.to_string().contains("GiB"));
    }

    #[test]
    fn debug_and_clock_accessors() {
        let host = shared_host(ModelSpec::noop(), clock(), 6);
        assert!(format!("{host:?}").contains("noop"));
        assert!(host.clock().scale() > 1.0);
        assert!(host.spec().is_noop());
    }
}
