//! Model backends: the pure duration/token model behind a hosted capability.
//!
//! A [`ModelBackend`] does not sleep or touch the clock; it only *computes* what an
//! inference would cost (tokens produced, seconds of GPU time). The [`crate::host::ModelHost`]
//! is responsible for spending that time on the virtual clock, which keeps backends
//! trivially testable and deterministic under a fixed RNG seed.

use rand::Rng;

use hpcml_sim::dist::Dist;

use crate::model::{ModelKind, ModelSpec};
use crate::request::InferenceRequest;

/// Outcome of one backend inference computation.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendResult {
    /// Generated text.
    pub text: String,
    /// Prompt tokens processed.
    pub prompt_tokens: u32,
    /// Tokens generated.
    pub completion_tokens: u32,
    /// GPU/compute seconds the inference takes.
    pub compute_secs: f64,
}

/// Outcome of one batched backend dispatch: the per-request results plus the wall-clock
/// compute cost of the batch as a whole (which a batching backend makes sub-linear in
/// the batch size).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// One result per request, in request order. `compute_secs` inside each entry is
    /// the request's *solo* cost; the batch shares [`BatchResult::batch_compute_secs`].
    pub results: Vec<BackendResult>,
    /// Wall-clock GPU seconds the whole batch occupies the backend.
    pub batch_compute_secs: f64,
}

/// Marginal decode-step cost of each additional sequence in a continuous batch,
/// relative to a solo sequence. Auto-regressive decoding is memory-bandwidth-bound, so
/// adding a sequence to a decode step costs far less than a full extra step — this
/// calibration (~15%) reproduces the 3-4x throughput win of continuous batching at
/// batch size 8 reported for vLLM-class servers.
pub const MARGINAL_DECODE_COST: f64 = 0.15;

/// A servable model implementation.
pub trait ModelBackend: Send + Sync {
    /// The model specification this backend implements.
    fn spec(&self) -> &ModelSpec;

    /// Sample the model load/initialisation duration in seconds.
    fn sample_load_secs<'a>(&self, rng: &mut (dyn rand::RngCore + 'a)) -> f64;

    /// Compute the result of one inference request.
    fn infer<'a>(
        &self,
        request: &InferenceRequest,
        rng: &mut (dyn rand::RngCore + 'a),
    ) -> BackendResult;

    /// Compute the result of a batched dispatch. The default loops [`ModelBackend::infer`]
    /// and sums the costs — i.e. batching buys nothing unless the backend overrides
    /// this with a sub-linear cost model.
    fn infer_batch<'a>(
        &self,
        requests: &[InferenceRequest],
        rng: &mut (dyn rand::RngCore + 'a),
    ) -> BatchResult {
        let results: Vec<BackendResult> = requests.iter().map(|r| self.infer(r, rng)).collect();
        let batch_compute_secs = results.iter().map(|r| r.compute_secs).sum();
        BatchResult {
            results,
            batch_compute_secs,
        }
    }
}

/// The NOOP backend: replies immediately with a static response (experiment 2).
#[derive(Debug, Clone)]
pub struct NoopBackend {
    spec: ModelSpec,
}

impl NoopBackend {
    /// Create a NOOP backend.
    pub fn new() -> Self {
        NoopBackend {
            spec: ModelSpec::noop(),
        }
    }
}

impl Default for NoopBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelBackend for NoopBackend {
    fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    fn sample_load_secs<'a>(&self, _rng: &mut (dyn rand::RngCore + 'a)) -> f64 {
        0.0
    }

    fn infer<'a>(
        &self,
        request: &InferenceRequest,
        _rng: &mut (dyn rand::RngCore + 'a),
    ) -> BackendResult {
        BackendResult {
            text: "noop".to_string(),
            prompt_tokens: request.prompt_tokens(),
            completion_tokens: 0,
            compute_secs: 0.0,
        }
    }
}

/// Simulated LLM backend: prompt processing + auto-regressive generation at the rates
/// given by the [`ModelSpec`], with a small per-request overhead and stochastic output
/// length.
#[derive(Debug, Clone)]
pub struct SimLlmBackend {
    spec: ModelSpec,
    /// Fraction of `max_tokens` actually generated (models early stop tokens).
    output_fraction: Dist,
}

impl SimLlmBackend {
    /// Create a backend for the given model specification.
    pub fn new(spec: ModelSpec) -> Self {
        assert!(
            spec.kind != ModelKind::Noop,
            "use NoopBackend for the noop model"
        );
        SimLlmBackend {
            spec,
            output_fraction: Dist::TruncatedNormal {
                mean: 0.85,
                std: 0.15,
                lo: 0.2,
                hi: 1.0,
            },
        }
    }

    /// Llama-8b backend with catalog calibration.
    pub fn llama_8b() -> Self {
        Self::new(ModelSpec::sim_llama_8b())
    }

    fn generated_tokens<R: Rng + ?Sized>(&self, max_tokens: u32, rng: &mut R) -> u32 {
        if self.spec.kind == ModelKind::ImageClassifier {
            // A classifier emits a single label per request.
            return 1;
        }
        let frac = self.output_fraction.sample(rng);
        ((max_tokens as f64) * frac).round().max(1.0) as u32
    }
}

impl ModelBackend for SimLlmBackend {
    fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    fn sample_load_secs<'a>(&self, rng: &mut (dyn rand::RngCore + 'a)) -> f64 {
        self.spec.load_secs.sample(rng).max(0.0)
    }

    fn infer<'a>(
        &self,
        request: &InferenceRequest,
        rng: &mut (dyn rand::RngCore + 'a),
    ) -> BackendResult {
        let prompt_tokens = request.prompt_tokens();
        let completion_tokens = self.generated_tokens(request.max_tokens, rng);
        let prompt_secs = if self.spec.prompt_tokens_per_sec > 0.0
            && self.spec.prompt_tokens_per_sec.is_finite()
        {
            prompt_tokens as f64 / self.spec.prompt_tokens_per_sec
        } else {
            0.0
        };
        let gen_secs = if self.spec.gen_tokens_per_sec.is_finite() {
            completion_tokens as f64 / self.spec.gen_tokens_per_sec
        } else {
            0.0
        };
        let overhead = self.spec.per_request_overhead_secs.sample(rng).max(0.0);
        let compute_secs = prompt_secs + gen_secs + overhead;
        BackendResult {
            text: synth_completion(&self.spec.name, completion_tokens),
            prompt_tokens,
            completion_tokens,
            compute_secs,
        }
    }

    /// Continuous-batching cost model. Prefill of the member sequences overlaps with
    /// decode steps of the others, so the prompt phase costs the *longest* member's
    /// prefill rather than the sum; decode steps serve every live sequence at once at
    /// [`MARGINAL_DECODE_COST`] extra per additional sequence. The batch cost is
    /// clamped to `[max solo, sum of solos]`: a batch can neither beat its slowest
    /// member nor cost more than serial dispatch.
    fn infer_batch<'a>(
        &self,
        requests: &[InferenceRequest],
        rng: &mut (dyn rand::RngCore + 'a),
    ) -> BatchResult {
        let results: Vec<BackendResult> = requests.iter().map(|r| self.infer(r, rng)).collect();
        if results.len() <= 1 {
            let batch_compute_secs = results.iter().map(|r| r.compute_secs).sum();
            return BatchResult {
                results,
                batch_compute_secs,
            };
        }
        let sum_solo: f64 = results.iter().map(|r| r.compute_secs).sum();
        let max_solo = results.iter().map(|r| r.compute_secs).fold(0.0, f64::max);
        let prompt_rate = self.spec.prompt_tokens_per_sec;
        let max_prompt_secs = if prompt_rate > 0.0 && prompt_rate.is_finite() {
            results
                .iter()
                .map(|r| r.prompt_tokens as f64 / prompt_rate)
                .fold(0.0, f64::max)
        } else {
            0.0
        };
        let max_gen_tokens = results
            .iter()
            .map(|r| r.completion_tokens)
            .max()
            .unwrap_or(0) as f64;
        let gen_secs = if self.spec.gen_tokens_per_sec.is_finite() {
            (max_gen_tokens / self.spec.gen_tokens_per_sec)
                * (1.0 + (results.len() - 1) as f64 * MARGINAL_DECODE_COST)
        } else {
            0.0
        };
        let overhead = self.spec.per_request_overhead_secs.sample(rng).max(0.0);
        let batch_compute_secs = (overhead + max_prompt_secs + gen_secs).clamp(max_solo, sum_solo);
        BatchResult {
            results,
            batch_compute_secs,
        }
    }
}

/// Deterministic synthetic completion text of roughly `tokens` tokens.
fn synth_completion(model: &str, tokens: u32) -> String {
    let mut out = String::with_capacity(tokens as usize * 6);
    out.push_str("[generated by ");
    out.push_str(model);
    out.push(']');
    for i in 0..tokens {
        out.push_str(" tok");
        out.push_str(&(i % 97).to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn request(words: usize, max_tokens: u32) -> InferenceRequest {
        let prompt = vec!["radiation"; words].join(" ");
        InferenceRequest::new(prompt, max_tokens)
    }

    #[test]
    fn noop_backend_is_free() {
        let b = NoopBackend::new();
        let mut r = rng();
        assert_eq!(b.sample_load_secs(&mut r), 0.0);
        let res = b.infer(&request(20, 128), &mut r);
        assert_eq!(res.compute_secs, 0.0);
        assert_eq!(res.completion_tokens, 0);
        assert_eq!(res.text, "noop");
        assert!(b.spec().is_noop());
    }

    #[test]
    fn llm_inference_dominated_by_generation() {
        let b = SimLlmBackend::llama_8b();
        let mut r = rng();
        let res = b.infer(&request(100, 256), &mut r);
        assert!(res.completion_tokens >= 1 && res.completion_tokens <= 256);
        // ≥ 51 tokens at 40 tok/s ≈ ≥ 1.3 s; must greatly exceed communication (~ms).
        assert!(res.compute_secs > 0.5, "compute {:.3}s", res.compute_secs);
        assert!(res.prompt_tokens > 100);
        assert!(!res.text.is_empty());
    }

    #[test]
    fn llm_load_time_is_tens_of_seconds() {
        let b = SimLlmBackend::llama_8b();
        let mut r = rng();
        let mean: f64 = (0..200).map(|_| b.sample_load_secs(&mut r)).sum::<f64>() / 200.0;
        assert!((mean - 30.0).abs() < 5.0, "mean load {mean}");
    }

    #[test]
    fn longer_outputs_cost_more() {
        let b = SimLlmBackend::llama_8b();
        let mut r = rng();
        let short: f64 = (0..50)
            .map(|_| b.infer(&request(10, 16), &mut r).compute_secs)
            .sum::<f64>()
            / 50.0;
        let long: f64 = (0..50)
            .map(|_| b.infer(&request(10, 512), &mut r).compute_secs)
            .sum::<f64>()
            / 50.0;
        assert!(long > 4.0 * short, "long {long} vs short {short}");
    }

    #[test]
    fn classifier_emits_single_label() {
        let b = SimLlmBackend::new(ModelSpec::sim_vit_base());
        let mut r = rng();
        let res = b.infer(&request(5, 128), &mut r);
        assert_eq!(res.completion_tokens, 1);
        assert!(res.compute_secs < 0.1);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let b = SimLlmBackend::llama_8b();
        let req = request(30, 64);
        let a = {
            let mut r = StdRng::seed_from_u64(5);
            b.infer(&req, &mut r)
        };
        let c = {
            let mut r = StdRng::seed_from_u64(5);
            b.infer(&req, &mut r)
        };
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "NoopBackend")]
    fn sim_backend_rejects_noop_spec() {
        let _ = SimLlmBackend::new(ModelSpec::noop());
    }

    #[test]
    fn batched_dispatch_is_sublinear_for_llm() {
        let b = SimLlmBackend::llama_8b();
        let mut r = rng();
        let requests: Vec<InferenceRequest> = (0..8).map(|_| request(30, 128)).collect();
        let batch = b.infer_batch(&requests, &mut r);
        assert_eq!(batch.results.len(), 8);
        let sum_solo: f64 = batch.results.iter().map(|x| x.compute_secs).sum();
        let max_solo = batch
            .results
            .iter()
            .map(|x| x.compute_secs)
            .fold(0.0, f64::max);
        assert!(
            batch.batch_compute_secs >= max_solo,
            "a batch cannot finish before its slowest member: {} < {max_solo}",
            batch.batch_compute_secs
        );
        assert!(
            sum_solo / batch.batch_compute_secs >= 1.5,
            "8-wide continuous batch must be >= 1.5x serial: {sum_solo} vs {}",
            batch.batch_compute_secs
        );
    }

    #[test]
    fn singleton_batch_costs_the_solo_price() {
        let b = SimLlmBackend::llama_8b();
        let req = [request(20, 64)];
        let mut r = rng();
        let batch = b.infer_batch(&req, &mut r);
        assert_eq!(batch.results.len(), 1);
        assert!((batch.batch_compute_secs - batch.results[0].compute_secs).abs() < 1e-12);
    }

    #[test]
    fn default_batch_impl_is_serial() {
        // NoopBackend does not override infer_batch: the default loops infer and sums.
        let b = NoopBackend::new();
        let mut r = rng();
        let requests: Vec<InferenceRequest> = (0..4).map(|_| request(3, 8)).collect();
        let batch = b.infer_batch(&requests, &mut r);
        assert_eq!(batch.results.len(), 4);
        assert_eq!(batch.batch_compute_secs, 0.0);
    }
}
