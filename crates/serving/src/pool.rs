//! Replica pools: N `ModelHost` replicas behind one endpoint, with
//! least-outstanding-requests routing over lock-free per-replica counters.
//!
//! The serving front-end assembles batches (see [`crate::batcher`]) and hands each one
//! to [`ReplicaPool::dispatch`], which routes it to the live replica with the fewest
//! outstanding requests and enqueues it on that replica's worker channel. Each replica
//! owns a worker thread that executes batches against its [`ModelHost`] (spending the
//! batch compute time on the virtual clock) and sends the replies. Outstanding counts
//! are plain atomics — routing never takes a lock; the replica *list* sits behind a
//! `RwLock` only so replicas can join (scale-up) and leave (drain) at runtime.
//!
//! Scale-down is a drain, mirroring the scheduler's gang drains: [`ReplicaPool::begin_drain`]
//! marks a replica unroutable, in-flight batches complete, and [`ReplicaPool::reap_drained`]
//! removes it once idle.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use hpcml_comm::message::Message;
use hpcml_comm::queue::{WorkQueue, WorkQueueReceiver, WorkQueueSender};
use hpcml_comm::reqrep::Responder;
use hpcml_sim::clock::SharedClock;

use crate::host::ModelHost;
use crate::protocol::*;
use crate::request::InferenceRequest;

/// Destination for serving-plane metrics (batch sizes, queue depths, sheds). The
/// runtime wires this to its executor metrics sink; standalone uses pass
/// [`null_sink`]. Implemented for any `Fn(&str, f64)` closure.
pub trait MetricsSink: Send + Sync {
    /// Record one named scalar observation.
    fn record(&self, name: &str, value: f64);
}

impl<F: Fn(&str, f64) + Send + Sync> MetricsSink for F {
    fn record(&self, name: &str, value: f64) {
        self(name, value)
    }
}

/// Shared handle to a metrics sink.
pub type SharedMetricsSink = Arc<dyn MetricsSink>;

/// A sink that drops every observation.
pub fn null_sink() -> SharedMetricsSink {
    Arc::new(|_: &str, _: f64| {})
}

/// One admitted request travelling from the batch assembler to a replica worker.
#[derive(Debug)]
pub struct BatchItem {
    /// The parsed request.
    pub request: InferenceRequest,
    /// Reply channel back to the requesting client.
    pub responder: Responder,
    /// Topic to reply on (the request message's topic).
    pub topic: String,
    /// Virtual seconds the request spent in the endpoint queue before admission
    /// (measured at admission against the client's enqueue stamp — one thread hop of
    /// real jitter, same as the pre-batching service, so the `service` component does
    /// not additionally absorb the admission→worker hop).
    pub admission_queue_secs: f64,
    /// Parsing/serialisation overhead already spent on this request, seconds.
    pub handling_secs: f64,
    /// Virtual seconds the request waited in the batch assembler before dispatch.
    pub batch_wait_secs: f64,
    /// Virtual time the batch was dispatched to a replica, seconds. The worker prices
    /// replica queueing as `max(0, previous batch's end - dispatched_secs)`, so an
    /// idle worker contributes exactly zero instead of one thread-wake of real jitter.
    pub dispatched_secs: f64,
}

/// A batch of admitted requests dispatched as one backend call.
pub type Batch = Vec<BatchItem>;

/// One replica: a host plus its worker channel and lock-free routing state.
pub struct Replica {
    id: u64,
    host: Arc<ModelHost>,
    outstanding: Arc<AtomicU64>,
    draining: Arc<AtomicBool>,
    tx: Option<WorkQueueSender<Batch>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("model", &self.host.spec().name)
            .field("outstanding", &self.outstanding())
            .field("draining", &self.is_draining())
            .finish()
    }
}

impl Replica {
    /// Stable identifier of this replica within its pool.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The replica's model host.
    pub fn host(&self) -> &Arc<ModelHost> {
        &self.host
    }

    /// Requests dispatched to this replica and not yet completed.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Whether the replica is draining (unroutable, finishing in-flight work).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        // Close the worker channel, then wait for in-flight batches to finish so no
        // admitted request is ever dropped on scale-down or pool teardown.
        self.tx = None;
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

/// N model replicas with least-outstanding-requests routing.
pub struct ReplicaPool {
    clock: SharedClock,
    replicas: RwLock<Vec<Arc<Replica>>>,
    sink: SharedMetricsSink,
    /// EWMA of observed per-request service seconds (f64 bits), fed by the workers
    /// and read by admission control to estimate queue delay.
    est_request_secs_bits: Arc<AtomicU64>,
    next_replica_id: AtomicU64,
}

impl std::fmt::Debug for ReplicaPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaPool")
            .field("replicas", &self.replicas.read().len())
            .field("outstanding", &self.total_outstanding())
            .finish()
    }
}

impl ReplicaPool {
    /// Build a pool over pre-loaded hosts, spawning one worker thread per replica.
    pub fn new(hosts: Vec<Arc<ModelHost>>, clock: SharedClock, sink: SharedMetricsSink) -> Self {
        let pool = ReplicaPool {
            clock,
            replicas: RwLock::new(Vec::new()),
            sink,
            est_request_secs_bits: Arc::new(AtomicU64::new(0f64.to_bits())),
            next_replica_id: AtomicU64::new(0),
        };
        for host in hosts {
            pool.scale_up(host);
        }
        pool
    }

    /// Add one replica to the pool (scale-up). The host should already be loaded; the
    /// runtime places the backing slot as part of the service's gang.
    pub fn scale_up(&self, host: Arc<ModelHost>) -> u64 {
        let id = self.next_replica_id.fetch_add(1, Ordering::Relaxed);
        // Replicas feed from the comm fabric's work queue; queue depth lands in the
        // serving metrics as `comm.queue.depth` alongside the serving.* series.
        let depth_sink = Arc::clone(&self.sink);
        let (tx, rx) = WorkQueue::<Batch>::unbounded(format!("serving.replica.{id}")).split();
        let tx = tx.with_sink(Arc::new(move |name: &str, value: f64| {
            depth_sink.record(name, value);
        }));
        let outstanding = Arc::new(AtomicU64::new(0));
        let draining = Arc::new(AtomicBool::new(false));
        let worker = spawn_worker(
            Arc::clone(&host),
            rx,
            Arc::clone(&outstanding),
            Arc::clone(&self.clock),
            Arc::clone(&self.sink),
            Arc::clone(&self.est_request_secs_bits),
        );
        let replica = Arc::new(Replica {
            id,
            host,
            outstanding,
            draining,
            tx: Some(tx),
            worker: Mutex::new(Some(worker)),
        });
        self.replicas.write().push(replica);
        id
    }

    /// Route to the live replica with the fewest outstanding requests (ties break on
    /// lowest replica id). `None` when every replica is draining or the pool is empty.
    pub fn route(&self) -> Option<Arc<Replica>> {
        self.replicas
            .read()
            .iter()
            .filter(|r| !r.is_draining())
            .min_by_key(|r| (r.outstanding(), r.id))
            .cloned()
    }

    /// Dispatch one batch to the least-loaded live replica and record the routing
    /// metrics. Replies with an error to every member if no replica is routable.
    pub fn dispatch(&self, batch: Batch) {
        if batch.is_empty() {
            return;
        }
        let Some(replica) = self.route() else {
            for item in batch {
                let reply = Message::new(item.topic, KIND_ERROR)
                    .with_header(HDR_ERROR, "no live replicas")
                    .with_header(HDR_REQUEST_ID, item.request.request_id);
                let _ = item.responder.reply(reply);
            }
            return;
        };
        let n = batch.len() as u64;
        let outstanding_after = replica.outstanding.fetch_add(n, Ordering::AcqRel) + n;
        self.sink.record("serving.batch.size", batch.len() as f64);
        self.sink
            .record("serving.replica.outstanding", outstanding_after as f64);
        if let Some(tx) = replica.tx.as_ref() {
            if tx.push(batch).is_err() {
                replica.outstanding.fetch_sub(n, Ordering::AcqRel);
            }
        }
    }

    /// Sum of outstanding requests across all replicas.
    pub fn total_outstanding(&self) -> u64 {
        self.replicas.read().iter().map(|r| r.outstanding()).sum()
    }

    /// Outstanding counts per replica (diagnostics and tests).
    pub fn outstanding_per_replica(&self) -> Vec<u64> {
        self.replicas
            .read()
            .iter()
            .map(|r| r.outstanding())
            .collect()
    }

    /// Number of routable (non-draining) replicas.
    pub fn live_replicas(&self) -> usize {
        self.replicas
            .read()
            .iter()
            .filter(|r| !r.is_draining())
            .count()
    }

    /// Total number of replicas, draining included.
    pub fn replica_count(&self) -> usize {
        self.replicas.read().len()
    }

    /// The first replica's host (the "primary" for spec/readiness queries).
    pub fn primary_host(&self) -> Option<Arc<ModelHost>> {
        self.replicas.read().first().map(|r| Arc::clone(&r.host))
    }

    /// EWMA of observed per-request service seconds (0 until the first batch lands).
    pub fn est_request_secs(&self) -> f64 {
        f64::from_bits(self.est_request_secs_bits.load(Ordering::Acquire))
    }

    /// Estimated queue delay for a request arriving now with `queued` requests already
    /// waiting in the assembler: backlog divided over the live replicas, priced at the
    /// observed per-request cost. Zero until a first batch calibrates the estimate.
    pub fn estimated_queue_delay_secs(&self, queued: usize) -> f64 {
        let backlog = queued as u64 + self.total_outstanding();
        let live = self.live_replicas().max(1);
        backlog as f64 * self.est_request_secs() / live as f64
    }

    /// Begin draining the replica with the given id (scale-down). Returns `false` if
    /// the id is unknown or it is the last live replica (a pool never drains itself
    /// to zero — scale to zero by dropping the pool).
    pub fn begin_drain(&self, id: u64) -> bool {
        let replicas = self.replicas.read();
        let Some(replica) = replicas.iter().find(|r| r.id == id) else {
            return false;
        };
        if replicas.iter().filter(|r| !r.is_draining()).count() <= 1 && !replica.is_draining() {
            return false;
        }
        replica.draining.store(true, Ordering::Release);
        true
    }

    /// Remove drained replicas that have finished their in-flight work, joining their
    /// workers. Returns how many replicas were reaped.
    pub fn reap_drained(&self) -> usize {
        let mut drained: Vec<Arc<Replica>> = Vec::new();
        {
            let mut replicas = self.replicas.write();
            let mut i = 0;
            while i < replicas.len() {
                if replicas[i].is_draining() && replicas[i].outstanding() == 0 {
                    drained.push(replicas.remove(i));
                } else {
                    i += 1;
                }
            }
        }
        // Dropping the last Arc closes the channel and joins the worker (Replica::drop)
        // outside the replicas lock.
        let n = drained.len();
        drop(drained);
        n
    }

    /// Block until every dispatched request has completed (used on orderly shutdown so
    /// the serve loop never abandons admitted work). Waits in small real-time steps;
    /// the workers advance the virtual clock.
    pub fn quiesce(&self) {
        while self.total_outstanding() > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Smoothing factor of the per-request service-time EWMA.
const EST_EWMA_ALPHA: f64 = 0.3;

fn spawn_worker(
    host: Arc<ModelHost>,
    rx: WorkQueueReceiver<Batch>,
    outstanding: Arc<AtomicU64>,
    clock: SharedClock,
    sink: SharedMetricsSink,
    est_request_secs_bits: Arc<AtomicU64>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // Virtual time the previous batch finished: batches dispatched while the
        // worker was busy are priced their genuine replica queueing, batches that
        // found it idle are priced zero.
        let mut busy_until_secs = f64::NEG_INFINITY;
        while let Ok(batch) = rx.pop() {
            let n = batch.len() as u64;
            let requests: Vec<InferenceRequest> =
                batch.iter().map(|item| item.request.clone()).collect();
            match host.handle_batch(&requests) {
                Ok(responses) => {
                    let batch_secs = responses.first().map(|r| r.inference_secs).unwrap_or(0.0);
                    update_estimate(
                        &est_request_secs_bits,
                        batch_secs / batch.len().max(1) as f64,
                    );
                    for (item, resp) in batch.into_iter().zip(responses) {
                        // The paper's `service` component: endpoint queueing (measured
                        // at admission), parsing overhead, the assembler wait, and
                        // replica queueing behind earlier batches. Every term is a
                        // virtual-time quantity with no idle thread-wake inside, so
                        // real dispatch jitter never scales into the decomposition.
                        let replica_wait_secs = (busy_until_secs - item.dispatched_secs).max(0.0);
                        let queue_secs =
                            item.admission_queue_secs + item.batch_wait_secs + replica_wait_secs;
                        let service_secs = queue_secs + item.handling_secs;
                        sink.record("serving.queue.delay_secs", queue_secs);
                        let reply = Message::new(item.topic, KIND_INFER_REPLY)
                            .with_header(HDR_REQUEST_ID, resp.request_id.clone())
                            .with_header(HDR_MODEL, resp.model.clone())
                            .with_f64_header(HDR_SERVICE_SECS, service_secs)
                            .with_f64_header(HDR_INFERENCE_SECS, resp.inference_secs)
                            .with_header(HDR_PROMPT_TOKENS, resp.prompt_tokens.to_string())
                            .with_header(HDR_COMPLETION_TOKENS, resp.completion_tokens.to_string())
                            .with_f64_header(HDR_BATCH_WAIT_SECS, item.batch_wait_secs)
                            .with_header(HDR_BATCH_SIZE, requests.len().to_string())
                            .with_text(&resp.text);
                        let _ = item.responder.reply(reply);
                    }
                }
                Err(err) => {
                    for item in batch {
                        let reply = Message::new(item.topic, KIND_ERROR)
                            .with_header(HDR_ERROR, err.to_string())
                            .with_header(HDR_REQUEST_ID, item.request.request_id);
                        let _ = item.responder.reply(reply);
                    }
                }
            }
            busy_until_secs = clock.now().as_secs_f64();
            outstanding.fetch_sub(n, Ordering::AcqRel);
        }
    })
}

fn update_estimate(bits: &AtomicU64, sample_secs: f64) {
    let prev = f64::from_bits(bits.load(Ordering::Acquire));
    let next = if prev == 0.0 {
        sample_secs
    } else {
        EST_EWMA_ALPHA * sample_secs + (1.0 - EST_EWMA_ALPHA) * prev
    };
    bits.store(next.to_bits(), Ordering::Release);
}
