//! Model catalog: the specifications of the models a service can host.
//!
//! A [`ModelSpec`] is pure data: parameter count, GPU memory footprint, load-time
//! distribution, prompt-evaluation and token-generation rates. The calibration targets
//! an A100-40GB-class GPU (NCSA Delta) for the LLM entries, matching the platforms the
//! paper evaluates on; absolute numbers are documented in EXPERIMENTS.md and only the
//! resulting *shapes* (init ≫ launch ≫ publish; inference ≫ communication) are relied on.

use serde::{Deserialize, Serialize};

use hpcml_sim::dist::Dist;

/// What kind of capability a model exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Immediately replies without computing anything (experiment 2's NOOP model).
    Noop,
    /// Auto-regressive large language model (prompt eval + token generation).
    Llm,
    /// Image classifier (fixed per-image cost), used by the Cell Painting pipeline.
    ImageClassifier,
}

/// Specification of a servable model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name (e.g. `llama-8b`).
    pub name: String,
    /// Capability kind.
    pub kind: ModelKind,
    /// Number of parameters, in billions (0 for NOOP).
    pub params_b: f64,
    /// GPU memory needed to host the model, GiB.
    pub gpu_mem_gib: f64,
    /// Time to load the model into memory and initialise it (the `init` component of
    /// the paper's bootstrap time).
    pub load_secs: Dist,
    /// Prompt-processing throughput, tokens per second.
    pub prompt_tokens_per_sec: f64,
    /// Auto-regressive generation throughput, tokens per second.
    pub gen_tokens_per_sec: f64,
    /// Per-request fixed overhead inside the backend (tokenisation, sampling setup).
    pub per_request_overhead_secs: Dist,
}

impl ModelSpec {
    /// The NOOP model: replies instantly, used to measure pure communication overheads.
    pub fn noop() -> Self {
        ModelSpec {
            name: "noop".to_string(),
            kind: ModelKind::Noop,
            params_b: 0.0,
            gpu_mem_gib: 0.0,
            load_secs: Dist::constant(0.0),
            prompt_tokens_per_sec: f64::INFINITY,
            gen_tokens_per_sec: f64::INFINITY,
            per_request_overhead_secs: Dist::constant(0.0),
        }
    }

    /// Llama-3-8B-class model served by an Ollama-like host on an A100-class GPU.
    pub fn sim_llama_8b() -> Self {
        ModelSpec {
            name: "llama-8b".to_string(),
            kind: ModelKind::Llm,
            params_b: 8.0,
            gpu_mem_gib: 16.0,
            // Pulling weights from the filesystem + initialising the runtime: ~30 s,
            // with a long-ish tail (parallel filesystem contention).
            load_secs: Dist::lognormal_mean_cv(30.0, 0.15),
            prompt_tokens_per_sec: 900.0,
            gen_tokens_per_sec: 40.0,
            per_request_overhead_secs: Dist::normal(0.08, 0.02),
        }
    }

    /// Llama-3-70B-class model (multi-GPU class footprint) for scaling studies.
    pub fn sim_llama_70b() -> Self {
        ModelSpec {
            name: "llama-70b".to_string(),
            kind: ModelKind::Llm,
            params_b: 70.0,
            gpu_mem_gib: 140.0,
            load_secs: Dist::lognormal_mean_cv(180.0, 0.2),
            prompt_tokens_per_sec: 250.0,
            gen_tokens_per_sec: 12.0,
            per_request_overhead_secs: Dist::normal(0.15, 0.03),
        }
    }

    /// Mistral-7B-class model (used by the UQ pipeline's model comparison level).
    pub fn sim_mistral_7b() -> Self {
        ModelSpec {
            name: "mistral-7b".to_string(),
            kind: ModelKind::Llm,
            params_b: 7.0,
            gpu_mem_gib: 15.0,
            load_secs: Dist::lognormal_mean_cv(28.0, 0.15),
            prompt_tokens_per_sec: 950.0,
            gen_tokens_per_sec: 44.0,
            per_request_overhead_secs: Dist::normal(0.08, 0.02),
        }
    }

    /// ViT-base image classifier fine-tuned by the Cell Painting pipeline.
    pub fn sim_vit_base() -> Self {
        ModelSpec {
            name: "vit-base".to_string(),
            kind: ModelKind::ImageClassifier,
            params_b: 0.086,
            gpu_mem_gib: 2.0,
            load_secs: Dist::lognormal_mean_cv(8.0, 0.2),
            // For a classifier we interpret "tokens" as images.
            prompt_tokens_per_sec: 0.0,
            gen_tokens_per_sec: 120.0,
            per_request_overhead_secs: Dist::normal(0.01, 0.002),
        }
    }

    /// Look a catalog entry up by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "noop" => Some(Self::noop()),
            "llama-8b" => Some(Self::sim_llama_8b()),
            "llama-70b" => Some(Self::sim_llama_70b()),
            "mistral-7b" => Some(Self::sim_mistral_7b()),
            "vit-base" => Some(Self::sim_vit_base()),
            _ => None,
        }
    }

    /// All catalog entries.
    pub fn catalog() -> Vec<Self> {
        vec![
            Self::noop(),
            Self::sim_llama_8b(),
            Self::sim_llama_70b(),
            Self::sim_mistral_7b(),
            Self::sim_vit_base(),
        ]
    }

    /// Whether the model fits on a GPU with `gpu_mem_gib` of memory.
    pub fn fits_gpu(&self, gpu_mem_gib: f64) -> bool {
        self.gpu_mem_gib <= gpu_mem_gib + 1e-9
    }

    /// Whether this is the NOOP model.
    pub fn is_noop(&self) -> bool {
        self.kind == ModelKind::Noop
    }

    /// Expected (mean) load time in seconds.
    pub fn mean_load_secs(&self) -> f64 {
        self.load_secs.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_contains_expected_models() {
        let catalog = ModelSpec::catalog();
        assert_eq!(catalog.len(), 5);
        let names: Vec<&str> = catalog.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"noop"));
        assert!(names.contains(&"llama-8b"));
        for m in &catalog {
            assert_eq!(ModelSpec::by_name(&m.name).as_ref(), Some(m));
        }
        assert!(ModelSpec::by_name("gpt-5").is_none());
    }

    #[test]
    fn noop_is_free() {
        let noop = ModelSpec::noop();
        assert!(noop.is_noop());
        assert_eq!(noop.mean_load_secs(), 0.0);
        assert_eq!(noop.gpu_mem_gib, 0.0);
        assert!(noop.fits_gpu(0.0));
    }

    #[test]
    fn llama_8b_calibration_shape() {
        let m = ModelSpec::sim_llama_8b();
        assert!(!m.is_noop());
        // Load time dominates launch (~2 s) and publish (<1 s): paper Fig. 3.
        assert!(m.mean_load_secs() > 10.0);
        // Fits a single A100-40GB (Delta) and a single MI250X GCD (Frontier, 64 GB).
        assert!(m.fits_gpu(40.0));
        assert!(m.fits_gpu(64.0));
        assert!(!m.fits_gpu(8.0));
        // Generation is the slow part.
        assert!(m.gen_tokens_per_sec < m.prompt_tokens_per_sec);
    }

    #[test]
    fn bigger_models_cost_more() {
        let small = ModelSpec::sim_llama_8b();
        let big = ModelSpec::sim_llama_70b();
        assert!(big.gpu_mem_gib > small.gpu_mem_gib);
        assert!(big.mean_load_secs() > small.mean_load_secs());
        assert!(big.gen_tokens_per_sec < small.gen_tokens_per_sec);
        assert!(
            !big.fits_gpu(40.0),
            "llama-70b must not fit a single A100-40GB"
        );
    }

    #[test]
    fn vit_is_a_classifier() {
        let v = ModelSpec::sim_vit_base();
        assert_eq!(v.kind, ModelKind::ImageClassifier);
        assert!(v.fits_gpu(16.0));
    }
}
