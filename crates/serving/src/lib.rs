//! # hpcml-serving — model hosting and serving substrate
//!
//! The paper hosts a Meta Llama 3 8B model with **Ollama** behind each service instance,
//! plus a **NOOP** model used to isolate communication overheads. Neither Ollama nor GPU
//! inference is available to this reproduction, so this crate rebuilds the serving
//! substrate with calibrated simulated backends:
//!
//! * [`model`] — [`ModelSpec`]: the model catalog entries (NOOP, llama-8b-class,
//!   llama-70b-class, mistral-7b-class, a ViT classifier) with load-time, prompt-eval
//!   and token-generation rate distributions and GPU memory footprints;
//! * [`backend`] — [`ModelBackend`]: turns an [`InferenceRequest`] into token counts and
//!   durations ([`NoopBackend`] replies instantly, [`SimLlmBackend`] models
//!   prompt-processing + auto-regressive generation);
//! * [`host`] — [`ModelHost`]: the Ollama stand-in. Loads a model (sleeping the sampled
//!   load time on the virtual clock — the `init` component of the paper's bootstrap
//!   time) and serves requests one at a time (the paper's services are single-threaded
//!   and queue further incoming requests);
//! * [`batcher`] — [`ServingConfig`] and the continuous micro-batching
//!   [`BatchAssembler`]: requests dispatch when a batch fills or the oldest entry's
//!   latency budget expires on the virtual clock;
//! * [`pool`] — [`ReplicaPool`]: N hosts behind one endpoint with
//!   least-outstanding-requests routing over lock-free per-replica counters, runtime
//!   scale-up and drain-based scale-down;
//! * [`service`] — [`InferenceService`]: the serve loop binding a
//!   [`hpcml_comm::ReqRepServer`] endpoint to the serving plane — zero-copy request
//!   decode, deadline-aware admission control with load shedding, batch assembly and
//!   replica routing — decomposing each reply into the paper's `service` and
//!   `inference` time components;
//! * [`protocol`] — the message kinds and header keys of the service API (inference
//!   requests/replies, readiness probes, shedding, shutdown).
//!
//! The calibration constants (load ≈ 30 s, ≈ 40 generated tokens/s for an 8B model on an
//! A100-class GPU) reproduce the paper's qualitative result: model initialisation
//! dominates bootstrap, and inference duration dominates response time by orders of
//! magnitude over communication.

#![warn(missing_docs)]

pub mod backend;
pub mod batcher;
pub mod host;
pub mod model;
pub mod pool;
pub mod protocol;
pub mod request;
pub mod service;

pub use backend::{BatchResult, ModelBackend, NoopBackend, SimLlmBackend};
pub use batcher::{BatchAssembler, ServingConfig};
pub use host::ModelHost;
pub use model::{ModelKind, ModelSpec};
pub use pool::{null_sink, MetricsSink, ReplicaPool, SharedMetricsSink};
pub use protocol::ProtocolError;
pub use request::{InferenceRequest, InferenceRequestView, InferenceResponse};
pub use service::InferenceService;
