//! Continuous micro-batching: the per-model batch assembler and its configuration.
//!
//! Requests admitted by the serving front-end queue into a [`BatchAssembler`]; a batch
//! dispatches as soon as `max_batch_size` entries are waiting **or** the oldest entry
//! has waited `batch_latency_budget_secs` on the virtual clock — whichever comes first.
//! Under load batches fill instantly (throughput mode); under light traffic a request
//! waits at most the latency budget before dispatching in a small batch (latency
//! mode). The assembler is a plain FIFO owned by the single front-end thread, so it
//! needs no lock: arrival order in equals dispatch order out, which is what preserves
//! per-client FIFO end to end.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Configuration of one service instance's serving plane.
///
/// The defaults (`replicas = 1`, `max_batch_size = 1`) reproduce the seed-era
/// one-request-one-backend-call behaviour exactly — batching and replication are
/// opt-in per service, mirroring the `allocator_shards = 1` legacy escape hatch of the
/// sharded allocator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Number of `ModelHost` replicas behind the endpoint.
    pub replicas: usize,
    /// Maximum requests dispatched to a replica in one batch.
    pub max_batch_size: usize,
    /// Virtual seconds a request may wait in the assembler before a partial batch is
    /// dispatched anyway.
    pub batch_latency_budget_secs: f64,
    /// Bound on the assembler queue; requests beyond it are shed with a retry-after.
    pub queue_capacity: usize,
    /// Whether deadline-aware admission control is active: requests carrying a
    /// deadline header are shed when the estimated queue delay exceeds it.
    pub shed_deadlines: bool,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            replicas: 1,
            max_batch_size: 1,
            batch_latency_budget_secs: 0.02,
            queue_capacity: 4096,
            shed_deadlines: true,
        }
    }
}

impl ServingConfig {
    /// Number of replicas (clamped to at least 1).
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas = n.max(1);
        self
    }

    /// Maximum batch size (clamped to at least 1; 1 = unbatched legacy dispatch).
    pub fn max_batch_size(mut self, n: usize) -> Self {
        self.max_batch_size = n.max(1);
        self
    }

    /// Batch latency budget in virtual seconds.
    pub fn batch_latency_budget_secs(mut self, secs: f64) -> Self {
        self.batch_latency_budget_secs = secs.max(0.0);
        self
    }

    /// Assembler queue bound.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Enable or disable deadline-aware shedding.
    pub fn shed_deadlines(mut self, shed: bool) -> Self {
        self.shed_deadlines = shed;
        self
    }
}

/// One entry popped from the assembler, with the virtual time it arrived.
#[derive(Debug)]
pub struct Dispatch<T> {
    /// The queued item.
    pub item: T,
    /// Virtual time (seconds) the item entered the assembler.
    pub arrival_secs: f64,
}

struct Pending<T> {
    item: T,
    arrival_secs: f64,
}

/// FIFO batch assembler dispatching on size or latency-budget expiry.
pub struct BatchAssembler<T> {
    queue: VecDeque<Pending<T>>,
    max_batch_size: usize,
    budget_secs: f64,
}

impl<T> BatchAssembler<T> {
    /// Create an assembler with the given dispatch thresholds.
    pub fn new(max_batch_size: usize, budget_secs: f64) -> Self {
        BatchAssembler {
            queue: VecDeque::new(),
            max_batch_size: max_batch_size.max(1),
            budget_secs: budget_secs.max(0.0),
        }
    }

    /// Queue one item that arrived at `arrival_secs` (virtual).
    pub fn push(&mut self, item: T, arrival_secs: f64) {
        self.queue.push_back(Pending { item, arrival_secs });
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the assembler is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Arrival time of the oldest queued item.
    pub fn oldest_arrival_secs(&self) -> Option<f64> {
        self.queue.front().map(|p| p.arrival_secs)
    }

    /// Virtual seconds until the oldest entry's budget expires (`<= 0` means a batch
    /// is already due). `None` when the assembler is empty or a full batch is waiting
    /// (due immediately).
    pub fn secs_until_due(&self, now_secs: f64) -> Option<f64> {
        if self.queue.len() >= self.max_batch_size {
            return Some(0.0);
        }
        self.queue
            .front()
            .map(|p| (p.arrival_secs + self.budget_secs) - now_secs)
    }

    /// Pop the next ready batch, oldest first:
    ///
    /// * a full batch (`max_batch_size` entries) dispatches immediately;
    /// * otherwise a partial batch dispatches once the oldest entry has aged past the
    ///   latency budget, or when `force` is set (shutdown flush, or the manual-clock
    ///   liveness valve — a clock that only advances manually can never expire a
    ///   budget from inside the serve loop).
    ///
    /// Returns `None` when nothing is due yet.
    pub fn take_ready(&mut self, now_secs: f64, force: bool) -> Option<Vec<Dispatch<T>>> {
        if self.queue.is_empty() {
            return None;
        }
        let full = self.queue.len() >= self.max_batch_size;
        let expired = self
            .queue
            .front()
            .map(|p| now_secs - p.arrival_secs >= self.budget_secs)
            .unwrap_or(false);
        if !(full || expired || force) {
            return None;
        }
        let n = self.queue.len().min(self.max_batch_size);
        Some(
            self.queue
                .drain(..n)
                .map(|p| Dispatch {
                    item: p.item,
                    arrival_secs: p.arrival_secs,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn config_defaults_are_exact_legacy() {
        let c = ServingConfig::default();
        assert_eq!(c.replicas, 1);
        assert_eq!(c.max_batch_size, 1);
        assert!(c.shed_deadlines);
        let c = c.replicas(0).max_batch_size(0).queue_capacity(0);
        assert_eq!((c.replicas, c.max_batch_size, c.queue_capacity), (1, 1, 1));
    }

    #[test]
    fn full_batch_dispatches_immediately() {
        let mut a = BatchAssembler::new(3, 10.0);
        for i in 0..7 {
            a.push(i, 0.0);
        }
        // Size trumps budget: three full batches pop with no time elapsed at all.
        let b1 = a.take_ready(0.0, false).unwrap();
        let b2 = a.take_ready(0.0, false).unwrap();
        assert_eq!(b1.iter().map(|d| d.item).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(b2.iter().map(|d| d.item).collect::<Vec<_>>(), vec![3, 4, 5]);
        // One entry left: below max size and budget not expired -> not due.
        assert!(a.take_ready(0.0, false).is_none());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn partial_batch_waits_for_the_budget() {
        let mut a = BatchAssembler::new(8, 0.5);
        a.push("r1", 1.0);
        a.push("r2", 1.2);
        assert!(a.take_ready(1.3, false).is_none(), "budget not expired");
        let due = a.secs_until_due(1.3).unwrap();
        assert!(
            (due - 0.2).abs() < 1e-9,
            "oldest entry due in 0.2s, got {due}"
        );
        let batch = a.take_ready(1.5, false).unwrap();
        assert_eq!(batch.len(), 2, "expiry flushes everything waiting (<= max)");
        assert!(a.is_empty());
    }

    #[test]
    fn force_flushes_regardless_of_thresholds() {
        let mut a = BatchAssembler::new(8, 100.0);
        a.push(1, 0.0);
        assert!(a.take_ready(0.0, false).is_none());
        assert_eq!(a.take_ready(0.0, true).unwrap().len(), 1);
        assert!(a.take_ready(0.0, true).is_none(), "empty stays empty");
    }

    /// Seeded property: random arrivals and poll times — dispatch preserves FIFO,
    /// never exceeds the latency budget at dispatch-decision time, never dispatches a
    /// partial batch early, and never exceeds the maximum batch size.
    #[test]
    fn seeded_dispatch_property() {
        for seed in [7u64, 1024279, 42] {
            let mut rng = StdRng::seed_from_u64(seed);
            let max_batch = 1 + rng.gen_range(0..8u32) as usize;
            let budget = 0.05 + rng.gen::<f64>() * 0.5;
            let mut a = BatchAssembler::new(max_batch, budget);
            let mut now = 0.0f64;
            let mut next_id = 0u64;
            let mut dispatched: Vec<u64> = Vec::new();
            for _ in 0..500 {
                // Random arrivals...
                for _ in 0..rng.gen_range(0..4u32) {
                    a.push(next_id, now);
                    next_id += 1;
                }
                // ...then a poll after a random virtual delay.
                now += rng.gen::<f64>() * budget * 0.75;
                while let Some(batch) = a.take_ready(now, false) {
                    assert!(batch.len() <= max_batch, "batch over max size");
                    if batch.len() < max_batch {
                        let oldest = batch[0].arrival_secs;
                        assert!(
                            now - oldest >= budget - 1e-9,
                            "partial batch dispatched before budget: waited {}",
                            now - oldest
                        );
                    }
                    for d in batch {
                        dispatched.push(d.item);
                    }
                }
                // Budget invariant: after polling, nothing due is still queued.
                if let Some(oldest) = a.oldest_arrival_secs() {
                    assert!(
                        now - oldest < budget,
                        "expired entry left queued after poll"
                    );
                }
            }
            // FIFO: items (globally ordered by arrival) dispatch in arrival order.
            let mut sorted = dispatched.clone();
            sorted.sort_unstable();
            assert_eq!(dispatched, sorted, "seed {seed}: dispatch reordered FIFO");
        }
    }
}
