//! Network latency profiles.
//!
//! Experiment 2 of the paper is entirely latency-bound: the NOOP service replies
//! immediately, so the response time is dominated by the link between client task and
//! service endpoint. The paper measures 0.063 ± 0.014 ms for the local (intra-Delta)
//! case and 0.47 ± 0.04 ms for the remote (Delta → R3) case. This module expresses those
//! links as samplable [`LatencyProfile`]s that the communication layer injects on every
//! message hop.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hpcml_sim::dist::Dist;

/// Where two endpoints sit relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkLocality {
    /// Same process / same node.
    SameNode,
    /// Different nodes of the same platform.
    SamePlatform,
    /// Different platforms (WAN).
    Remote,
}

/// A one-way latency distribution for a network link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// One-way latency distribution, in milliseconds.
    pub one_way_ms: Dist,
    /// Per-kilobyte serialisation/transfer cost in milliseconds (bandwidth term).
    pub per_kib_ms: f64,
}

impl LatencyProfile {
    /// Build a profile from a normal latency distribution in milliseconds.
    pub fn normal_ms(mean_ms: f64, std_ms: f64) -> Self {
        LatencyProfile {
            one_way_ms: Dist::normal(mean_ms, std_ms),
            per_kib_ms: 0.0,
        }
    }

    /// In-process / loopback: effectively free.
    pub fn loopback() -> Self {
        LatencyProfile::normal_ms(0.005, 0.001)
    }

    /// Generic HPC interconnect (Slingshot/InfiniBand class).
    pub fn hpc_interconnect() -> Self {
        LatencyProfile::normal_ms(0.002, 0.0005)
    }

    /// Generic intra-datacenter link.
    pub fn datacenter() -> Self {
        LatencyProfile::normal_ms(0.2, 0.05)
    }

    /// Generic wide-area link.
    pub fn wan() -> Self {
        LatencyProfile::normal_ms(20.0, 5.0)
    }

    /// The paper's measured local profile on Delta: 0.063 ms ± 0.014 ms.
    pub fn paper_local() -> Self {
        LatencyProfile::normal_ms(0.063, 0.014)
    }

    /// The paper's measured remote profile Delta → R3: 0.47 ms ± 0.04 ms.
    pub fn paper_remote() -> Self {
        LatencyProfile::normal_ms(0.47, 0.04)
    }

    /// Add a bandwidth term (milliseconds per KiB transferred).
    pub fn with_per_kib_ms(mut self, per_kib_ms: f64) -> Self {
        self.per_kib_ms = per_kib_ms;
        self
    }

    /// Mean one-way latency in milliseconds (payload-independent part).
    pub fn mean_ms(&self) -> f64 {
        self.one_way_ms.mean()
    }

    /// Sample the one-way delay for a message of `payload_bytes`.
    pub fn sample_one_way<R: Rng + ?Sized>(
        &self,
        payload_bytes: usize,
        rng: &mut R,
    ) -> std::time::Duration {
        let base_ms = self.one_way_ms.sample(rng).max(0.0);
        let bw_ms = self.per_kib_ms * (payload_bytes as f64 / 1024.0);
        std::time::Duration::from_secs_f64((base_ms + bw_ms) / 1e3)
    }

    /// Sample a full round trip (two one-way samples).
    pub fn sample_round_trip<R: Rng + ?Sized>(
        &self,
        payload_bytes: usize,
        reply_bytes: usize,
        rng: &mut R,
    ) -> std::time::Duration {
        self.sample_one_way(payload_bytes, rng) + self.sample_one_way(reply_bytes, rng)
    }
}

impl Default for LatencyProfile {
    fn default() -> Self {
        LatencyProfile::loopback()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_profiles_match_measurements() {
        assert!((LatencyProfile::paper_local().mean_ms() - 0.063).abs() < 1e-12);
        assert!((LatencyProfile::paper_remote().mean_ms() - 0.47).abs() < 1e-12);
    }

    #[test]
    fn remote_is_slower_than_local_on_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let local = LatencyProfile::paper_local();
        let remote = LatencyProfile::paper_remote();
        let n = 10_000;
        let l: f64 = (0..n)
            .map(|_| local.sample_one_way(64, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        let r: f64 = (0..n)
            .map(|_| remote.sample_one_way(64, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!(r > 5.0 * l, "remote mean {r} should dwarf local mean {l}");
    }

    #[test]
    fn bandwidth_term_scales_with_payload() {
        let p = LatencyProfile::normal_ms(1.0, 0.0).with_per_kib_ms(0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let small = p.sample_one_way(1024, &mut rng);
        let big = p.sample_one_way(10 * 1024, &mut rng);
        assert!(big > small);
        assert!((big.as_secs_f64() * 1e3 - 6.0).abs() < 1e-6);
    }

    #[test]
    fn round_trip_is_two_one_ways() {
        let p = LatencyProfile::normal_ms(2.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let rt = p.sample_round_trip(0, 0, &mut rng);
        assert!((rt.as_secs_f64() * 1e3 - 4.0).abs() < 1e-6);
    }

    #[test]
    fn samples_never_negative() {
        let p = LatencyProfile::normal_ms(0.01, 1.0); // wide std to provoke negatives
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let d = p.sample_one_way(0, &mut rng);
            assert!(d.as_secs_f64() >= 0.0);
        }
    }

    #[test]
    fn default_is_loopback() {
        assert_eq!(LatencyProfile::default(), LatencyProfile::loopback());
    }
}
