//! Batch system and allocations: how a pilot acquires and carves up resources.
//!
//! A pilot job submits an [`AllocationRequest`] to the platform's [`BatchSystem`]; once
//! granted (after an optional modelled queue wait) it receives an [`Allocation`] — a set
//! of whole nodes it owns for its walltime. The pilot's scheduler then places tasks and
//! services by carving [`Slot`]s out of the allocation and releasing them on completion.
//!
//! This mirrors the pilot abstraction of the paper's runtime: resource acquisition is
//! decoupled from task/service scheduling, which is what lets services and tasks share
//! one allocation with controlled concurrency.
//!
//! ## Placement index
//!
//! `allocate_slot` used to scan every node linearly, which made placement cost grow
//! with allocation size — the dominant agent-scheduler overhead RADICAL-Pilot's
//! characterization work reports at leadership scale. The allocation now keeps a
//! capacity index: nodes are bucketed by (free-GPU, free-core) headroom class, with a
//! per-GPU-level `u128` bitmap of non-empty core classes, plus one *dedicated idle
//! bucket* holding exactly the fully idle nodes (membership proves idleness — no
//! filtering, even for nodes wider than the capped top core class). A placement probes
//! at most `gpus_per_node + 1` bitmap words (trailing-zeros to the smallest sufficient
//! core class, idle bucket last), so finding a fitting node is O(gpu levels) —
//! independent of node count — and `release_slot` updates the index incrementally in
//! O(1). The only path that can degrade to a bucket scan is a memory-constrained
//! request racing nodes whose cores/GPUs are free but whose memory is not (memory is
//! continuous and not bucketed).
//!
//! ## Sharded state
//!
//! One lock over nodes + index caps task throughput once several threads hammer
//! placement concurrently (asynchronous ML/HPC pipelines drive exactly that
//! pattern). The allocation therefore stripes its state into
//! [`AllocationConfig`]-many shards — node `g` lives in shard `g % shards`, each
//! shard owning its node slice plus its *own* capacity index behind its own lock —
//! so a single-node allocate/release touches exactly one shard lock. Placement
//! steers with lock-free per-shard headroom summaries (`AtomicU64`: idle-node
//! count + best headroom class): two rotor-picked shards are ranked
//! (power-of-two-choices, preferring a shard whose non-idle headroom covers the
//! share — the best-fit spirit), probed in order, and only a miss on both falls
//! back to a full ascending sweep, so exhaustion is always decided by inspecting
//! every shard under its lock, never by a stale summary. Gangs and drains take all
//! (or all involved) shard locks in **ascending shard-id order** and merge
//! per-shard candidates into global best-fit order; the cross-shard drain
//! controller lock is ordered *before* shard locks, and a lock-free `drain_active`
//! flag keeps it off the no-drain release hot path. With `shards = 1` (the
//! derived default for small allocations, or explicit via
//! [`AllocationRequest::with_allocator_shards`]) every path reduces to the
//! pre-sharding single-lock behaviour exactly.
//!
//! ## Gang placement
//!
//! A request with [`ResourceRequest::nodes`] > 1 is a multi-node MPI *gang*: the
//! allocator claims that many distinct nodes atomically under the one state lock,
//! reserving the per-node core/GPU/memory shares on each, and returns a single
//! [`Slot`] whose members list one node per rank group (ordered by node index — the
//! MPI rank order). Under [`GangPacking::Partial`] (the default) members *best-fit
//! across partially free nodes* via the index's k-best `find_fit`: k distinct nodes,
//! each with enough free headroom for one member share, co-locating beside existing
//! slots — O(gang size + GPU levels), independent of the allocation's node count.
//! Whole-node member shares (and every gang under [`GangPacking::Whole`]) take the
//! idle-bucket fast path instead: `req.nodes` nodes straight off the dedicated idle
//! bucket in O(gang size). Either way the claim is all-or-nothing: a mid-claim
//! conflict rolls back every member reserved so far, and releasing the gang returns
//! every member to its headroom class in O(gang size).
//!
//! ## Backfill reservations (drains)
//!
//! A gang that keeps losing the race for capacity can open a *backfill reservation*
//! with [`Allocation::begin_drain`]: nodes able to host one member share are pinned to
//! the drain immediately, and every node that [`Allocation::release_slot`] later makes
//! able is pinned as well, until `req.nodes` have accumulated. What "able" means
//! follows the gang's packing policy — [`GangPacking::Whole`] pins only fully idle
//! nodes, while [`GangPacking::Partial`] pins a node as soon as its free headroom
//! covers one member share, *even while other slots still occupy the rest of it*
//! (the pinned-partial reservation state; this is what closes the sub-node-churn
//! starvation gap, where no node ever goes fully idle). Pinned nodes are removed from
//! the capacity index, so neither single-node placements nor other gangs can see them
//! — residual occupancy on a pinned node can only shrink, so a pinned node never
//! stops covering its share — while every *other* node stays placeable, which is what
//! lets narrow requests keep backfilling around the reservation.
//! [`Allocation::allocate_reserved`] places the gang atomically on the pinned set once
//! it is complete (beside any residual slots, under partial packing), and
//! [`Allocation::cancel_drain`] returns the pinned nodes to their headroom classes
//! (the scheduler cancels on timeout, and when a waiting service must not be blocked
//! by a task-class reservation). At most one drain is active per allocation: only the
//! head of a scheduler class drains. [`Allocation::drain_status`] reports the pinned
//! set split into still-occupied (pinned-partial) and idle (pinned-idle) nodes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hpcml_sim::clock::SharedClock;
use hpcml_sim::dist::Dist;

use crate::resources::{
    AllocationConfig, GangPacking, NodeHealth, NodeSpec, NodeState, ResourceError, ResourceRequest,
    Slot, SlotMember,
};
use crate::spec::PlatformSpec;

/// Errors raised by the batch system.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// The platform does not have enough nodes in total.
    TooLarge {
        /// Nodes requested.
        requested: usize,
        /// Nodes the platform has.
        available: usize,
    },
    /// The platform has enough nodes but they are currently allocated to other jobs.
    Busy,
    /// Zero nodes requested.
    EmptyRequest,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::TooLarge {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} nodes but the platform only has {available}"
                )
            }
            BatchError::Busy => write!(f, "platform nodes are currently allocated to other jobs"),
            BatchError::EmptyRequest => {
                write!(f, "allocation request must ask for at least one node")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// A request for a pilot-sized allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationRequest {
    /// Number of whole nodes.
    pub nodes: usize,
    /// Requested walltime in seconds.
    pub walltime_secs: f64,
    /// Whether to model the batch-queue wait (true for realism, false for experiments
    /// that start measuring once the pilot is active — as the paper does).
    pub model_queue_wait: bool,
    /// Allocator-level configuration (state sharding; see [`AllocationConfig`]).
    pub config: AllocationConfig,
}

impl AllocationRequest {
    /// Request `nodes` whole nodes for one hour, without modelling queue wait.
    pub fn nodes(nodes: usize) -> Self {
        AllocationRequest {
            nodes,
            walltime_secs: 3600.0,
            model_queue_wait: false,
            config: AllocationConfig::default(),
        }
    }

    /// Set the walltime.
    pub fn with_walltime_secs(mut self, secs: f64) -> Self {
        self.walltime_secs = secs;
        self
    }

    /// Enable queue-wait modelling.
    pub fn with_queue_wait(mut self, enable: bool) -> Self {
        self.model_queue_wait = enable;
        self
    }

    /// Pin the allocator shard count (clamped to `1..=nodes` at resolution time);
    /// `allocator_shards(1)` reproduces the single-lock allocator exactly. Without
    /// this, the count is derived from the host parallelism and the node count
    /// (see [`AllocationConfig::resolve_shards`]).
    pub fn with_allocator_shards(mut self, shards: usize) -> Self {
        self.config.shards = Some(shards);
        self
    }
}

/// Highest core headroom class tracked distinctly; nodes with more free cores share the
/// top class (so the per-GPU-level bitmap fits one `u128` word for any node width).
const CORE_CLASS_CAP: u32 = 127;

/// Free-capacity index over an allocation's nodes.
///
/// Non-idle nodes are bucketed by `(free_gpus, min(free_cores, CORE_CLASS_CAP))`
/// headroom class; fully idle nodes live in one *dedicated idle bucket* appended after
/// the class grid, so idle-bucket membership alone proves idleness (no `is_idle`
/// filtering, even for nodes wider than the capped top core class — such nodes sit in
/// the top *class* bucket while partially occupied). For each free-GPU level a `u128`
/// bitmap marks which core classes have non-empty buckets, so a best-fit probe is a
/// shift + trailing_zeros per GPU level, with the idle bucket probed last (idle nodes
/// are the worst fit for a sub-node share). Membership updates are O(1) via a per-node
/// (bucket, position) back-reference and swap-remove.
struct CapacityIndex {
    /// Number of distinct free-GPU levels (`gpus_per_node + 1`).
    gpu_levels: usize,
    /// Number of distinct core classes (`min(cores_per_node, CORE_CLASS_CAP) + 1`).
    core_levels: usize,
    /// `buckets[fg * core_levels + fc]` holds the non-idle node indices in that
    /// class; `buckets[gpu_levels * core_levels]` is the dedicated idle bucket.
    buckets: Vec<Vec<usize>>,
    /// `nonempty[fg]` bit `fc` set ⇔ class bucket `(fg, fc)` is non-empty (the idle
    /// bucket is tracked by its own emptiness, not by a bit).
    nonempty: Vec<u128>,
    /// node index → (bucket id, position within the bucket's vec); `usize::MAX` when
    /// the node is not indexed (pinned by a drain).
    pos: Vec<(usize, usize)>,
    /// Node shape, used to classify fully idle nodes into the idle bucket. Free
    /// cores + GPUs at spec level implies no live slot (every slot pins at least one
    /// unit — the `EmptyRequest` guard), which implies free memory too.
    spec: NodeSpec,
}

impl CapacityIndex {
    fn new(spec: NodeSpec, num_nodes: usize) -> Self {
        let gpu_levels = spec.gpus as usize + 1;
        let core_levels = spec.cores.min(CORE_CLASS_CAP) as usize + 1;
        let mut index = CapacityIndex {
            gpu_levels,
            core_levels,
            buckets: vec![Vec::new(); gpu_levels * core_levels + 1],
            nonempty: vec![0u128; gpu_levels],
            pos: vec![(usize::MAX, usize::MAX); num_nodes],
            spec,
        };
        // All nodes start fully free, straight into the idle bucket.
        for node in 0..num_nodes {
            index.insert(node, spec.gpus, spec.cores);
        }
        index
    }

    fn core_class(&self, free_cores: u32) -> usize {
        (free_cores.min(CORE_CLASS_CAP) as usize).min(self.core_levels - 1)
    }

    /// The dedicated bucket holding exactly the fully idle nodes.
    fn idle_bucket(&self) -> usize {
        self.gpu_levels * self.core_levels
    }

    /// Bucket for a node with the given free capacity: the idle bucket when fully
    /// free, its `(free_gpus, core class)` class bucket otherwise.
    fn bucket_id(&self, free_gpus: u32, free_cores: u32) -> usize {
        if free_gpus == self.spec.gpus && free_cores == self.spec.cores {
            self.idle_bucket()
        } else {
            free_gpus as usize * self.core_levels + self.core_class(free_cores)
        }
    }

    /// True when `node` is currently indexed (not pinned by a drain).
    fn contains(&self, node: usize) -> bool {
        self.pos[node].0 != usize::MAX
    }

    fn insert(&mut self, node: usize, free_gpus: u32, free_cores: u32) {
        let bucket = self.bucket_id(free_gpus, free_cores);
        self.buckets[bucket].push(node);
        self.pos[node] = (bucket, self.buckets[bucket].len() - 1);
        if bucket != self.idle_bucket() {
            self.nonempty[free_gpus as usize] |= 1u128 << self.core_class(free_cores);
        }
    }

    fn remove(&mut self, node: usize) {
        let (bucket, position) = self.pos[node];
        let vec = &mut self.buckets[bucket];
        vec.swap_remove(position);
        if let Some(&moved) = vec.get(position) {
            self.pos[moved] = (bucket, position);
        }
        if vec.is_empty() && bucket != self.idle_bucket() {
            let fg = bucket / self.core_levels;
            let fc = bucket % self.core_levels;
            self.nonempty[fg] &= !(1u128 << fc);
        }
        self.pos[node] = (usize::MAX, usize::MAX);
    }

    /// Append one fresh, fully idle node at the next local index (an
    /// [`crate::batch::Allocation::expand`] arrival), returning that index. The
    /// back-reference vector grows by one *before* `insert` writes it.
    fn push_idle(&mut self) -> usize {
        let local = self.pos.len();
        self.pos.push((usize::MAX, usize::MAX));
        self.insert(local, self.spec.gpus, self.spec.cores);
        local
    }

    /// Move `node` to the bucket matching its current free capacity.
    fn update(&mut self, node: usize, free_gpus: u32, free_cores: u32) {
        let target = self.bucket_id(free_gpus, free_cores);
        if self.pos[node].0 == target {
            return;
        }
        self.remove(node);
        self.insert(node, free_gpus, free_cores);
    }

    /// The one fit-probe loop both queries share: visit nodes able to host one
    /// member share of `req` right now, in best-fit order — smallest sufficient
    /// free-GPU level, then smallest sufficient core class (to limit fragmentation),
    /// with the fully idle bucket only as the last resort (worst fit). Class
    /// membership proves the fit, so visited buckets only contribute visited nodes;
    /// memory-constrained (or wider-than-`CORE_CLASS_CAP`) shares degrade to
    /// per-candidate `can_fit_now` scans, since those constraints are not bucketed.
    /// Idle-bucket candidates need no scan: an idle node hosts any share the caller
    /// has shape-checked (`check_satisfiable`). Stops when `visit` returns `true`.
    fn probe_fits(
        &self,
        req: &ResourceRequest,
        nodes: &[NodeState],
        mut visit: impl FnMut(usize) -> bool,
    ) {
        let want_fc = self.core_class(req.cores);
        let needs_scan = req.cores > CORE_CLASS_CAP || req.mem_gib > 0.0;
        for fg in req.gpus as usize..self.gpu_levels {
            let mut mask = self.nonempty[fg] & (!0u128 << want_fc);
            while mask != 0 {
                let fc = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                for &node in &self.buckets[fg * self.core_levels + fc] {
                    if (!needs_scan || nodes[node].can_fit_now(req)) && visit(node) {
                        return;
                    }
                }
            }
        }
        for &node in &self.buckets[self.idle_bucket()] {
            if visit(node) {
                return;
            }
        }
    }

    /// Find one node able to host one member share of `req` right now, best fit
    /// first (see [`CapacityIndex::probe_fits`]): **O(GPU levels)** bitmap words,
    /// allocation-free — the single-node placement hot path.
    fn find(&self, req: &ResourceRequest, nodes: &[NodeState]) -> Option<usize> {
        let mut found = None;
        self.probe_fits(req, nodes, |node| {
            found = Some(node);
            true
        });
        found
    }

    /// Collect up to `k` *distinct* nodes each able to host one member share of
    /// `req` right now, in the same best-fit order — the partial-packing gang
    /// candidate query, **O(k + GPU levels)**. Returns fewer than `k` when the
    /// allocation cannot currently host that many members; callers needing
    /// all-or-nothing check the length.
    fn find_fit(&self, req: &ResourceRequest, k: usize, nodes: &[NodeState]) -> Vec<usize> {
        let mut picked = Vec::with_capacity(k);
        if k == 0 {
            return picked;
        }
        self.probe_fits(req, nodes, |node| {
            picked.push(node);
            picked.len() == k
        });
        picked
    }

    /// The nodes currently in the dedicated idle bucket (gang fast path, drains).
    /// Membership proves idleness exactly, so taking the first `n` entries is the
    /// O(n) `find_idle` of the pre-sharding allocator.
    fn idle_nodes(&self) -> &[usize] {
        &self.buckets[self.idle_bucket()]
    }

    /// Lock-free headroom summary of this index, published per shard as an
    /// `AtomicU64`: high 32 bits = idle-node count, low 32 bits = the *best
    /// headroom class key* (`free_gpus << 8 | core class`) over all indexed
    /// non-idle nodes (0 when none). A node fits a request only if its own key is
    /// component-wise — and therefore numerically — ≥ the request's key, so a
    /// summary whose best key is below the request key *and* whose idle count is
    /// zero proves the shard cannot host it; the converse is only a hint (the
    /// best-keyed node may be short on the other dimension or on memory), which
    /// is why probing falls back to a locked sweep before reporting exhaustion.
    fn summary(&self) -> u64 {
        let idle = self.idle_nodes().len() as u64;
        let mut best = 0u64;
        for fg in (0..self.gpu_levels).rev() {
            let word = self.nonempty[fg];
            if word != 0 {
                best = ((fg as u64) << 8) | (127 - word.leading_zeros()) as u64;
                break;
            }
        }
        (idle << 32) | best
    }
}

/// The class key a request (or node headroom) occupies in a shard summary:
/// `free_gpus << 8 | capped core class`. Component-wise coverage implies numeric ≥.
fn summary_key(gpus: u32, cores: u32) -> u64 {
    ((gpus as u64) << 8) | cores.min(CORE_CLASS_CAP) as u64
}

/// The one active backfill reservation: nodes pinned for a draining gang.
/// Pinned nodes are *removed from their shard's capacity index*, which is what
/// excludes them from every placement probe without any per-probe filtering cost.
/// Guarded by the allocation's cross-shard drain-controller lock, which is always
/// acquired *before* any shard lock (see the locking section of the module docs).
struct DrainReservation {
    id: u64,
    /// The draining gang's request: `req.nodes` is the pin target and the
    /// cores/GPUs/memory are the per-member share a pinned node must cover.
    req: ResourceRequest,
    /// Resolved packing policy: `Whole` pins only fully idle nodes; `Partial` pins a
    /// node as soon as its free headroom covers one member share, residual occupancy
    /// and all (the pinned-partial state — occupancy on a pinned node can only
    /// shrink, so the coverage invariant holds until placement).
    packing: GangPacking,
    /// Global indices of nodes pinned so far; grows monotonically until
    /// `req.nodes` via release events, never beyond it.
    pinned: Vec<usize>,
}

impl DrainReservation {
    /// Whether `node` may be pinned under this reservation's packing policy.
    /// Only healthy nodes are pinnable: a failed node's capacity is gone, and a
    /// retired node has left the allocation.
    fn covers(&self, node: &NodeState) -> bool {
        if node.health() != NodeHealth::Healthy {
            return false;
        }
        match self.packing {
            GangPacking::Whole => node.is_idle(),
            GangPacking::Partial => node.can_fit_now(&self.req),
        }
    }
}

/// Snapshot of the active backfill reservation, split by pinned-node occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainStatus {
    /// Pinned nodes that are fully idle (every drain under [`GangPacking::Whole`]
    /// pins only such nodes).
    pub pinned_idle: usize,
    /// Pinned nodes still carrying residual slots — partial-packing pins whose free
    /// headroom covers one member share while co-tenants run out.
    pub pinned_partial: usize,
    /// Nodes the draining gang needs in total (its `ResourceRequest::nodes`).
    pub target: usize,
}

impl DrainStatus {
    /// Total pinned nodes, idle and partial.
    pub fn pinned(&self) -> usize {
        self.pinned_idle + self.pinned_partial
    }

    /// True once the reservation holds its full node span.
    pub fn complete(&self) -> bool {
        self.pinned() >= self.target
    }
}

/// One shard's mutable state: the node slice it owns plus its own capacity index
/// over *local* node indices, guarded by the shard's lock. Node `g` (global) lives
/// in shard `g % num_shards` at local index `g / num_shards` (striped partition),
/// so consecutive nodes spread across shards and a hammering thread mix lands on
/// different locks.
struct ShardState {
    nodes: Vec<NodeState>,
    index: CapacityIndex,
}

/// Stripes for the live-slot id sets: slot liveness is orthogonal to node
/// partitioning, so it gets its own small striped registry instead of riding on a
/// shard lock (a gang's id cannot belong to "a" shard).
const LIVE_SLOT_STRIPES: usize = 8;

/// Placement cost telemetry returned next to a slot: how many shard locks the
/// placement had to take (1 = the two-choice probe hit on its first shard; values
/// toward the shard count mean summary misses or a full fallback sweep). Feeds the
/// executor's `task.placement.shard_probes` metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementProbes {
    /// Distinct shard locks acquired to place the slot.
    pub shard_probes: u32,
}

/// A granted allocation: a set of whole nodes owned by one pilot.
///
/// The mutable state is partitioned into [`AllocationConfig`]-many shards, each
/// guarded by its own lock, so concurrent single-node allocate/release traffic on
/// different shards never serialises. Aggregate counters (free cores/GPUs,
/// non-idle nodes) are lock-free atomics updated under the owning shard's lock;
/// per-shard headroom summaries (idle count + best class key) are published the
/// same way and steer the two-choice placement probe without any locking.
///
/// Lock order (deadlock freedom): **drain controller → shard locks in ascending
/// shard id**. Paths that never touch the drain take shard locks only; paths that
/// might pin (release with an active drain) or mutate the reservation take the
/// drain-controller lock first. `drain_active` is a lock-free flag releases use to
/// skip the controller when no drain exists; a release that observes the flag flip
/// *after* taking its shard locks restarts once with the controller held, so a
/// concurrent `begin_drain` can never miss a node freed under its feet.
pub struct Allocation {
    id: u64,
    platform: PlatformSpec,
    /// Healthy in-service node count (excludes failed and retired nodes). Written
    /// only under the full shard-lock set (expand/shrink/fail_node), read lock-free.
    num_nodes: AtomicU64,
    /// Nodes lost to [`Allocation::fail_node`] and not yet retired by a shrink.
    /// `num_nodes + failed_nodes` is the *attached* count the batch system still
    /// charges this allocation for.
    failed_nodes: AtomicU64,
    num_shards: usize,
    shards: Vec<Mutex<ShardState>>,
    /// Lock-free per-shard headroom summaries (see [`CapacityIndex::summary`]),
    /// republished after every mutation under the owning shard's lock.
    summaries: Vec<AtomicU64>,
    /// Global node-index → hostname map for slot validation. Append-only (expand
    /// appends; fail/shrink keep the entry so slots on dead nodes still validate).
    /// Readers must never hold this lock while acquiring a shard or stripe lock.
    node_names: RwLock<Vec<Arc<str>>>,
    /// Cached aggregates, updated under the owning shard's lock, read lock-free.
    /// Relaxed ordering throughout: each update is an atomic RMW (totals stay
    /// exact), and every reader that needs a consistent snapshot (tests after a
    /// join, the scheduler after a release) is already ordered by lock or join
    /// synchronisation.
    free_cores: AtomicU64,
    free_gpus: AtomicU64,
    non_idle_nodes: AtomicU64,
    /// Slots handed out and not yet released, striped by id and keyed id → slot
    /// (the stored copy is what [`Allocation::fail_node`] uses to evict co-resident
    /// slots). Releasing a slot that is not registered is rejected, so a double
    /// release can never re-credit resources (memory in particular has no per-unit
    /// occupancy bit to catch it otherwise).
    live_slots: Vec<Mutex<HashMap<u64, Slot>>>,
    /// Slots evicted by a node failure, keyed id → failed node index. A release of
    /// such a slot reports [`ResourceError::NodeFailed`] (resources were already
    /// reclaimed at eviction) exactly once, then forgets the id.
    failed_slots: Mutex<HashMap<u64, usize>>,
    /// Cross-shard drain controller: the one active backfill reservation.
    drain: Mutex<Option<DrainReservation>>,
    /// Lock-free mirror of `drain.is_some()`, so releases skip the controller lock
    /// entirely while no drain is active (the common case on the hot path).
    drain_active: std::sync::atomic::AtomicBool,
    /// Rotor for the two-choice probe's shard picks.
    probe_cursor: AtomicU64,
    next_slot_id: AtomicU64,
    next_drain_id: AtomicU64,
    /// Seconds spent waiting in the batch queue (0 if not modelled).
    queue_wait_secs: f64,
    walltime_secs: f64,
}

/// SplitMix64 finaliser: decorrelates the probe rotor so the second choice is not
/// always the neighbouring shard.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x
}

impl std::fmt::Debug for Allocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Allocation")
            .field("id", &self.id)
            .field("platform", &self.platform.id)
            .field("nodes", &self.num_nodes.load(Ordering::Relaxed))
            .field("failed", &self.failed_nodes.load(Ordering::Relaxed))
            .field("shards", &self.num_shards)
            .field("walltime_secs", &self.walltime_secs)
            .finish()
    }
}

impl Allocation {
    /// Allocation identifier (unique per batch system).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The platform this allocation lives on.
    pub fn platform(&self) -> &PlatformSpec {
        &self.platform
    }

    /// Number of healthy in-service nodes (O(1), lock-free). Shrinks when a node
    /// fails or is retired, grows on [`Allocation::expand`].
    pub fn num_nodes(&self) -> usize {
        self.num_nodes.load(Ordering::Relaxed) as usize
    }

    /// Nodes lost to [`Allocation::fail_node`] and not yet retired by a shrink
    /// (O(1), lock-free).
    pub fn failed_nodes(&self) -> usize {
        self.failed_nodes.load(Ordering::Relaxed) as usize
    }

    /// Nodes still attached to (and charged against) this allocation: healthy plus
    /// failed-but-not-yet-retired.
    pub fn attached_nodes(&self) -> usize {
        self.num_nodes() + self.failed_nodes()
    }

    /// Shape of the allocation's nodes.
    pub fn node_spec(&self) -> NodeSpec {
        self.platform.node
    }

    /// Total cores across the allocation's healthy nodes.
    pub fn total_cores(&self) -> u32 {
        self.num_nodes() as u32 * self.platform.node.cores
    }

    /// Total GPUs across the allocation's healthy nodes.
    pub fn total_gpus(&self) -> u32 {
        self.num_nodes() as u32 * self.platform.node.gpus
    }

    /// Currently free cores across all nodes (O(1), lock-free: cached aggregate).
    pub fn free_cores(&self) -> u32 {
        self.free_cores.load(Ordering::Relaxed) as u32
    }

    /// Currently free GPUs across all nodes (O(1), lock-free: cached aggregate).
    pub fn free_gpus(&self) -> u32 {
        self.free_gpus.load(Ordering::Relaxed) as u32
    }

    /// Number of nodes with no slot reservation at all (O(1), lock-free: cached).
    /// This counts *physical* idleness: nodes pinned by an active backfill drain
    /// are not placeable but may still be idle (see [`Allocation::drain_status`]
    /// for the idle/partial split of the pinned set).
    pub fn idle_nodes(&self) -> usize {
        self.num_nodes()
            .saturating_sub(self.non_idle_nodes.load(Ordering::Relaxed) as usize)
    }

    /// Number of independently locked state shards this allocation runs with.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning global node index `node` (striped partition).
    pub fn shard_of(&self, node: usize) -> usize {
        node % self.num_shards
    }

    /// The node's index within its shard's local node slice.
    fn local_of(&self, node: usize) -> usize {
        node / self.num_shards
    }

    /// Global index of `local` within shard `shard`.
    fn global_of(&self, shard: usize, local: usize) -> usize {
        local * self.num_shards + shard
    }

    /// Seconds this allocation waited in the batch queue before becoming active.
    pub fn queue_wait_secs(&self) -> f64 {
        self.queue_wait_secs
    }

    /// Granted walltime in seconds.
    pub fn walltime_secs(&self) -> f64 {
        self.walltime_secs
    }

    /// Check `req` against the allocation shape without touching occupancy: `Err` when
    /// this allocation could never host it (per-node share exceeds the node shape, or
    /// the request pins no units at all). A gang spanning more nodes than the
    /// allocation *currently* has is [`ResourceError::InsufficientResources`], not a
    /// shape error: allocations are elastic, so [`Allocation::expand`] can make the
    /// request satisfiable later.
    pub fn check_satisfiable(&self, req: &ResourceRequest) -> Result<(), ResourceError> {
        req.validate()?;
        let num_nodes = self.num_nodes();
        if num_nodes == 0 || req.nodes > num_nodes {
            return Err(ResourceError::InsufficientResources);
        }
        let shape = &self.platform.node;
        if req.cores > shape.cores || req.gpus > shape.gpus || req.mem_gib > shape.mem_gib {
            return Err(ResourceError::NeverSatisfiable {
                reason: format!(
                    "per-node share ({} cores, {} gpus, {:.1} GiB) exceeds the node shape",
                    req.cores, req.gpus, req.mem_gib
                ),
            });
        }
        Ok(())
    }

    /// Publish shard `shard`'s lock-free headroom summary from its current index
    /// state. Called after every mutation, while the shard lock is still held, so a
    /// summary read after acquiring any lock the mutator released is never stale.
    /// With a single shard the summary has no reader (the two-choice probe
    /// short-circuits), so the single-lock configuration skips the bookkeeping.
    fn publish_summary(&self, shard: usize, st: &ShardState) {
        if self.num_shards > 1 {
            self.summaries[shard].store(st.index.summary(), Ordering::Relaxed);
        }
    }

    /// Reserve one member node's share of `req` on global node `node_index` inside
    /// its (locked) shard, keeping the cached aggregates and the shard index in
    /// sync. Returns the membership record, flagged `co_resident` when the node
    /// already carried other live slots (a partial-packing co-location).
    fn reserve_member_in(
        &self,
        st: &mut ShardState,
        node_index: usize,
        req: &ResourceRequest,
    ) -> Result<SlotMember, ResourceError> {
        let local = self.local_of(node_index);
        let node = &mut st.nodes[local];
        let was_idle = node.is_idle();
        let (core_ids, gpu_ids, mem_gib) = node.try_reserve(req)?;
        self.free_cores
            .fetch_sub(core_ids.len() as u64, Ordering::Relaxed);
        self.free_gpus
            .fetch_sub(gpu_ids.len() as u64, Ordering::Relaxed);
        if was_idle && !node.is_idle() {
            self.non_idle_nodes.fetch_add(1, Ordering::Relaxed);
        }
        let (free_gpus, free_cores, name) =
            (node.free_gpus(), node.free_cores(), Arc::clone(&node.name));
        st.index.update(local, free_gpus, free_cores);
        Ok(SlotMember {
            node_index,
            node_name: name,
            core_ids,
            gpu_ids,
            mem_gib,
            co_resident: !was_idle,
        })
    }

    /// Return one membership's resources to its node inside its (locked) shard,
    /// keeping the cached aggregates and the shard index in sync. A node pinned by
    /// the active drain is *not* re-indexed: it stays invisible to other
    /// placements, with only its occupancy shrinking (the pinned-partial state
    /// relies on exactly this).
    fn release_member_in(&self, st: &mut ShardState, member: &SlotMember) {
        let local = self.local_of(member.node_index);
        let node = &mut st.nodes[local];
        let was_idle = node.is_idle();
        // Deltas, not slot sizes: NodeState::release ignores double-released indices.
        let (cores_before, gpus_before) = (node.free_cores(), node.free_gpus());
        node.release(&member.core_ids, &member.gpu_ids, member.mem_gib);
        self.free_cores
            .fetch_add((node.free_cores() - cores_before) as u64, Ordering::Relaxed);
        self.free_gpus
            .fetch_add((node.free_gpus() - gpus_before) as u64, Ordering::Relaxed);
        if !was_idle && node.is_idle() {
            self.non_idle_nodes.fetch_sub(1, Ordering::Relaxed);
        }
        if st.index.contains(local) {
            let (free_gpus, free_cores) = (node.free_gpus(), node.free_cores());
            st.index.update(local, free_gpus, free_cores);
        }
    }

    /// Lock the given (ascending, deduplicated) shard ids, returning a slot per
    /// shard so callers can address guards by shard id. Ascending acquisition is
    /// the global shard-lock order — every multi-shard path goes through here.
    fn lock_shards(&self, ids: &[usize]) -> Vec<Option<parking_lot::MutexGuard<'_, ShardState>>> {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ascending shard ids");
        let mut guards: Vec<Option<parking_lot::MutexGuard<'_, ShardState>>> =
            (0..self.num_shards).map(|_| None).collect();
        for &s in ids {
            guards[s] = Some(self.shards[s].lock());
        }
        guards
    }

    /// The ascending, deduplicated shard ids owning the given global node indices.
    fn shard_ids_of(&self, nodes: impl Iterator<Item = usize>) -> Vec<usize> {
        let mut ids: Vec<usize> = nodes.map(|n| self.shard_of(n)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Register a freshly claimed slot in the striped live-slot registry (keyed by
    /// id; the stored copy is what `fail_node` consults to evict co-residents).
    fn register_slot(&self, slot: &Slot) {
        self.live_slots[slot.id as usize % LIVE_SLOT_STRIPES]
            .lock()
            .insert(slot.id, slot.clone());
    }

    /// Try to carve a slot satisfying `req` out of the allocation.
    ///
    /// Single-node placement locks exactly one shard in the common case: a
    /// power-of-two-choices probe ranks two rotor-picked shards by their lock-free
    /// headroom summaries (a shard whose best non-idle class covers the request
    /// beats one that would have to break an idle node, matching the single-lock
    /// allocator's best-fit preference), probes the winner's capacity index, then
    /// the loser's, and only then sweeps the remaining shards in ascending id
    /// order — so exhaustion is decided by inspecting every shard, never by a
    /// stale summary. Within a shard the capacity-index best-fit order is exactly
    /// the pre-sharding behaviour, and a single-shard allocation reproduces it
    /// globally. A gang request (`req.nodes > 1`) atomically claims distinct nodes
    /// across shards — all shard locks taken in ascending order, candidates merged
    /// in global best-fit order, all-or-nothing with full rollback on a mid-claim
    /// conflict (see [`GangPacking`]).
    /// Returns [`ResourceError::InsufficientResources`] when nothing currently fits
    /// and [`ResourceError::NeverSatisfiable`] when the allocation shape could never
    /// satisfy it.
    pub fn allocate_slot(&self, req: &ResourceRequest) -> Result<Slot, ResourceError> {
        self.allocate_slot_with_stats(req).map(|(slot, _)| slot)
    }

    /// [`Allocation::allocate_slot`], additionally reporting how many shard locks
    /// the placement took ([`PlacementProbes`] — the scheduler turns this into the
    /// `task.placement.shard_probes` metric).
    pub fn allocate_slot_with_stats(
        &self,
        req: &ResourceRequest,
    ) -> Result<(Slot, PlacementProbes), ResourceError> {
        self.check_satisfiable(req)?;
        if req.nodes > 1 {
            return self.allocate_gang(req);
        }
        self.allocate_single(req)
    }

    /// Single-node placement: two-choice probe, then full sweep (see
    /// [`Allocation::allocate_slot`]).
    fn allocate_single(
        &self,
        req: &ResourceRequest,
    ) -> Result<(Slot, PlacementProbes), ResourceError> {
        let mut probes = PlacementProbes::default();
        let (first, second) = self.probe_choices(req);
        if let Some(slot) = self.try_claim_single(first, req, &mut probes)? {
            return Ok((slot, probes));
        }
        if let Some(second) = second {
            if let Some(slot) = self.try_claim_single(second, req, &mut probes)? {
                return Ok((slot, probes));
            }
        }
        // Fallback sweep: inspect every remaining shard under its lock before
        // reporting exhaustion — summaries are hints, never the basis for failure.
        for shard in 0..self.num_shards {
            if shard == first || Some(shard) == second {
                continue;
            }
            if let Some(slot) = self.try_claim_single(shard, req, &mut probes)? {
                return Ok((slot, probes));
            }
        }
        Err(ResourceError::InsufficientResources)
    }

    /// Pick the two shards the probe visits first, best ranked first. With one
    /// shard the choice is trivial (and the sweep is empty), reproducing the
    /// single-lock allocator exactly.
    fn probe_choices(&self, req: &ResourceRequest) -> (usize, Option<usize>) {
        if self.num_shards == 1 {
            return (0, None);
        }
        let h = self.probe_cursor.fetch_add(1, Ordering::Relaxed);
        let a = (h % self.num_shards as u64) as usize;
        let b = (a + 1 + (mix64(h) % (self.num_shards as u64 - 1)) as usize) % self.num_shards;
        let need = summary_key(req.gpus, req.cores);
        // Rank 0: a non-idle class covers the share (pack beside existing work —
        // the best-fit preference). Rank 1: only idle headroom. Rank 2: summary
        // proves nothing fits (still swept last — summaries are hints).
        let rank = |s: usize| {
            let summary = self.summaries[s].load(Ordering::Relaxed);
            if summary & 0xFFFF_FFFF >= need {
                0
            } else if summary >> 32 > 0 {
                1
            } else {
                2
            }
        };
        if rank(b) < rank(a) {
            (b, Some(a))
        } else {
            (a, Some(b))
        }
    }

    /// Probe one shard for a single-node placement: lock it, best-fit within its
    /// index, reserve on success. `Ok(None)` means this shard cannot host the
    /// share right now.
    fn try_claim_single(
        &self,
        shard: usize,
        req: &ResourceRequest,
        probes: &mut PlacementProbes,
    ) -> Result<Option<Slot>, ResourceError> {
        let mut st = self.shards[shard].lock();
        probes.shard_probes += 1;
        let Some(local) = st.index.find(req, &st.nodes) else {
            return Ok(None);
        };
        let member = self.reserve_member_in(&mut st, self.global_of(shard, local), req)?;
        self.publish_summary(shard, &st);
        drop(st);
        let id = self.next_slot_id.fetch_add(1, Ordering::Relaxed);
        let slot = Slot::single(id, member);
        self.register_slot(&slot);
        Ok(Some(slot))
    }

    /// Gang placement: take every shard lock in ascending id order, merge per-shard
    /// candidates into global best-fit order, claim all-or-nothing.
    fn allocate_gang(
        &self,
        req: &ResourceRequest,
    ) -> Result<(Slot, PlacementProbes), ResourceError> {
        let all: Vec<usize> = (0..self.num_shards).collect();
        let mut guards = self.lock_shards(&all);
        let mut picked = self.pick_gang_nodes(&guards, req, req.nodes);
        if picked.len() < req.nodes {
            return Err(ResourceError::InsufficientResources);
        }
        // Rank order: member i of the slot is the i-th lowest claimed node index.
        picked.sort_unstable();
        let slot = self.claim_gang_locked(&mut guards, &picked, req)?;
        for (shard, guard) in guards.iter().enumerate() {
            if let Some(st) = guard {
                self.publish_summary(shard, st);
            }
        }
        Ok((
            slot,
            PlacementProbes {
                shard_probes: self.num_shards as u32,
            },
        ))
    }

    /// Collect up to `want` distinct nodes able to host one member share of `req`
    /// under its (resolved-by-default) packing policy, across all locked shards, in
    /// *global* best-fit order: ascending headroom-class key (smallest sufficient
    /// free-GPU level, then core class — exactly the per-shard probe order), fully
    /// idle nodes last, ties broken by shard-ascending enumeration. With one shard
    /// this degenerates to the pre-sharding `find_fit`/`find_idle` pick. May return
    /// fewer than `want`; callers needing all-or-nothing check the length.
    fn pick_gang_nodes(
        &self,
        guards: &[Option<parking_lot::MutexGuard<'_, ShardState>>],
        req: &ResourceRequest,
        want: usize,
    ) -> Vec<usize> {
        let packing = req.packing.unwrap_or_default();
        let spec = self.platform.node;
        // A whole-node member share (all cores and all GPUs of each member) can only
        // be hosted by fully idle nodes, so the idle buckets *are* the exact
        // candidate set — the fast path, shared with explicit Whole packing.
        let whole_share = req.cores == spec.cores && req.gpus == spec.gpus;
        if packing == GangPacking::Whole || whole_share {
            let mut picked = Vec::with_capacity(want);
            for (shard, guard) in guards.iter().enumerate() {
                let Some(st) = guard else { continue };
                for &local in st.index.idle_nodes() {
                    picked.push(self.global_of(shard, local));
                    if picked.len() == want {
                        return picked;
                    }
                }
            }
            return picked;
        }
        // Partial packing: per-shard k-best candidates, merged by class key. The
        // per-shard enumeration is already ascending in key, so a stable sort by
        // (key, enumeration order) preserves each shard's best-fit order and
        // interleaves shards fairly.
        let mut candidates: Vec<(u64, usize, usize)> = Vec::new();
        let mut seq = 0usize;
        for (shard, guard) in guards.iter().enumerate() {
            let Some(st) = guard else { continue };
            for local in st.index.find_fit(req, want, &st.nodes) {
                let node = &st.nodes[local];
                let key = if node.is_idle() {
                    u64::MAX
                } else {
                    summary_key(node.free_gpus(), node.free_cores())
                };
                candidates.push((key, seq, self.global_of(shard, local)));
                seq += 1;
            }
        }
        candidates.sort_unstable();
        candidates
            .into_iter()
            .take(want)
            .map(|(_, _, node)| node)
            .collect()
    }

    /// Reserve one member share of `req` on each of the (sorted, distinct, indexed)
    /// global nodes in `picked` — whose shards the caller has locked —
    /// all-or-nothing, and register the resulting gang slot.
    fn claim_gang_locked(
        &self,
        guards: &mut [Option<parking_lot::MutexGuard<'_, ShardState>>],
        picked: &[usize],
        req: &ResourceRequest,
    ) -> Result<Slot, ResourceError> {
        let mut members: Vec<SlotMember> = Vec::with_capacity(picked.len());
        for &node_index in picked {
            let shard = self.shard_of(node_index);
            let st = guards[shard]
                .as_mut()
                .expect("caller locked every shard of picked");
            match self.reserve_member_in(st, node_index, req) {
                Ok(member) => members.push(member),
                Err(e) => {
                    // Unreachable while the shard locks are held (every candidate was
                    // proven to fit, and occupancy cannot grow underneath us), but
                    // keep the claim all-or-nothing: roll back every reservation
                    // made so far.
                    for member in &members {
                        let shard = self.shard_of(member.node_index);
                        let st = guards[shard].as_mut().expect("shard still locked");
                        self.release_member_in(st, member);
                    }
                    return Err(e);
                }
            }
        }
        let id = self.next_slot_id.fetch_add(1, Ordering::Relaxed);
        let slot = Slot { id, members };
        self.register_slot(&slot);
        Ok(slot)
    }

    /// Open a backfill reservation for a gang-shaped `req`: every node whose current
    /// capacity covers one member share under the request's packing policy — fully
    /// idle nodes for [`GangPacking::Whole`], any node whose free headroom covers the
    /// share for [`GangPacking::Partial`] — is pinned immediately (up to `req.nodes`),
    /// and every node [`Allocation::release_slot`] later makes eligible is pinned
    /// too, until the reservation holds `req.nodes` nodes. Pinned nodes are invisible
    /// to every other placement path; all other capacity stays placeable (backfill
    /// *around* the reservation).
    ///
    /// Returns the drain id to pass to [`Allocation::allocate_reserved`] /
    /// [`Allocation::cancel_drain`]. At most one drain is active per allocation:
    /// a second `begin_drain` fails with [`ResourceError::DrainActive`].
    pub fn begin_drain(&self, req: &ResourceRequest) -> Result<u64, ResourceError> {
        self.check_satisfiable(req)?;
        // Lock order: drain controller first, then every shard ascending.
        let mut drain = self.drain.lock();
        if drain.is_some() {
            return Err(ResourceError::DrainActive);
        }
        let all: Vec<usize> = (0..self.num_shards).collect();
        let mut guards = self.lock_shards(&all);
        let id = self.next_drain_id.fetch_add(1, Ordering::Relaxed);
        let packing = req.packing.unwrap_or_default();
        // Pin what already covers a member share: idle nodes straight off the idle
        // buckets for Whole, the merged best-fit candidate set for Partial —
        // O(target) either way (see `pick_gang_nodes`).
        let pinned = self.pick_gang_nodes(&guards, req, req.nodes);
        for &node in &pinned {
            let shard = self.shard_of(node);
            let st = guards[shard].as_mut().expect("all shards locked");
            let local = self.local_of(node);
            st.index.remove(local);
            st.nodes[local].set_health(NodeHealth::Draining);
        }
        for (shard, guard) in guards.iter().enumerate() {
            if let Some(st) = guard {
                self.publish_summary(shard, st);
            }
        }
        *drain = Some(DrainReservation {
            id,
            req: *req,
            packing,
            pinned,
        });
        // Set while every shard lock is still held: a releaser that never saw this
        // flag can only have run its release before we scanned its shard, so the
        // scan above (or a later flagged release) pins every eligible node.
        self.drain_active.store(true, Ordering::SeqCst);
        Ok(id)
    }

    /// Cancel an active backfill reservation: every pinned node returns to the
    /// capacity index at its current headroom class (the idle bucket for idle pins,
    /// its reduced class for pinned-partial nodes), immediately placeable again.
    /// Returns how many nodes were released. Cancelling a drain that was already
    /// consumed by its placement (or never begun) fails with
    /// [`ResourceError::UnknownDrain`].
    pub fn cancel_drain(&self, drain_id: u64) -> Result<usize, ResourceError> {
        let mut drain = self.drain.lock();
        match &*drain {
            Some(d) if d.id == drain_id => {}
            _ => return Err(ResourceError::UnknownDrain(drain_id)),
        }
        let reservation = drain.take().expect("checked above");
        self.drain_active.store(false, Ordering::SeqCst);
        let released = reservation.pinned.len();
        let shard_ids = self.shard_ids_of(reservation.pinned.iter().copied());
        let mut guards = self.lock_shards(&shard_ids);
        for node in reservation.pinned {
            let shard = self.shard_of(node);
            let st = guards[shard].as_mut().expect("pinned shard locked");
            let local = self.local_of(node);
            st.nodes[local].set_health(NodeHealth::Healthy);
            let (fg, fc) = (st.nodes[local].free_gpus(), st.nodes[local].free_cores());
            st.index.insert(local, fg, fc);
        }
        for &shard in &shard_ids {
            self.publish_summary(shard, guards[shard].as_ref().expect("locked"));
        }
        Ok(released)
    }

    /// Place the draining gang on its reserved nodes, atomically consuming the
    /// reservation. Under partial packing the members land beside any residual slots
    /// still running on pinned-partial nodes — the pin criterion guaranteed one
    /// member share of headroom, and occupancy on a pinned node can only have shrunk
    /// since. Fails with [`ResourceError::InsufficientResources`] while the
    /// reservation is still short of its target (pinning continues via releases), and
    /// with [`ResourceError::UnknownDrain`] when `drain_id` is not the active drain.
    pub fn allocate_reserved(
        &self,
        drain_id: u64,
        req: &ResourceRequest,
    ) -> Result<Slot, ResourceError> {
        self.allocate_reserved_with_stats(drain_id, req)
            .map(|(slot, _)| slot)
    }

    /// [`Allocation::allocate_reserved`], additionally reporting how many shard
    /// locks the reserved claim took ([`PlacementProbes`]) — the shards actually
    /// locked for the pinned set, not a re-derivation from the returned slot.
    pub fn allocate_reserved_with_stats(
        &self,
        drain_id: u64,
        req: &ResourceRequest,
    ) -> Result<(Slot, PlacementProbes), ResourceError> {
        self.check_satisfiable(req)?;
        let mut drain = self.drain.lock();
        match &*drain {
            Some(d) if d.id == drain_id => {
                if d.req.nodes != req.nodes {
                    return Err(ResourceError::NeverSatisfiable {
                        reason: format!(
                            "drain reserved {} nodes but the request spans {}",
                            d.req.nodes, req.nodes
                        ),
                    });
                }
                if d.pinned.len() < d.req.nodes {
                    return Err(ResourceError::InsufficientResources);
                }
            }
            _ => return Err(ResourceError::UnknownDrain(drain_id)),
        }
        let reservation = drain.take().expect("checked above");
        self.drain_active.store(false, Ordering::SeqCst);
        let mut picked = reservation.pinned;
        // Rank order, and back into the shard indexes so the shared claim path (and
        // any undo) keeps them consistent.
        picked.sort_unstable();
        let shard_ids = self.shard_ids_of(picked.iter().copied());
        let mut guards = self.lock_shards(&shard_ids);
        for &node in &picked {
            let shard = self.shard_of(node);
            let st = guards[shard].as_mut().expect("pinned shard locked");
            let local = self.local_of(node);
            st.nodes[local].set_health(NodeHealth::Healthy);
            let (fg, fc) = (st.nodes[local].free_gpus(), st.nodes[local].free_cores());
            st.index.insert(local, fg, fc);
        }
        // On the unreachable failure path the nodes stay indexed and the reservation
        // is gone — a failed reserved claim cancels the drain rather than leaking it.
        let result = self.claim_gang_locked(&mut guards, &picked, req);
        for &shard in &shard_ids {
            self.publish_summary(shard, guards[shard].as_ref().expect("locked"));
        }
        let probes = PlacementProbes {
            shard_probes: shard_ids.len() as u32,
        };
        result.map(|slot| (slot, probes))
    }

    /// Number of nodes currently pinned by the active backfill reservation
    /// (0 when no drain is active), idle and pinned-partial alike.
    pub fn reserved_nodes(&self) -> usize {
        self.drain.lock().as_ref().map_or(0, |d| d.pinned.len())
    }

    /// Status of the active backfill reservation, if any: how many pinned nodes are
    /// fully idle vs still occupied by residual slots (pinned-partial), against the
    /// reservation's node target. O(pinned nodes), locking only the pinned shards.
    pub fn drain_status(&self) -> Option<DrainStatus> {
        let drain = self.drain.lock();
        let d = drain.as_ref()?;
        let shard_ids = self.shard_ids_of(d.pinned.iter().copied());
        let guards = self.lock_shards(&shard_ids);
        let pinned_idle = d
            .pinned
            .iter()
            .filter(|&&n| {
                let st = guards[self.shard_of(n)]
                    .as_ref()
                    .expect("pinned shard locked");
                st.nodes[self.local_of(n)].is_idle()
            })
            .count();
        Some(DrainStatus {
            pinned_idle,
            pinned_partial: d.pinned.len() - pinned_idle,
            target: d.req.nodes,
        })
    }

    /// Release a previously allocated slot, updating the capacity index incrementally
    /// — O(1) for single-node slots, O(gang size) for gangs, whose member nodes all
    /// return to the idle bucket as a unit. Unknown, foreign, and already-released
    /// slots are all rejected. A slot that was evicted by [`Allocation::fail_node`]
    /// (or whose node failed in the claim/registration window) reports
    /// [`ResourceError::NodeFailed`] instead: its resources were already reclaimed,
    /// so the caller must treat it as released, not as a bug.
    pub fn release_slot(&self, slot: &Slot) -> Result<(), ResourceError> {
        if slot.members.is_empty() {
            return Err(ResourceError::UnknownSlot(slot.id));
        }
        // Validate every membership before mutating anything, so a foreign or corrupt
        // gang slot cannot be half-released. The name map is append-only (fail/shrink
        // never remove entries), so slots on dead nodes still validate; the read
        // guard is dropped before any stripe or shard lock is acquired (expand holds
        // shard locks while appending names — never the reverse order).
        {
            let names = self.node_names.read();
            for member in &slot.members {
                match names.get(member.node_index) {
                    Some(name) if *name == member.node_name => {}
                    _ => return Err(ResourceError::UnknownSlot(slot.id)),
                }
            }
        }
        if self.live_slots[slot.id as usize % LIVE_SLOT_STRIPES]
            .lock()
            .remove(&slot.id)
            .is_none()
        {
            // Not live. Either a node failure evicted it (report that exactly once,
            // forgetting the id) or it was already released / never issued — which
            // must not re-credit cores, GPUs, or — crucially — memory, which has no
            // occupancy bit to catch the repeat.
            if let Some(node) = self.failed_slots.lock().remove(&slot.id) {
                return Err(ResourceError::NodeFailed(node));
            }
            return Err(ResourceError::UnknownSlot(slot.id));
        }
        // Drain-aware locking: when a drain is (or may be) active, the controller
        // lock must be held *before* the shard locks so freed nodes can be pinned in
        // the same critical section. The lock-free flag keeps the controller off the
        // no-drain hot path; if it flips between our check and the shard-lock
        // acquisition (a concurrent `begin_drain` that scanned this shard before the
        // release landed), restart once with the controller held — so the "pin
        // before any waiter wakes" guarantee survives sharding.
        let mut take_drain = self.drain_active.load(Ordering::SeqCst);
        if let [member] = slot.members.as_slice() {
            // Single-node fast path: exactly one shard lock, no intermediate
            // allocations — the release half of the placement hot path.
            let shard = self.shard_of(member.node_index);
            loop {
                let mut drain_guard = if take_drain {
                    Some(self.drain.lock())
                } else {
                    None
                };
                let mut st = self.shards[shard].lock();
                if drain_guard.is_none() && self.drain_active.load(Ordering::SeqCst) {
                    drop(st);
                    take_drain = true;
                    continue;
                }
                if node_written_off(&st.nodes[self.local_of(member.node_index)]) {
                    // The node failed inside the claim/registration window, so
                    // `fail_node` could not see this slot: its resources died with
                    // the node (already written off) — nothing to re-credit.
                    return Err(ResourceError::NodeFailed(member.node_index));
                }
                self.release_member_in(&mut st, member);
                if let Some(drain) = drain_guard.as_mut().and_then(|g| g.as_mut()) {
                    self.pin_after_release(drain, &mut st, member.node_index);
                }
                self.publish_summary(shard, &st);
                return Ok(());
            }
        }
        let shard_ids = self.shard_ids_of(slot.node_indices());
        loop {
            let mut drain_guard = if take_drain {
                Some(self.drain.lock())
            } else {
                None
            };
            let mut guards = self.lock_shards(&shard_ids);
            if drain_guard.is_none() && self.drain_active.load(Ordering::SeqCst) {
                drop(guards);
                take_drain = true;
                continue;
            }
            // Members on written-off (failed) nodes are skipped: their resources
            // died with the node. Healthy members release normally either way.
            let mut failed_member_node = None;
            for member in &slot.members {
                let shard = self.shard_of(member.node_index);
                let st = guards[shard].as_mut().expect("member shard locked");
                if node_written_off(&st.nodes[self.local_of(member.node_index)]) {
                    failed_member_node.get_or_insert(member.node_index);
                    continue;
                }
                self.release_member_in(st, member);
            }
            if let Some(drain) = drain_guard.as_mut().and_then(|g| g.as_mut()) {
                for member in &slot.members {
                    let shard = self.shard_of(member.node_index);
                    let st = guards[shard].as_mut().expect("member shard locked");
                    if node_written_off(&st.nodes[self.local_of(member.node_index)]) {
                        continue;
                    }
                    self.pin_after_release(drain, st, member.node_index);
                }
            }
            for &shard in &shard_ids {
                self.publish_summary(shard, guards[shard].as_ref().expect("locked"));
            }
            return match failed_member_node {
                Some(node) => Err(ResourceError::NodeFailed(node)),
                None => Ok(()),
            };
        }
    }

    /// Backfill reservation hook, run inside the release's critical section: a node
    /// this release made able to cover one member share (fully idle for Whole
    /// drains, share-sized headroom for Partial ones) is pinned to the draining
    /// gang *before* the scheduler can wake any other waiter, so a lookahead
    /// request can never race the drain for the freed capacity.
    fn pin_after_release(&self, drain: &mut DrainReservation, st: &mut ShardState, node: usize) {
        let local = self.local_of(node);
        if drain.pinned.len() < drain.req.nodes
            && st.index.contains(local)
            && drain.covers(&st.nodes[local])
        {
            st.index.remove(local);
            st.nodes[local].set_health(NodeHealth::Draining);
            drain.pinned.push(node);
        }
        // The pin-wins guarantee, stated as a postcondition: while the reservation
        // is short of its target, no node this release made share-covering may
        // remain visible to other placements.
        debug_assert!(
            drain.pinned.len() >= drain.req.nodes
                || !(st.index.contains(local) && drain.covers(&st.nodes[local])),
            "release left a share-covering node unpinned under an active drain"
        );
    }

    /// True when no slot is currently allocated (O(1), lock-free: cached
    /// idle-node count).
    pub fn is_idle(&self) -> bool {
        self.non_idle_nodes.load(Ordering::Relaxed) == 0
    }

    /// Append `n` fresh, fully idle nodes to the allocation (a pilot growing at
    /// runtime), returning their global indices.
    ///
    /// The striped partition is append-friendly: a new global index `g` lands in
    /// shard `g % shards` at local index `g / shards`, which is exactly the end of
    /// that shard's node slice — so expansion appends into the shards without
    /// moving any existing node or invalidating any outstanding slot. An active
    /// backfill reservation still short of its target pins eligible new nodes
    /// before any other placement can see them (same guarantee as
    /// [`Allocation::release_slot`]'s pin hook).
    pub fn expand(&self, n: usize) -> Result<Vec<usize>, ResourceError> {
        if n == 0 {
            return Ok(Vec::new());
        }
        // Lock order: drain controller → all shard locks ascending → name-map
        // write. Holding the controller lets the drain pin fresh capacity in the
        // same critical section and orders expansion against fail/shrink.
        let mut drain_guard = self.drain.lock();
        let all: Vec<usize> = (0..self.num_shards).collect();
        let mut guards = self.lock_shards(&all);
        let mut names = self.node_names.write();
        let spec = self.platform.node;
        let mut new_nodes = Vec::with_capacity(n);
        for _ in 0..n {
            // Physical index = every name ever minted (healthy + failed + retired):
            // dead nodes keep their slots in the shard vectors, so the striped
            // mapping stays bijective across the allocation's whole history.
            let g = names.len();
            let shard = g % self.num_shards;
            let st = guards[shard].as_mut().expect("all shards locked");
            debug_assert_eq!(self.local_of(g), st.nodes.len(), "striped append");
            let node = NodeState::new(self.platform.node_name(g), spec);
            names.push(Arc::clone(&node.name));
            st.nodes.push(node);
            let local = st.index.push_idle();
            debug_assert_eq!(local, self.local_of(g));
            new_nodes.push(g);
        }
        drop(names);
        self.num_nodes.fetch_add(n as u64, Ordering::Relaxed);
        self.free_cores
            .fetch_add(n as u64 * spec.cores as u64, Ordering::Relaxed);
        self.free_gpus
            .fetch_add(n as u64 * spec.gpus as u64, Ordering::Relaxed);
        if let Some(drain) = drain_guard.as_mut() {
            for &g in &new_nodes {
                let shard = self.shard_of(g);
                let st = guards[shard].as_mut().expect("all shards locked");
                self.pin_after_release(drain, st, g);
            }
        }
        for (shard, guard) in guards.iter().enumerate() {
            if let Some(st) = guard {
                self.publish_summary(shard, st);
            }
        }
        Ok(new_nodes)
    }

    /// Retire `n` nodes from the allocation (a pilot shrinking at runtime),
    /// returning the retired global indices. Shrink is a drain with no waiting
    /// gang: it runs under the drain-controller lock (so it can never race a
    /// backfill reservation's pin hook — an active reservation wins and shrink
    /// reports [`ResourceError::DrainActive`]) and only takes nodes that carry no
    /// slot. Failed nodes retire first — they are already written off, so
    /// retiring them costs no capacity — then fully idle healthy ones. All or
    /// nothing: when fewer than `n` nodes are currently retirable the allocation
    /// is left untouched and [`ResourceError::InsufficientResources`] is returned
    /// (the caller retries once load has drained).
    pub fn shrink(&self, n: usize) -> Result<Vec<usize>, ResourceError> {
        if n == 0 {
            return Ok(Vec::new());
        }
        let drain_guard = self.drain.lock();
        if drain_guard.is_some() {
            return Err(ResourceError::DrainActive);
        }
        let all: Vec<usize> = (0..self.num_shards).collect();
        let mut guards = self.lock_shards(&all);
        // Candidate pass first, so failure mutates nothing. The failed scan walks
        // every node entry ever attached (retired ones included), so skip it
        // entirely on the common no-failure resize path — the counter is exact
        // under the drain + shard locks we hold.
        let mut retire_failed: Vec<usize> = Vec::new();
        let any_failed = self.failed_nodes.load(Ordering::Relaxed) > 0;
        'failed: for (shard, guard) in guards.iter().enumerate() {
            if !any_failed {
                break;
            }
            let st = guard.as_ref().expect("all shards locked");
            for (local, node) in st.nodes.iter().enumerate() {
                if node.health() == NodeHealth::Failed {
                    retire_failed.push(self.global_of(shard, local));
                    if retire_failed.len() == n {
                        break 'failed;
                    }
                }
            }
        }
        let mut retire_idle: Vec<usize> = Vec::new();
        if retire_failed.len() < n {
            let want = n - retire_failed.len();
            'idle: for (shard, guard) in guards.iter().enumerate() {
                let st = guard.as_ref().expect("all shards locked");
                for &local in st.index.idle_nodes() {
                    retire_idle.push(self.global_of(shard, local));
                    if retire_idle.len() == want {
                        break 'idle;
                    }
                }
            }
            if retire_idle.len() < want {
                return Err(ResourceError::InsufficientResources);
            }
        }
        for &g in &retire_failed {
            let shard = self.shard_of(g);
            let st = guards[shard].as_mut().expect("locked");
            st.nodes[self.local_of(g)].set_health(NodeHealth::Retired);
        }
        self.failed_nodes
            .fetch_sub(retire_failed.len() as u64, Ordering::Relaxed);
        let spec = self.platform.node;
        for &g in &retire_idle {
            let shard = self.shard_of(g);
            let st = guards[shard].as_mut().expect("locked");
            let local = self.local_of(g);
            st.index.remove(local);
            st.nodes[local].set_health(NodeHealth::Retired);
        }
        self.num_nodes
            .fetch_sub(retire_idle.len() as u64, Ordering::Relaxed);
        self.free_cores.fetch_sub(
            retire_idle.len() as u64 * spec.cores as u64,
            Ordering::Relaxed,
        );
        self.free_gpus.fetch_sub(
            retire_idle.len() as u64 * spec.gpus as u64,
            Ordering::Relaxed,
        );
        for (shard, guard) in guards.iter().enumerate() {
            if let Some(st) = guard {
                self.publish_summary(shard, st);
            }
        }
        retire_failed.extend(retire_idle);
        Ok(retire_failed)
    }

    /// Fail node `node` at runtime: atomically mark it [`NodeHealth::Failed`],
    /// remove it from its shard's capacity index and headroom summary, unpin it
    /// from any active backfill reservation, evict every live slot with a member
    /// on it (co-resident members on healthy nodes return to their headroom
    /// classes; the failed node's capacity is written off the allocation's
    /// aggregates), and return the evicted slot ids so the scheduler can requeue
    /// their owners. Each victim's eventual [`Allocation::release_slot`] reports
    /// [`ResourceError::NodeFailed`] instead of double-crediting. Failing a node
    /// that already failed (or was retired) is a no-op returning no victims.
    pub fn fail_node(&self, node: usize) -> Result<Vec<u64>, ResourceError> {
        // Lock order: drain controller → all shard locks ascending → live-slot
        // stripes (the gang-claim order; release only takes a stripe lock as a
        // dropped temporary before its shard locks, so no cycle exists).
        let mut drain_guard = self.drain.lock();
        let all: Vec<usize> = (0..self.num_shards).collect();
        let mut guards = self.lock_shards(&all);
        let shard = self.shard_of(node);
        let local = self.local_of(node);
        {
            let st = guards[shard].as_ref().expect("all shards locked");
            match st.nodes.get(local).map(|n| n.health()) {
                None => return Err(ResourceError::UnknownNode(node)),
                Some(NodeHealth::Failed) | Some(NodeHealth::Retired) => return Ok(Vec::new()),
                Some(_) => {}
            }
        }
        if let Some(drain) = drain_guard.as_mut() {
            drain.pinned.retain(|&p| p != node);
        }
        {
            let st = guards[shard].as_mut().expect("locked");
            if st.index.contains(local) {
                st.index.remove(local);
            }
        }
        // Evict every live slot with a member on the node. Registered slots are
        // fully visible here (gang claims register under the shard locks we hold;
        // single claims registered before our stripe scan are seen, later ones
        // carry reservations the write-off below accounts for).
        let mut victims: Vec<Slot> = Vec::new();
        for stripe in &self.live_slots {
            let mut stripe = stripe.lock();
            let ids: Vec<u64> = stripe
                .iter()
                .filter(|(_, slot)| slot.members.iter().any(|m| m.node_index == node))
                .map(|(&id, _)| id)
                .collect();
            for id in ids {
                victims.push(stripe.remove(&id).expect("just listed"));
            }
        }
        {
            let mut failed_map = self.failed_slots.lock();
            for slot in &victims {
                failed_map.insert(slot.id, node);
            }
        }
        for slot in &victims {
            for member in &slot.members {
                let member_shard = self.shard_of(member.node_index);
                let st = guards[member_shard].as_mut().expect("locked");
                self.release_member_in(st, member);
                if member.node_index != node {
                    if let Some(drain) = drain_guard.as_mut() {
                        self.pin_after_release(drain, st, member.node_index);
                    }
                }
            }
        }
        // Write the node off the books. Units still reserved by a slot in the
        // claim/registration window die with the node: its eventual release
        // reports NodeFailed and credits nothing.
        {
            let st = guards[shard].as_mut().expect("locked");
            let node_state = &mut st.nodes[local];
            if !node_state.is_idle() {
                self.non_idle_nodes.fetch_sub(1, Ordering::Relaxed);
            }
            self.free_cores
                .fetch_sub(node_state.free_cores() as u64, Ordering::Relaxed);
            self.free_gpus
                .fetch_sub(node_state.free_gpus() as u64, Ordering::Relaxed);
            node_state.set_health(NodeHealth::Failed);
        }
        self.num_nodes.fetch_sub(1, Ordering::Relaxed);
        self.failed_nodes.fetch_add(1, Ordering::Relaxed);
        for (shard, guard) in guards.iter().enumerate() {
            if let Some(st) = guard {
                self.publish_summary(shard, st);
            }
        }
        Ok(victims.into_iter().map(|s| s.id).collect())
    }

    /// True when slot `id` was evicted by a node failure and that eviction has not
    /// yet been observed through [`Allocation::release_slot`]. A peek: the id is
    /// only forgotten when the release reports it.
    pub fn slot_evicted(&self, id: u64) -> bool {
        self.failed_slots.lock().contains_key(&id)
    }

    /// Health of global node `node`, or `None` when the index was never part of
    /// the allocation. O(1) under one shard lock (test/oracle introspection).
    pub fn node_health(&self, node: usize) -> Option<NodeHealth> {
        let shard = self.shard_of(node);
        let local = self.local_of(node);
        let st = self.shards[shard].lock();
        st.nodes.get(local).map(|n| n.health())
    }
}

/// True when the node's capacity has been written off the allocation's books
/// (failed, or retired after failing): a release must not re-credit it.
fn node_written_off(node: &NodeState) -> bool {
    matches!(node.health(), NodeHealth::Failed | NodeHealth::Retired)
}

/// The platform's batch / resource manager.
pub struct BatchSystem {
    spec: PlatformSpec,
    clock: SharedClock,
    rng: Mutex<StdRng>,
    nodes_in_use: AtomicU64,
    next_alloc_id: AtomicU64,
}

impl std::fmt::Debug for BatchSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSystem")
            .field("platform", &self.spec.id)
            .field("nodes_in_use", &self.nodes_in_use.load(Ordering::Relaxed))
            .finish()
    }
}

impl BatchSystem {
    /// Create a batch system for the given platform.
    pub fn new(spec: PlatformSpec, clock: SharedClock, seed: u64) -> Self {
        BatchSystem {
            spec,
            clock,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            nodes_in_use: AtomicU64::new(0),
            next_alloc_id: AtomicU64::new(0),
        }
    }

    /// The platform this batch system manages.
    pub fn platform(&self) -> &PlatformSpec {
        &self.spec
    }

    /// Nodes currently held by active allocations.
    pub fn nodes_in_use(&self) -> usize {
        self.nodes_in_use.load(Ordering::Relaxed) as usize
    }

    /// Nodes currently free.
    pub fn nodes_free(&self) -> usize {
        self.spec.num_nodes.saturating_sub(self.nodes_in_use())
    }

    /// Submit an allocation request. Blocks for the modelled queue wait (on the virtual
    /// clock) when requested, then returns an active [`Allocation`].
    pub fn submit(&self, req: AllocationRequest) -> Result<Arc<Allocation>, BatchError> {
        if req.nodes == 0 {
            return Err(BatchError::EmptyRequest);
        }
        if req.nodes > self.spec.num_nodes {
            return Err(BatchError::TooLarge {
                requested: req.nodes,
                available: self.spec.num_nodes,
            });
        }
        // Reserve nodes atomically against concurrent submissions.
        loop {
            let used = self.nodes_in_use.load(Ordering::Acquire);
            if used as usize + req.nodes > self.spec.num_nodes {
                return Err(BatchError::Busy);
            }
            if self
                .nodes_in_use
                .compare_exchange(
                    used,
                    used + req.nodes as u64,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                break;
            }
        }

        let queue_wait_secs = if req.model_queue_wait && self.spec.queue_wait_mean_secs > 0.0 {
            let dist = Dist::exponential_with_mean(self.spec.queue_wait_mean_secs);
            let wait = dist.sample_secs(&mut *self.rng.lock());
            self.clock.sleep(wait);
            wait.as_secs_f64()
        } else {
            0.0
        };

        let id = self.next_alloc_id.fetch_add(1, Ordering::Relaxed);
        let num_shards = req.config.resolve_shards(req.nodes);
        // Striped partition: global node g lives in shard g % num_shards at local
        // index g / num_shards (push order below preserves exactly that mapping).
        let mut shard_nodes: Vec<Vec<NodeState>> = vec![Vec::new(); num_shards];
        let mut node_names = Vec::with_capacity(req.nodes);
        for g in 0..req.nodes {
            let node = NodeState::new(self.spec.node_name(g), self.spec.node);
            node_names.push(Arc::clone(&node.name));
            shard_nodes[g % num_shards].push(node);
        }
        let shards: Vec<Mutex<ShardState>> = shard_nodes
            .into_iter()
            .map(|nodes| {
                let index = CapacityIndex::new(self.spec.node, nodes.len());
                Mutex::new(ShardState { nodes, index })
            })
            .collect();
        let summaries = shards
            .iter()
            .map(|shard| AtomicU64::new(shard.lock().index.summary()))
            .collect();
        Ok(Arc::new(Allocation {
            id,
            platform: self.spec.clone(),
            num_nodes: AtomicU64::new(req.nodes as u64),
            failed_nodes: AtomicU64::new(0),
            num_shards,
            shards,
            summaries,
            node_names: RwLock::new(node_names),
            free_cores: AtomicU64::new(req.nodes as u64 * self.spec.node.cores as u64),
            free_gpus: AtomicU64::new(req.nodes as u64 * self.spec.node.gpus as u64),
            non_idle_nodes: AtomicU64::new(0),
            live_slots: (0..LIVE_SLOT_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            failed_slots: Mutex::new(HashMap::new()),
            drain: Mutex::new(None),
            drain_active: std::sync::atomic::AtomicBool::new(false),
            probe_cursor: AtomicU64::new(0),
            next_slot_id: AtomicU64::new(0),
            next_drain_id: AtomicU64::new(0),
            queue_wait_secs,
            walltime_secs: req.walltime_secs,
        }))
    }

    /// Reserve `n` additional nodes from the platform's free pool (a pilot about
    /// to [`Allocation::expand`]). Atomic against concurrent submissions; fails
    /// with [`BatchError::Busy`] when the platform cannot spare them right now.
    pub fn grow(&self, n: usize) -> Result<(), BatchError> {
        if n == 0 {
            return Ok(());
        }
        if n > self.spec.num_nodes {
            return Err(BatchError::TooLarge {
                requested: n,
                available: self.spec.num_nodes,
            });
        }
        loop {
            let used = self.nodes_in_use.load(Ordering::Acquire);
            if used as usize + n > self.spec.num_nodes {
                return Err(BatchError::Busy);
            }
            if self
                .nodes_in_use
                .compare_exchange(used, used + n as u64, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Ok(());
            }
        }
    }

    /// Return `n` nodes to the platform's free pool (retired by a shrink).
    /// Saturating, like [`BatchSystem::release`].
    pub fn shed(&self, n: usize) {
        let mut current = self.nodes_in_use.load(Ordering::Acquire);
        loop {
            let next = current.saturating_sub(n as u64);
            match self.nodes_in_use.compare_exchange(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Return an allocation's nodes to the free pool — every node still attached,
    /// failed-but-not-retired ones included (they were charged until now).
    pub fn release(&self, allocation: &Allocation) {
        let n = allocation.attached_nodes() as u64;
        // Saturating: releasing the same allocation twice must not underflow.
        let mut current = self.nodes_in_use.load(Ordering::Acquire);
        loop {
            let next = current.saturating_sub(n);
            match self.nodes_in_use.compare_exchange(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PlatformId;
    use hpcml_sim::clock::ClockSpec;

    fn batch(platform: PlatformId) -> BatchSystem {
        BatchSystem::new(platform.spec(), ClockSpec::Manual.build(), 7)
    }

    fn gpus(n: u32) -> ResourceRequest {
        ResourceRequest::gpus(n).unwrap()
    }

    fn cores(n: u32) -> ResourceRequest {
        ResourceRequest::cores(n).unwrap()
    }

    #[test]
    fn submit_and_release_allocation() {
        let b = batch(PlatformId::Delta);
        let alloc = b.submit(AllocationRequest::nodes(4)).unwrap();
        assert_eq!(alloc.num_nodes(), 4);
        assert_eq!(alloc.total_cores(), 256);
        assert_eq!(alloc.total_gpus(), 16);
        assert_eq!(b.nodes_in_use(), 4);
        b.release(&alloc);
        assert_eq!(b.nodes_in_use(), 0);
        b.release(&alloc); // double release must not underflow
        assert_eq!(b.nodes_in_use(), 0);
    }

    #[test]
    fn submit_rejects_bad_requests() {
        let b = batch(PlatformId::Local);
        assert_eq!(
            b.submit(AllocationRequest::nodes(0)).unwrap_err(),
            BatchError::EmptyRequest
        );
        let err = b.submit(AllocationRequest::nodes(100)).unwrap_err();
        assert!(matches!(
            err,
            BatchError::TooLarge {
                requested: 100,
                available: 2
            }
        ));
        let _a = b.submit(AllocationRequest::nodes(2)).unwrap();
        assert_eq!(
            b.submit(AllocationRequest::nodes(1)).unwrap_err(),
            BatchError::Busy
        );
        assert!(!format!("{:?}", b).is_empty());
    }

    #[test]
    fn allocation_slots_respect_capacity() {
        let b = batch(PlatformId::Local); // 2 nodes x (8 cores, 2 gpus)
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        let mut slots = Vec::new();
        for _ in 0..4 {
            slots.push(alloc.allocate_slot(&gpus(1)).unwrap());
        }
        assert_eq!(alloc.free_gpus(), 0);
        assert_eq!(
            alloc.allocate_slot(&gpus(1)).unwrap_err(),
            ResourceError::InsufficientResources
        );
        // Slots must land on both nodes.
        let node_indices: std::collections::HashSet<usize> =
            slots.iter().map(|s| s.node_index()).collect();
        assert_eq!(node_indices.len(), 2);
        for s in &slots {
            alloc.release_slot(s).unwrap();
        }
        assert!(alloc.is_idle());
        assert_eq!(alloc.free_gpus(), 4);
    }

    #[test]
    fn oversized_slot_request_is_never_satisfiable() {
        let b = batch(PlatformId::Local);
        let alloc = b.submit(AllocationRequest::nodes(1)).unwrap();
        let err = alloc.allocate_slot(&cores(64)).unwrap_err();
        assert!(matches!(err, ResourceError::NeverSatisfiable { .. }));
        assert!(alloc.check_satisfiable(&cores(64)).is_err());
        assert!(alloc.check_satisfiable(&cores(1)).is_ok());
    }

    #[test]
    fn zero_unit_request_cannot_reach_the_index() {
        let b = batch(PlatformId::Local);
        let alloc = b.submit(AllocationRequest::nodes(1)).unwrap();
        // A struct-literal memory-only request pins no core or GPU; were it allowed
        // through, its node would sit in the idle bucket with live memory reserved.
        let literal = ResourceRequest {
            cores: 0,
            gpus: 0,
            mem_gib: 8.0,
            nodes: 1,
            packing: None,
        };
        assert_eq!(
            alloc.allocate_slot(&literal).unwrap_err(),
            ResourceError::EmptyRequest
        );
        assert_eq!(alloc.idle_nodes(), 1);
        assert!(alloc.is_idle());
    }

    #[test]
    fn release_unknown_slot_fails() {
        let b = batch(PlatformId::Local);
        let alloc = b.submit(AllocationRequest::nodes(1)).unwrap();
        let bogus = Slot::single(
            99,
            SlotMember {
                node_index: 5,
                node_name: "nope".into(),
                core_ids: vec![0],
                gpu_ids: vec![],
                mem_gib: 0.0,
                co_resident: false,
            },
        );
        assert!(matches!(
            alloc.release_slot(&bogus),
            Err(ResourceError::UnknownSlot(99))
        ));
        // Right index, wrong name: also rejected.
        let mut wrong_name = bogus.clone();
        wrong_name.members[0].node_index = 0;
        assert!(matches!(
            alloc.release_slot(&wrong_name),
            Err(ResourceError::UnknownSlot(99))
        ));
        // No members at all: rejected.
        let empty = Slot {
            id: 99,
            members: vec![],
        };
        assert!(matches!(
            alloc.release_slot(&empty),
            Err(ResourceError::UnknownSlot(99))
        ));
    }

    #[test]
    fn double_release_is_rejected_and_does_not_recredit_memory() {
        let b = batch(PlatformId::Local);
        let alloc = b.submit(AllocationRequest::nodes(1)).unwrap();
        let node_mem = alloc.node_spec().mem_gib;
        let hold = alloc
            .allocate_slot(&cores(1).with_mem_gib(node_mem * 0.4))
            .unwrap();
        let victim = alloc
            .allocate_slot(&cores(1).with_mem_gib(node_mem * 0.2))
            .unwrap();
        alloc.release_slot(&victim).unwrap();
        assert!(
            matches!(
                alloc.release_slot(&victim),
                Err(ResourceError::UnknownSlot(_))
            ),
            "second release of the same slot must be rejected"
        );
        // Were memory re-credited, this over-committing request would succeed.
        let err = alloc
            .allocate_slot(&cores(1).with_mem_gib(node_mem * 0.7))
            .unwrap_err();
        assert_eq!(err, ResourceError::InsufficientResources);
        alloc.release_slot(&hold).unwrap();
        assert!(alloc.is_idle());
    }

    #[test]
    fn queue_wait_modelled_when_requested() {
        let spec = PlatformId::Delta.spec();
        let clock = ClockSpec::scaled(100_000.0).build();
        let b = BatchSystem::new(spec, clock, 3);
        let alloc = b
            .submit(AllocationRequest::nodes(1).with_queue_wait(true))
            .unwrap();
        assert!(alloc.queue_wait_secs() > 0.0);
        let alloc2 = b.submit(AllocationRequest::nodes(1)).unwrap();
        assert_eq!(alloc2.queue_wait_secs(), 0.0);
    }

    #[test]
    fn frontier_supports_experiment1_scale() {
        let b = batch(PlatformId::Frontier);
        // 640 services x 1 GPU each => 80 Frontier nodes.
        let alloc = b.submit(AllocationRequest::nodes(80)).unwrap();
        let mut slots = Vec::with_capacity(640);
        for _ in 0..640 {
            slots.push(alloc.allocate_slot(&gpus(1)).unwrap());
        }
        assert_eq!(alloc.free_gpus(), 0);
        assert_eq!(slots.len(), 640);
    }

    #[test]
    fn best_fit_prefers_partially_filled_nodes() {
        let b = batch(PlatformId::Local); // 2 nodes x (8 cores, 2 gpus)
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        let first = alloc.allocate_slot(&cores(2)).unwrap();
        assert_eq!(alloc.idle_nodes(), 1);
        // The next small request must pack onto the same node, keeping one node idle
        // for whole-node or GPU-heavy placements.
        let second = alloc.allocate_slot(&cores(2)).unwrap();
        assert_eq!(second.node_index(), first.node_index());
        assert_eq!(alloc.idle_nodes(), 1);
        // A whole-node request then takes the untouched node.
        let whole = alloc.allocate_slot(&cores(8)).unwrap();
        assert_ne!(whole.node_index(), first.node_index());
        assert_eq!(alloc.idle_nodes(), 0);
    }

    #[test]
    fn gpu_requests_avoid_draining_gpu_rich_nodes() {
        let b = batch(PlatformId::Local); // 2 nodes x (8 cores, 2 gpus)
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        // Take one GPU so node A is GPU-poorer than node B.
        let gpu_slot = alloc.allocate_slot(&gpus(1)).unwrap();
        // A CPU-only request should land on the GPU-poor node (smallest sufficient
        // GPU level first), preserving node B for GPU work.
        let cpu_slot = alloc.allocate_slot(&cores(1)).unwrap();
        assert_eq!(cpu_slot.node_index(), gpu_slot.node_index());
        // And a 2-GPU request still finds the untouched node.
        let big_gpu = alloc
            .allocate_slot(&ResourceRequest {
                cores: 2,
                gpus: 2,
                mem_gib: 0.0,
                nodes: 1,
                packing: None,
            })
            .unwrap();
        assert_ne!(big_gpu.node_index(), gpu_slot.node_index());
    }

    #[test]
    fn memory_constrained_requests_fall_through_to_fitting_nodes() {
        let b = batch(PlatformId::Local);
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        let node_mem = alloc.node_spec().mem_gib;
        // Consume almost all memory on one node (but only one core).
        let hog = alloc
            .allocate_slot(&cores(1).with_mem_gib(node_mem - 1.0))
            .unwrap();
        // A request needing lots of memory must skip the memory-hogged node even though
        // its core class looks attractive.
        let needy = alloc
            .allocate_slot(&cores(1).with_mem_gib(node_mem / 2.0))
            .unwrap();
        assert_ne!(needy.node_index(), hog.node_index());
        alloc.release_slot(&hog).unwrap();
        alloc.release_slot(&needy).unwrap();
        assert!(alloc.is_idle());
    }

    #[test]
    fn gang_claims_distinct_idle_nodes_atomically() {
        let b = batch(PlatformId::Delta); // 64 cores, 4 gpus per node
        let alloc = b.submit(AllocationRequest::nodes(4)).unwrap();
        let gang = alloc
            .allocate_slot(&cores(32).with_mem_gib(64.0).with_nodes(3))
            .unwrap();
        assert!(gang.is_gang());
        assert_eq!(gang.num_nodes(), 3);
        assert_eq!(gang.num_cores(), 96, "32 ranks-per-node cores x 3 nodes");
        // Members are distinct nodes in rank (node-index) order.
        let indices: Vec<usize> = gang.node_indices().collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, indices, "members must be in rank order");
        assert_eq!(sorted.len(), 3, "members must be distinct nodes");
        assert_eq!(alloc.idle_nodes(), 1);
        assert_eq!(alloc.free_cores(), 4 * 64 - 96);
        // Releasing the gang restores every member to idle as a unit.
        alloc.release_slot(&gang).unwrap();
        assert_eq!(alloc.idle_nodes(), 4);
        assert!(alloc.is_idle());
        assert_eq!(alloc.free_cores(), 4 * 64);
        // And a double release of the gang is rejected.
        assert!(matches!(
            alloc.release_slot(&gang),
            Err(ResourceError::UnknownSlot(_))
        ));
    }

    #[test]
    fn whole_packing_requires_fully_idle_member_nodes() {
        let b = batch(PlatformId::Local); // 2 nodes
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        // One core on one node leaves only one idle node: under Whole packing a
        // 2-node gang must wait even though raw core capacity is plentiful.
        let pin = alloc.allocate_slot(&cores(1)).unwrap();
        let whole_gang = cores(2).with_nodes(2).with_packing(GangPacking::Whole);
        assert_eq!(
            alloc.allocate_slot(&whole_gang).unwrap_err(),
            ResourceError::InsufficientResources
        );
        alloc.release_slot(&pin).unwrap();
        let gang = alloc.allocate_slot(&whole_gang).unwrap();
        assert_eq!(gang.num_nodes(), 2);
        assert_eq!(
            gang.partial_nodes(),
            0,
            "whole members are never co-resident"
        );
        alloc.release_slot(&gang).unwrap();
        assert!(alloc.is_idle());
    }

    #[test]
    fn partial_packing_spans_partially_free_nodes() {
        let b = batch(PlatformId::Local); // 2 nodes x (8 cores, 2 gpus)
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        // The same scenario Whole packing rejects: one core held on one node, yet a
        // sub-node gang best-fits beside it (packing defaults to Partial).
        let pin = alloc.allocate_slot(&cores(1)).unwrap();
        let gang = alloc.allocate_slot(&cores(2).with_nodes(2)).unwrap();
        assert_eq!(gang.num_nodes(), 2);
        assert_eq!(gang.num_cores(), 4);
        assert_eq!(
            gang.partial_nodes(),
            1,
            "exactly the pinned node's member is co-resident"
        );
        assert!(gang.node_indices().any(|n| n == pin.node_index()));
        assert_eq!(alloc.idle_nodes(), 0);
        // Releasing the gang restores the untouched node to idle and the shared node
        // to its single-core class.
        alloc.release_slot(&gang).unwrap();
        assert_eq!(alloc.idle_nodes(), 1);
        alloc.release_slot(&pin).unwrap();
        assert!(alloc.is_idle());
    }

    #[test]
    fn partial_packing_best_fits_before_touching_idle_nodes() {
        let b = batch(PlatformId::Delta); // 4 nodes x 64 cores
        let alloc = b.submit(AllocationRequest::nodes(4)).unwrap();
        // Two nodes loaded just over half (33 cores — the 31-core leftover cannot
        // host another 33-core slot, so the two holds land on distinct nodes), two
        // idle: a 2-node sub-node gang must co-locate on the loaded pair and leave
        // both idle nodes untouched for wider work.
        let hold_a = alloc.allocate_slot(&cores(33)).unwrap();
        let hold_b = alloc.allocate_slot(&cores(33)).unwrap();
        assert_ne!(hold_a.node_index(), hold_b.node_index());
        let gang = alloc.allocate_slot(&cores(31).with_nodes(2)).unwrap();
        assert_eq!(gang.partial_nodes(), 2, "both members co-resident");
        let gang_nodes: std::collections::HashSet<usize> = gang.node_indices().collect();
        assert!(gang_nodes.contains(&hold_a.node_index()));
        assert!(gang_nodes.contains(&hold_b.node_index()));
        assert_eq!(alloc.idle_nodes(), 2, "idle nodes are the last resort");
        // A whole-node-share gang still fits on the untouched idle pair.
        let whole = alloc.allocate_slot(&cores(64).with_nodes(2)).unwrap();
        assert_eq!(whole.partial_nodes(), 0);
        for slot in [&gang, &whole, &hold_a, &hold_b] {
            alloc.release_slot(slot).unwrap();
        }
        assert!(alloc.is_idle());
    }

    #[test]
    fn partial_gang_member_shares_respect_memory() {
        let b = batch(PlatformId::Local); // 2 nodes
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        let node_mem = alloc.node_spec().mem_gib;
        // One node keeps cores free but almost no memory: a memory-hungry gang share
        // must not best-fit onto it.
        let hog = alloc
            .allocate_slot(&cores(1).with_mem_gib(node_mem - 1.0))
            .unwrap();
        assert_eq!(
            alloc
                .allocate_slot(&cores(1).with_mem_gib(node_mem / 2.0).with_nodes(2))
                .unwrap_err(),
            ResourceError::InsufficientResources,
            "only one node can cover the per-member memory share"
        );
        alloc.release_slot(&hog).unwrap();
        let gang = alloc
            .allocate_slot(&cores(1).with_mem_gib(node_mem / 2.0).with_nodes(2))
            .unwrap();
        assert_eq!(gang.num_nodes(), 2);
        alloc.release_slot(&gang).unwrap();
        assert!(alloc.is_idle());
    }

    #[test]
    fn gang_wider_than_allocation_is_insufficient_until_it_grows() {
        // Width against the *current* node set is a capacity condition, not a
        // shape error — an elastic allocation can expand into the request.
        let b = batch(PlatformId::Local);
        let alloc = b.submit(AllocationRequest::nodes(1)).unwrap();
        let err = alloc.allocate_slot(&cores(1).with_nodes(2)).unwrap_err();
        assert!(matches!(err, ResourceError::InsufficientResources));
        alloc.expand(1).unwrap();
        let gang = alloc.allocate_slot(&cores(1).with_nodes(2)).unwrap();
        assert_eq!(gang.num_nodes(), 2);
        alloc.release_slot(&gang).unwrap();
    }

    #[test]
    fn gang_leftover_capacity_remains_placeable() {
        let b = batch(PlatformId::Local); // 2 nodes x (8 cores, 2 gpus)
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        // A 2-node gang taking 4 cores per node leaves 4 cores per node for others.
        let gang = alloc.allocate_slot(&cores(4).with_nodes(2)).unwrap();
        assert_eq!(alloc.idle_nodes(), 0);
        let extra = alloc.allocate_slot(&cores(4)).unwrap();
        assert!(gang.node_indices().any(|n| n == extra.node_index()));
        // Releasing the gang does not idle the co-tenanted node.
        alloc.release_slot(&gang).unwrap();
        assert_eq!(alloc.idle_nodes(), 1);
        alloc.release_slot(&extra).unwrap();
        assert!(alloc.is_idle());
    }

    #[test]
    fn drain_pins_idle_nodes_and_excludes_them_from_placement() {
        let b = batch(PlatformId::Local); // 2 nodes x (8 cores, 2 gpus)
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        let gang_req = cores(8).with_nodes(2);
        let id = alloc.begin_drain(&gang_req).unwrap();
        // Both idle nodes are pinned immediately and invisible to other requests.
        assert_eq!(alloc.reserved_nodes(), 2);
        assert_eq!(
            alloc.drain_status(),
            Some(DrainStatus {
                pinned_idle: 2,
                pinned_partial: 0,
                target: 2
            })
        );
        assert_eq!(
            alloc.allocate_slot(&cores(1)).unwrap_err(),
            ResourceError::InsufficientResources
        );
        assert_eq!(
            alloc.allocate_slot(&cores(1).with_nodes(2)).unwrap_err(),
            ResourceError::InsufficientResources
        );
        // Yet the nodes are still physically idle.
        assert_eq!(alloc.idle_nodes(), 2);
        // The reservation is complete, so the draining gang places atomically.
        let gang = alloc.allocate_reserved(id, &gang_req).unwrap();
        assert_eq!(gang.num_nodes(), 2);
        assert!(
            alloc.drain_status().is_none(),
            "placement consumes the drain"
        );
        alloc.release_slot(&gang).unwrap();
        assert_eq!(alloc.idle_nodes(), 2);
        assert!(alloc.allocate_slot(&cores(1)).is_ok());
    }

    #[test]
    fn drain_accumulates_newly_idle_nodes_via_release() {
        let b = batch(PlatformId::Local); // 2 nodes
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        let hold_a = alloc.allocate_slot(&cores(8)).unwrap();
        let hold_b = alloc.allocate_slot(&cores(8)).unwrap();
        let gang_req = cores(8).with_nodes(2);
        let id = alloc.begin_drain(&gang_req).unwrap();
        assert_eq!(alloc.reserved_nodes(), 0, "nothing idle to pin yet");
        assert_eq!(
            alloc.allocate_reserved(id, &gang_req).unwrap_err(),
            ResourceError::InsufficientResources
        );
        alloc.release_slot(&hold_a).unwrap();
        assert_eq!(
            alloc.reserved_nodes(),
            1,
            "freed node pinned, not re-placeable"
        );
        assert_eq!(
            alloc.allocate_slot(&cores(1)).unwrap_err(),
            ResourceError::InsufficientResources
        );
        alloc.release_slot(&hold_b).unwrap();
        assert_eq!(alloc.reserved_nodes(), 2);
        let gang = alloc.allocate_reserved(id, &gang_req).unwrap();
        assert_eq!(gang.num_nodes(), 2);
        assert_eq!(gang.num_cores(), 16);
        alloc.release_slot(&gang).unwrap();
        assert!(alloc.is_idle());
    }

    #[test]
    fn drain_pins_at_most_target_and_backfill_continues_around_it() {
        let b = batch(PlatformId::Delta); // 64 cores per node
        let alloc = b.submit(AllocationRequest::nodes(4)).unwrap();
        let gang_req = cores(64).with_nodes(2);
        let id = alloc.begin_drain(&gang_req).unwrap();
        // Only 2 of the 4 idle nodes are pinned; the rest stay placeable.
        assert_eq!(alloc.reserved_nodes(), 2);
        let around_a = alloc.allocate_slot(&cores(64)).unwrap();
        let around_b = alloc.allocate_slot(&cores(64)).unwrap();
        assert_eq!(
            alloc.allocate_slot(&cores(1)).unwrap_err(),
            ResourceError::InsufficientResources,
            "non-reserved capacity exhausted; pinned nodes must stay invisible"
        );
        // Releasing backfill slots must NOT grow the already-complete reservation.
        alloc.release_slot(&around_a).unwrap();
        assert_eq!(alloc.reserved_nodes(), 2);
        assert!(
            alloc.allocate_slot(&cores(1)).is_ok(),
            "freed node placeable"
        );
        let gang = alloc.allocate_reserved(id, &gang_req).unwrap();
        assert_eq!(gang.num_nodes(), 2);
        alloc.release_slot(&gang).unwrap();
        alloc.release_slot(&around_b).unwrap();
    }

    #[test]
    fn cancel_drain_returns_pinned_nodes_to_the_idle_bucket() {
        let b = batch(PlatformId::Local);
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        let gang_req = cores(4).with_nodes(2);
        let id = alloc.begin_drain(&gang_req).unwrap();
        assert_eq!(alloc.reserved_nodes(), 2);
        assert_eq!(alloc.cancel_drain(id).unwrap(), 2);
        assert!(alloc.drain_status().is_none());
        // The nodes are back in the idle bucket: a whole-allocation gang fits again.
        let gang = alloc.allocate_slot(&cores(8).with_nodes(2)).unwrap();
        assert_eq!(gang.num_nodes(), 2);
        alloc.release_slot(&gang).unwrap();
        // Stale ids are rejected everywhere.
        assert_eq!(
            alloc.cancel_drain(id).unwrap_err(),
            ResourceError::UnknownDrain(id)
        );
        assert_eq!(
            alloc.allocate_reserved(id, &gang_req).unwrap_err(),
            ResourceError::UnknownDrain(id)
        );
    }

    #[test]
    fn partial_drain_pins_covering_nodes_while_still_occupied() {
        let b = batch(PlatformId::Delta); // 4 nodes x 64 cores
        let alloc = b.submit(AllocationRequest::nodes(4)).unwrap();
        // Every node keeps a 24-core resident slot for the whole test, so no node is
        // ever fully idle; on top, a second 24-core slot per node eats the headroom
        // a 32-core member share would need (64 - 48 = 16 free). Allocated in
        // resident/churn pairs: once a node carries both, its 16-core leftover cannot
        // host the next pair's resident, so each pair lands on a fresh node.
        let mut residents = Vec::new();
        let mut churn = Vec::new();
        for _ in 0..4 {
            residents.push(alloc.allocate_slot(&cores(24)).unwrap());
            churn.push(alloc.allocate_slot(&cores(24)).unwrap());
        }
        for (r, c) in residents.iter().zip(&churn) {
            assert_eq!(r.node_index(), c.node_index(), "pairs share a node");
        }
        let gang_req = cores(32).with_nodes(4); // Partial by default
        assert_eq!(
            alloc.allocate_slot(&gang_req).unwrap_err(),
            ResourceError::InsufficientResources
        );
        let id = alloc.begin_drain(&gang_req).unwrap();
        assert_eq!(alloc.reserved_nodes(), 0, "no node covers a share yet");
        // Each churn release frees a node to 40 cores ≥ the 32-core share: pinned
        // immediately — while its resident slot keeps running (pinned-partial).
        for (i, slot) in churn.iter().enumerate() {
            alloc.release_slot(slot).unwrap();
            let status = alloc.drain_status().unwrap();
            assert_eq!(status.pinned(), i + 1);
            assert_eq!(status.pinned_partial, i + 1, "pins are still occupied");
            assert_eq!(status.pinned_idle, 0);
            assert_eq!(alloc.idle_nodes(), 0, "no node ever went idle");
        }
        assert!(alloc.drain_status().unwrap().complete());
        // Other requests cannot see the pinned capacity…
        assert_eq!(
            alloc.allocate_slot(&cores(1)).unwrap_err(),
            ResourceError::InsufficientResources
        );
        // …and the gang places beside the resident slots, consuming the drain.
        let gang = alloc.allocate_reserved(id, &gang_req).unwrap();
        assert_eq!(gang.num_nodes(), 4);
        assert_eq!(gang.partial_nodes(), 4, "every member is co-resident");
        assert!(alloc.drain_status().is_none());
        assert_eq!(alloc.free_cores(), 4 * 64 - 4 * 24 - 4 * 32);
        alloc.release_slot(&gang).unwrap();
        for slot in &residents {
            alloc.release_slot(slot).unwrap();
        }
        assert!(alloc.is_idle());
    }

    #[test]
    fn whole_drain_ignores_partially_free_nodes() {
        let b = batch(PlatformId::Delta); // 4 nodes x 64 cores
        let alloc = b.submit(AllocationRequest::nodes(4)).unwrap();
        // 34-core residents spread one per node (the 30-core leftover cannot host
        // another), keeping every node busy with 30 cores of headroom.
        let residents: Vec<_> = (0..4)
            .map(|_| alloc.allocate_slot(&cores(34)).unwrap())
            .collect();
        let gang_req = cores(30).with_nodes(4).with_packing(GangPacking::Whole);
        let id = alloc.begin_drain(&gang_req).unwrap();
        // Plenty of per-node headroom (30 cores ≥ the 30-core share), but Whole
        // packing pins only fully idle nodes — and none ever idles.
        assert_eq!(alloc.reserved_nodes(), 0);
        let churn = alloc.allocate_slot(&cores(24)).unwrap();
        alloc.release_slot(&churn).unwrap();
        assert_eq!(
            alloc.reserved_nodes(),
            0,
            "a release that does not idle the node must not pin it under Whole"
        );
        // Only a release that leaves the node fully idle pins it.
        alloc.release_slot(&residents[0]).unwrap();
        let status = alloc.drain_status().unwrap();
        assert_eq!((status.pinned_idle, status.pinned_partial), (1, 0));
        alloc.cancel_drain(id).unwrap();
        for slot in &residents[1..] {
            alloc.release_slot(slot).unwrap();
        }
        assert!(alloc.is_idle());
    }

    #[test]
    fn cancelled_partial_drain_restores_headroom_classes() {
        let b = batch(PlatformId::Local); // 2 nodes x 8 cores
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        let resident = alloc.allocate_slot(&cores(4)).unwrap();
        let gang_req = cores(4).with_nodes(2);
        let id = alloc.begin_drain(&gang_req).unwrap();
        // Both nodes cover a 4-core share (one partially, one idle) → both pinned.
        let status = alloc.drain_status().unwrap();
        assert_eq!((status.pinned_idle, status.pinned_partial), (1, 1));
        assert_eq!(alloc.cancel_drain(id).unwrap(), 2);
        // The partially occupied node returns to its reduced class, not the idle
        // bucket: a whole-node request must land on the untouched node…
        let whole = alloc.allocate_slot(&cores(8)).unwrap();
        assert_ne!(whole.node_index(), resident.node_index());
        // …and a small one best-fits back onto the co-tenanted node.
        let small = alloc.allocate_slot(&cores(2)).unwrap();
        assert_eq!(small.node_index(), resident.node_index());
        for slot in [&whole, &small, &resident] {
            alloc.release_slot(slot).unwrap();
        }
        assert!(alloc.is_idle());
    }

    #[test]
    fn only_one_drain_at_a_time() {
        let b = batch(PlatformId::Local);
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        let gang_req = cores(4).with_nodes(2);
        let id = alloc.begin_drain(&gang_req).unwrap();
        assert_eq!(
            alloc.begin_drain(&gang_req).unwrap_err(),
            ResourceError::DrainActive
        );
        alloc.cancel_drain(id).unwrap();
        let id2 = alloc.begin_drain(&gang_req).unwrap();
        assert_ne!(id, id2, "drain ids are never reused");
        alloc.cancel_drain(id2).unwrap();
    }

    #[test]
    fn allocate_reserved_rejects_mismatched_span() {
        let b = batch(PlatformId::Local);
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        let id = alloc.begin_drain(&cores(4).with_nodes(2)).unwrap();
        let err = alloc.allocate_reserved(id, &cores(4)).unwrap_err();
        assert!(matches!(err, ResourceError::NeverSatisfiable { .. }));
        assert_eq!(
            alloc.reserved_nodes(),
            2,
            "failed claim leaves the drain intact"
        );
        alloc.cancel_drain(id).unwrap();
    }

    #[test]
    fn small_allocations_resolve_to_one_shard_by_default() {
        let b = batch(PlatformId::Local);
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        assert_eq!(
            alloc.num_shards(),
            1,
            "below MIN_NODES_PER_SHARD the derived shard count must be 1 \
             (single-lock behavioural compatibility on every host)"
        );
        assert!(format!("{alloc:?}").contains("shards"));
    }

    #[test]
    fn sharded_allocation_stripes_nodes_and_conserves_capacity() {
        let b = batch(PlatformId::Delta); // 64 cores, 4 gpus per node
        let alloc = b
            .submit(AllocationRequest::nodes(8).with_allocator_shards(4))
            .unwrap();
        assert_eq!(alloc.num_shards(), 4);
        for g in 0..8 {
            assert_eq!(alloc.shard_of(g), g % 4, "striped partition");
        }
        // Exhaust every core across all shards: the sweep fallback must find the
        // last fitting node wherever it lives.
        let mut slots = Vec::new();
        for _ in 0..8 * 4 {
            slots.push(alloc.allocate_slot(&cores(16)).unwrap());
        }
        assert_eq!(alloc.free_cores(), 0);
        assert_eq!(
            alloc.allocate_slot(&cores(1)).unwrap_err(),
            ResourceError::InsufficientResources
        );
        // Node indices handed out are global and cover all 8 nodes.
        let nodes_touched: std::collections::HashSet<usize> =
            slots.iter().map(|s| s.node_index()).collect();
        assert_eq!(nodes_touched.len(), 8);
        for slot in &slots {
            alloc.release_slot(slot).unwrap();
        }
        assert!(alloc.is_idle());
        assert_eq!(alloc.free_cores(), 8 * 64);
        assert_eq!(alloc.idle_nodes(), 8);
    }

    #[test]
    fn sharded_probe_stats_are_bounded_by_the_shard_count() {
        let b = batch(PlatformId::Delta);
        let alloc = b
            .submit(AllocationRequest::nodes(8).with_allocator_shards(4))
            .unwrap();
        let (slot, probes) = alloc.allocate_slot_with_stats(&cores(4)).unwrap();
        assert!((1..=4).contains(&probes.shard_probes));
        alloc.release_slot(&slot).unwrap();
        // Gangs lock every shard.
        let (gang, probes) = alloc
            .allocate_slot_with_stats(&cores(8).with_nodes(3))
            .unwrap();
        assert_eq!(probes.shard_probes, 4);
        alloc.release_slot(&gang).unwrap();
        assert!(alloc.is_idle());
    }

    #[test]
    fn sharded_gang_spans_shards_in_rank_order_with_distinct_nodes() {
        let b = batch(PlatformId::Delta);
        let alloc = b
            .submit(AllocationRequest::nodes(6).with_allocator_shards(3))
            .unwrap();
        // A 5-node whole-share gang must span all three shards.
        let spec = alloc.node_spec();
        let gang = alloc
            .allocate_slot(
                &ResourceRequest {
                    cores: spec.cores,
                    gpus: spec.gpus,
                    mem_gib: 0.0,
                    nodes: 5,
                    packing: None,
                }
                .with_packing(GangPacking::Whole),
            )
            .unwrap();
        let indices: Vec<usize> = gang.node_indices().collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, indices, "members must be in global rank order");
        assert_eq!(sorted.len(), 5, "members must be distinct nodes");
        let shards: std::collections::HashSet<usize> =
            indices.iter().map(|&n| alloc.shard_of(n)).collect();
        assert_eq!(shards.len(), 3, "a 5-of-6 gang must span all 3 shards");
        alloc.release_slot(&gang).unwrap();
        assert!(alloc.is_idle());
        assert_eq!(alloc.idle_nodes(), 6);
    }

    #[test]
    fn sharded_partial_gang_still_best_fits_before_idle_nodes() {
        let b = batch(PlatformId::Delta); // 4 nodes x 64 cores
        let alloc = b
            .submit(AllocationRequest::nodes(4).with_allocator_shards(2))
            .unwrap();
        // Load two nodes (whichever shards they land in); a sub-node gang must
        // co-locate beside them and leave the idle pair alone — the global
        // best-fit merge across shards.
        let hold_a = alloc.allocate_slot(&cores(33)).unwrap();
        let hold_b = alloc.allocate_slot(&cores(33)).unwrap();
        assert_ne!(hold_a.node_index(), hold_b.node_index());
        let gang = alloc.allocate_slot(&cores(31).with_nodes(2)).unwrap();
        assert_eq!(gang.partial_nodes(), 2, "both members co-resident");
        assert_eq!(alloc.idle_nodes(), 2, "idle nodes are the last resort");
        for slot in [&gang, &hold_a, &hold_b] {
            alloc.release_slot(slot).unwrap();
        }
        assert!(alloc.is_idle());
    }

    #[test]
    fn sharded_drain_pins_across_shards_and_places_reserved() {
        let b = batch(PlatformId::Delta);
        let alloc = b
            .submit(AllocationRequest::nodes(4).with_allocator_shards(2))
            .unwrap();
        // Occupy every node so nothing can be pinned up front.
        let holds: Vec<_> = (0..4)
            .map(|_| alloc.allocate_slot(&cores(64)).unwrap())
            .collect();
        let gang_req = cores(64).with_nodes(4);
        let id = alloc.begin_drain(&gang_req).unwrap();
        assert_eq!(alloc.reserved_nodes(), 0);
        // Each release pins its node to the drain — across both shards — before
        // any other placement can see it.
        for (i, hold) in holds.iter().enumerate() {
            alloc.release_slot(hold).unwrap();
            assert_eq!(alloc.reserved_nodes(), i + 1, "release must pin its node");
            assert_eq!(
                alloc.allocate_slot(&cores(1)).unwrap_err(),
                ResourceError::InsufficientResources,
                "pinned capacity stays invisible on every shard"
            );
        }
        let status = alloc.drain_status().unwrap();
        assert!(status.complete());
        assert_eq!(status.pinned_idle, 4);
        let gang = alloc.allocate_reserved(id, &gang_req).unwrap();
        assert_eq!(gang.num_nodes(), 4);
        let shards: std::collections::HashSet<usize> =
            gang.node_indices().map(|n| alloc.shard_of(n)).collect();
        assert_eq!(shards.len(), 2, "the reserved gang spans both shards");
        alloc.release_slot(&gang).unwrap();
        assert!(alloc.is_idle());
    }

    #[test]
    fn sharded_cancel_drain_restores_every_shard() {
        let b = batch(PlatformId::Delta);
        let alloc = b
            .submit(AllocationRequest::nodes(4).with_allocator_shards(2))
            .unwrap();
        let gang_req = cores(32).with_nodes(4);
        let id = alloc.begin_drain(&gang_req).unwrap();
        assert_eq!(alloc.reserved_nodes(), 4);
        assert_eq!(alloc.cancel_drain(id).unwrap(), 4);
        // All four nodes placeable again, across both shards.
        let gang = alloc.allocate_slot(&cores(64).with_nodes(4)).unwrap();
        assert_eq!(gang.num_nodes(), 4);
        alloc.release_slot(&gang).unwrap();
        assert!(alloc.is_idle());
    }

    #[test]
    fn allocation_request_builder() {
        let r = AllocationRequest::nodes(3)
            .with_walltime_secs(120.0)
            .with_queue_wait(true);
        assert_eq!(r.nodes, 3);
        assert_eq!(r.walltime_secs, 120.0);
        assert!(r.model_queue_wait);
        assert_eq!(r.config.shards, None, "shards derived unless pinned");
        assert_eq!(r.with_allocator_shards(2).config.shards, Some(2));
    }

    #[test]
    fn batch_error_display() {
        assert!(BatchError::Busy.to_string().contains("allocated"));
        assert!(BatchError::EmptyRequest
            .to_string()
            .contains("at least one"));
        assert!(BatchError::TooLarge {
            requested: 5,
            available: 2
        }
        .to_string()
        .contains('5'));
    }

    #[test]
    fn expand_appends_striped_nodes_without_moving_existing_ones() {
        let b = batch(PlatformId::Delta); // 64 cores, 4 gpus per node
        let alloc = b
            .submit(AllocationRequest::nodes(6).with_allocator_shards(4))
            .unwrap();
        // Occupy a node so expansion provably leaves existing occupancy alone.
        let held = alloc.allocate_slot(&gpus(1)).unwrap();
        let new_nodes = alloc.expand(3).unwrap();
        assert_eq!(new_nodes, vec![6, 7, 8]);
        assert_eq!(alloc.num_nodes(), 9);
        assert_eq!(alloc.total_cores(), 9 * 64);
        assert_eq!(alloc.free_gpus(), 9 * 4 - 1);
        assert_eq!(alloc.idle_nodes(), 8);
        // New nodes are placeable: a 9-node whole-allocation gang now fits once
        // the held slot is released.
        alloc.release_slot(&held).unwrap();
        let gang = alloc.allocate_slot(&cores(64).with_nodes(9)).unwrap();
        assert_eq!(gang.num_nodes(), 9);
        let names: Vec<String> = gang
            .members
            .iter()
            .map(|m| m.node_name.to_string())
            .collect();
        assert!(names.contains(&"delta-00008".to_string()));
        alloc.release_slot(&gang).unwrap();
        assert!(alloc.is_idle());
    }

    #[test]
    fn shrink_retires_idle_nodes_all_or_nothing() {
        let b = batch(PlatformId::Delta);
        let alloc = b
            .submit(AllocationRequest::nodes(4).with_allocator_shards(2))
            .unwrap();
        // Occupy one unit on every node: nothing is retirable.
        let gang = alloc.allocate_slot(&cores(1).with_nodes(4)).unwrap();
        assert_eq!(
            alloc.shrink(1).unwrap_err(),
            ResourceError::InsufficientResources
        );
        assert_eq!(alloc.num_nodes(), 4, "failed shrink must mutate nothing");
        alloc.release_slot(&gang).unwrap();
        let retired = alloc.shrink(2).unwrap();
        assert_eq!(retired.len(), 2);
        assert_eq!(alloc.num_nodes(), 2);
        assert_eq!(alloc.free_cores(), 2 * 64);
        assert_eq!(alloc.idle_nodes(), 2);
        for &g in &retired {
            assert_eq!(alloc.node_health(g), Some(NodeHealth::Retired));
        }
        // Retired nodes never host placements again: a 3-node gang reports
        // insufficient capacity (placeable again only if the pilot regrows).
        assert!(matches!(
            alloc.allocate_slot(&cores(1).with_nodes(3)),
            Err(ResourceError::InsufficientResources)
        ));
    }

    #[test]
    fn shrink_with_active_drain_is_rejected() {
        let b = batch(PlatformId::Delta);
        let alloc = b.submit(AllocationRequest::nodes(4)).unwrap();
        let id = alloc.begin_drain(&cores(64).with_nodes(2)).unwrap();
        assert_eq!(alloc.shrink(1).unwrap_err(), ResourceError::DrainActive);
        alloc.cancel_drain(id).unwrap();
        assert_eq!(alloc.shrink(1).unwrap().len(), 1);
    }

    #[test]
    fn fail_node_evicts_co_residents_and_writes_off_capacity() {
        let b = batch(PlatformId::Delta);
        let alloc = b
            .submit(AllocationRequest::nodes(4).with_allocator_shards(2))
            .unwrap();
        // A 4-node gang plus a single-node slot: failing one node must evict the
        // gang and the co-resident single if it shares the node.
        let gang = alloc.allocate_slot(&cores(2).with_nodes(4)).unwrap();
        let single = alloc.allocate_slot(&cores(1)).unwrap();
        let shared = single.node_index();
        let victims = alloc.fail_node(shared).unwrap();
        assert!(victims.contains(&gang.id));
        assert!(victims.contains(&single.id));
        assert_eq!(alloc.num_nodes(), 3);
        assert_eq!(alloc.failed_nodes(), 1);
        assert_eq!(alloc.attached_nodes(), 4);
        assert_eq!(alloc.node_health(shared), Some(NodeHealth::Failed));
        // Healthy co-resident capacity was reclaimed; the failed node's is gone.
        assert_eq!(alloc.free_cores(), 3 * 64);
        assert_eq!(alloc.free_gpus(), 3 * 4);
        assert_eq!(alloc.idle_nodes(), 3);
        assert!(alloc.is_idle());
        // Victim slots are flagged until their owners observe the eviction.
        assert!(alloc.slot_evicted(gang.id));
        assert_eq!(
            alloc.release_slot(&gang).unwrap_err(),
            ResourceError::NodeFailed(shared)
        );
        assert!(!alloc.slot_evicted(gang.id), "reported exactly once");
        // A second release of the same victim is a plain double release.
        assert_eq!(
            alloc.release_slot(&gang).unwrap_err(),
            ResourceError::UnknownSlot(gang.id)
        );
        assert_eq!(
            alloc.release_slot(&single).unwrap_err(),
            ResourceError::NodeFailed(shared)
        );
        // The failed node never hosts again: fill the remaining three nodes and
        // check every member landed elsewhere.
        let refill = alloc.allocate_slot(&cores(64).with_nodes(3)).unwrap();
        assert!(refill.members.iter().all(|m| m.node_index != shared));
        alloc.release_slot(&refill).unwrap();
    }

    #[test]
    fn fail_node_is_idempotent_and_bounds_checked() {
        let b = batch(PlatformId::Delta);
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        assert_eq!(
            alloc.fail_node(99).unwrap_err(),
            ResourceError::UnknownNode(99)
        );
        assert_eq!(alloc.fail_node(1).unwrap(), Vec::<u64>::new());
        assert_eq!(alloc.fail_node(1).unwrap(), Vec::<u64>::new());
        assert_eq!(alloc.num_nodes(), 1);
        assert_eq!(alloc.failed_nodes(), 1);
    }

    #[test]
    fn shrink_retires_failed_nodes_first_and_expand_restores() {
        let b = batch(PlatformId::Delta);
        let alloc = b
            .submit(AllocationRequest::nodes(5).with_allocator_shards(4))
            .unwrap();
        alloc.fail_node(2).unwrap();
        // Shrinking by one retires the failed node, costing no healthy capacity.
        let retired = alloc.shrink(1).unwrap();
        assert_eq!(retired, vec![2]);
        assert_eq!(alloc.num_nodes(), 4);
        assert_eq!(alloc.failed_nodes(), 0);
        assert_eq!(alloc.free_cores(), 4 * 64);
        // Expanding back mints a fresh node (the dead index is never reused).
        let added = alloc.expand(1).unwrap();
        assert_eq!(added, vec![5]);
        assert_eq!(alloc.num_nodes(), 5);
        assert_eq!(alloc.free_cores(), 5 * 64);
        assert_eq!(alloc.idle_nodes(), 5);
        assert_eq!(alloc.node_health(2), Some(NodeHealth::Retired));
    }

    #[test]
    fn fail_node_unpins_from_active_drain_and_new_capacity_repins() {
        let b = batch(PlatformId::Delta);
        let alloc = b.submit(AllocationRequest::nodes(3)).unwrap();
        // Whole-packing drain pins all three idle nodes.
        let req = cores(64).with_nodes(3).with_packing(GangPacking::Whole);
        let id = alloc.begin_drain(&req).unwrap();
        assert_eq!(alloc.reserved_nodes(), 3);
        assert_eq!(alloc.node_health(0), Some(NodeHealth::Draining));
        // Failing a pinned node shrinks the reservation.
        alloc.fail_node(1).unwrap();
        assert_eq!(alloc.reserved_nodes(), 2);
        let status = alloc.drain_status().unwrap();
        assert_eq!(status.pinned(), 2);
        assert!(!status.complete());
        // Expansion hands the fresh node straight to the short reservation.
        alloc.expand(1).unwrap();
        assert_eq!(alloc.reserved_nodes(), 3);
        assert!(alloc.drain_status().unwrap().complete());
        let gang = alloc.allocate_reserved(id, &req).unwrap();
        assert_eq!(gang.num_nodes(), 3);
        assert!(gang.members.iter().all(|m| m.node_index != 1));
        alloc.release_slot(&gang).unwrap();
        assert!(alloc.is_idle());
    }

    #[test]
    fn batch_grow_and_shed_track_the_free_pool() {
        let b = batch(PlatformId::Local); // 2 nodes total
        let alloc = b.submit(AllocationRequest::nodes(1)).unwrap();
        assert_eq!(b.nodes_in_use(), 1);
        b.grow(1).unwrap();
        assert_eq!(b.nodes_in_use(), 2);
        assert_eq!(b.grow(1).unwrap_err(), BatchError::Busy);
        assert!(matches!(
            b.grow(50).unwrap_err(),
            BatchError::TooLarge { .. }
        ));
        b.shed(1);
        assert_eq!(b.nodes_in_use(), 1);
        b.release(&alloc);
        assert_eq!(b.nodes_in_use(), 0);
    }
}
