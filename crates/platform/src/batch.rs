//! Batch system and allocations: how a pilot acquires and carves up resources.
//!
//! A pilot job submits an [`AllocationRequest`] to the platform's [`BatchSystem`]; once
//! granted (after an optional modelled queue wait) it receives an [`Allocation`] — a set
//! of whole nodes it owns for its walltime. The pilot's scheduler then places tasks and
//! services by carving [`Slot`]s out of the allocation and releasing them on completion.
//!
//! This mirrors the pilot abstraction of the paper's runtime: resource acquisition is
//! decoupled from task/service scheduling, which is what lets services and tasks share
//! one allocation with controlled concurrency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hpcml_sim::clock::SharedClock;
use hpcml_sim::dist::Dist;

use crate::resources::{NodeSpec, NodeState, ResourceError, ResourceRequest, Slot};
use crate::spec::PlatformSpec;

/// Errors raised by the batch system.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// The platform does not have enough nodes in total.
    TooLarge {
        /// Nodes requested.
        requested: usize,
        /// Nodes the platform has.
        available: usize,
    },
    /// The platform has enough nodes but they are currently allocated to other jobs.
    Busy,
    /// Zero nodes requested.
    EmptyRequest,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::TooLarge { requested, available } => {
                write!(f, "requested {requested} nodes but the platform only has {available}")
            }
            BatchError::Busy => write!(f, "platform nodes are currently allocated to other jobs"),
            BatchError::EmptyRequest => write!(f, "allocation request must ask for at least one node"),
        }
    }
}

impl std::error::Error for BatchError {}

/// A request for a pilot-sized allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationRequest {
    /// Number of whole nodes.
    pub nodes: usize,
    /// Requested walltime in seconds.
    pub walltime_secs: f64,
    /// Whether to model the batch-queue wait (true for realism, false for experiments
    /// that start measuring once the pilot is active — as the paper does).
    pub model_queue_wait: bool,
}

impl AllocationRequest {
    /// Request `nodes` whole nodes for one hour, without modelling queue wait.
    pub fn nodes(nodes: usize) -> Self {
        AllocationRequest { nodes, walltime_secs: 3600.0, model_queue_wait: false }
    }

    /// Set the walltime.
    pub fn with_walltime_secs(mut self, secs: f64) -> Self {
        self.walltime_secs = secs;
        self
    }

    /// Enable queue-wait modelling.
    pub fn with_queue_wait(mut self, enable: bool) -> Self {
        self.model_queue_wait = enable;
        self
    }
}

/// A granted allocation: a set of whole nodes owned by one pilot.
pub struct Allocation {
    id: u64,
    platform: PlatformSpec,
    nodes: Mutex<Vec<NodeState>>,
    next_slot_id: AtomicU64,
    /// Seconds spent waiting in the batch queue (0 if not modelled).
    queue_wait_secs: f64,
    walltime_secs: f64,
}

impl std::fmt::Debug for Allocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Allocation")
            .field("id", &self.id)
            .field("platform", &self.platform.id)
            .field("nodes", &self.num_nodes())
            .field("walltime_secs", &self.walltime_secs)
            .finish()
    }
}

impl Allocation {
    /// Allocation identifier (unique per batch system).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The platform this allocation lives on.
    pub fn platform(&self) -> &PlatformSpec {
        &self.platform
    }

    /// Number of nodes in the allocation.
    pub fn num_nodes(&self) -> usize {
        self.nodes.lock().len()
    }

    /// Shape of the allocation's nodes.
    pub fn node_spec(&self) -> NodeSpec {
        self.platform.node
    }

    /// Total cores across the allocation.
    pub fn total_cores(&self) -> u32 {
        self.num_nodes() as u32 * self.platform.node.cores
    }

    /// Total GPUs across the allocation.
    pub fn total_gpus(&self) -> u32 {
        self.num_nodes() as u32 * self.platform.node.gpus
    }

    /// Currently free cores across all nodes.
    pub fn free_cores(&self) -> u32 {
        self.nodes.lock().iter().map(|n| n.free_cores()).sum()
    }

    /// Currently free GPUs across all nodes.
    pub fn free_gpus(&self) -> u32 {
        self.nodes.lock().iter().map(|n| n.free_gpus()).sum()
    }

    /// Seconds this allocation waited in the batch queue before becoming active.
    pub fn queue_wait_secs(&self) -> f64 {
        self.queue_wait_secs
    }

    /// Granted walltime in seconds.
    pub fn walltime_secs(&self) -> f64 {
        self.walltime_secs
    }

    /// Try to carve a slot satisfying `req` out of the allocation (first fit).
    ///
    /// Returns [`ResourceError::InsufficientResources`] when nothing currently fits and
    /// [`ResourceError::NeverSatisfiable`] when no node shape could ever satisfy it.
    pub fn allocate_slot(&self, req: &ResourceRequest) -> Result<Slot, ResourceError> {
        let mut nodes = self.nodes.lock();
        if nodes.is_empty() {
            return Err(ResourceError::InsufficientResources);
        }
        // A request larger than the node shape can never be satisfied.
        if !nodes[0].can_ever_fit(req) {
            return Err(ResourceError::NeverSatisfiable {
                reason: format!(
                    "request ({} cores, {} gpus, {:.1} GiB) exceeds the node shape",
                    req.cores, req.gpus, req.mem_gib
                ),
            });
        }
        for (idx, node) in nodes.iter_mut().enumerate() {
            if node.can_fit_now(req) {
                let (core_ids, gpu_ids, mem_gib) = node.try_reserve(req)?;
                let id = self.next_slot_id.fetch_add(1, Ordering::Relaxed);
                return Ok(Slot {
                    id,
                    node_index: idx,
                    node_name: node.name.clone(),
                    core_ids,
                    gpu_ids,
                    mem_gib,
                });
            }
        }
        Err(ResourceError::InsufficientResources)
    }

    /// Release a previously allocated slot.
    pub fn release_slot(&self, slot: &Slot) -> Result<(), ResourceError> {
        let mut nodes = self.nodes.lock();
        let node = nodes.get_mut(slot.node_index).ok_or(ResourceError::UnknownSlot(slot.id))?;
        if node.name != slot.node_name {
            return Err(ResourceError::UnknownSlot(slot.id));
        }
        node.release(&slot.core_ids, &slot.gpu_ids, slot.mem_gib);
        Ok(())
    }

    /// True when no slot is currently allocated.
    pub fn is_idle(&self) -> bool {
        self.nodes.lock().iter().all(|n| n.is_idle())
    }
}

/// The platform's batch / resource manager.
pub struct BatchSystem {
    spec: PlatformSpec,
    clock: SharedClock,
    rng: Mutex<StdRng>,
    nodes_in_use: AtomicU64,
    next_alloc_id: AtomicU64,
}

impl std::fmt::Debug for BatchSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSystem")
            .field("platform", &self.spec.id)
            .field("nodes_in_use", &self.nodes_in_use.load(Ordering::Relaxed))
            .finish()
    }
}

impl BatchSystem {
    /// Create a batch system for the given platform.
    pub fn new(spec: PlatformSpec, clock: SharedClock, seed: u64) -> Self {
        BatchSystem {
            spec,
            clock,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            nodes_in_use: AtomicU64::new(0),
            next_alloc_id: AtomicU64::new(0),
        }
    }

    /// The platform this batch system manages.
    pub fn platform(&self) -> &PlatformSpec {
        &self.spec
    }

    /// Nodes currently held by active allocations.
    pub fn nodes_in_use(&self) -> usize {
        self.nodes_in_use.load(Ordering::Relaxed) as usize
    }

    /// Nodes currently free.
    pub fn nodes_free(&self) -> usize {
        self.spec.num_nodes.saturating_sub(self.nodes_in_use())
    }

    /// Submit an allocation request. Blocks for the modelled queue wait (on the virtual
    /// clock) when requested, then returns an active [`Allocation`].
    pub fn submit(&self, req: AllocationRequest) -> Result<Arc<Allocation>, BatchError> {
        if req.nodes == 0 {
            return Err(BatchError::EmptyRequest);
        }
        if req.nodes > self.spec.num_nodes {
            return Err(BatchError::TooLarge { requested: req.nodes, available: self.spec.num_nodes });
        }
        // Reserve nodes atomically against concurrent submissions.
        loop {
            let used = self.nodes_in_use.load(Ordering::Acquire);
            if used as usize + req.nodes > self.spec.num_nodes {
                return Err(BatchError::Busy);
            }
            if self
                .nodes_in_use
                .compare_exchange(used, used + req.nodes as u64, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }

        let queue_wait_secs = if req.model_queue_wait && self.spec.queue_wait_mean_secs > 0.0 {
            let dist = Dist::exponential_with_mean(self.spec.queue_wait_mean_secs);
            let wait = dist.sample_secs(&mut *self.rng.lock());
            self.clock.sleep(wait);
            wait.as_secs_f64()
        } else {
            0.0
        };

        let id = self.next_alloc_id.fetch_add(1, Ordering::Relaxed);
        let nodes: Vec<NodeState> = (0..req.nodes)
            .map(|i| NodeState::new(self.spec.node_name(i), self.spec.node))
            .collect();
        Ok(Arc::new(Allocation {
            id,
            platform: self.spec.clone(),
            nodes: Mutex::new(nodes),
            next_slot_id: AtomicU64::new(0),
            queue_wait_secs,
            walltime_secs: req.walltime_secs,
        }))
    }

    /// Return an allocation's nodes to the free pool.
    pub fn release(&self, allocation: &Allocation) {
        let n = allocation.num_nodes() as u64;
        // Saturating: releasing the same allocation twice must not underflow.
        let mut current = self.nodes_in_use.load(Ordering::Acquire);
        loop {
            let next = current.saturating_sub(n);
            match self.nodes_in_use.compare_exchange(current, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PlatformId;
    use hpcml_sim::clock::ClockSpec;

    fn batch(platform: PlatformId) -> BatchSystem {
        BatchSystem::new(platform.spec(), ClockSpec::Manual.build(), 7)
    }

    #[test]
    fn submit_and_release_allocation() {
        let b = batch(PlatformId::Delta);
        let alloc = b.submit(AllocationRequest::nodes(4)).unwrap();
        assert_eq!(alloc.num_nodes(), 4);
        assert_eq!(alloc.total_cores(), 256);
        assert_eq!(alloc.total_gpus(), 16);
        assert_eq!(b.nodes_in_use(), 4);
        b.release(&alloc);
        assert_eq!(b.nodes_in_use(), 0);
        b.release(&alloc); // double release must not underflow
        assert_eq!(b.nodes_in_use(), 0);
    }

    #[test]
    fn submit_rejects_bad_requests() {
        let b = batch(PlatformId::Local);
        assert_eq!(b.submit(AllocationRequest::nodes(0)).unwrap_err(), BatchError::EmptyRequest);
        let err = b.submit(AllocationRequest::nodes(100)).unwrap_err();
        assert!(matches!(err, BatchError::TooLarge { requested: 100, available: 2 }));
        let _a = b.submit(AllocationRequest::nodes(2)).unwrap();
        assert_eq!(b.submit(AllocationRequest::nodes(1)).unwrap_err(), BatchError::Busy);
        assert!(!format!("{:?}", b).is_empty());
    }

    #[test]
    fn allocation_slots_respect_capacity() {
        let b = batch(PlatformId::Local); // 2 nodes x (8 cores, 2 gpus)
        let alloc = b.submit(AllocationRequest::nodes(2)).unwrap();
        let mut slots = Vec::new();
        for _ in 0..4 {
            slots.push(alloc.allocate_slot(&ResourceRequest::gpus(1)).unwrap());
        }
        assert_eq!(alloc.free_gpus(), 0);
        assert_eq!(
            alloc.allocate_slot(&ResourceRequest::gpus(1)).unwrap_err(),
            ResourceError::InsufficientResources
        );
        // Slots must land on both nodes.
        let node_indices: std::collections::HashSet<usize> = slots.iter().map(|s| s.node_index).collect();
        assert_eq!(node_indices.len(), 2);
        for s in &slots {
            alloc.release_slot(s).unwrap();
        }
        assert!(alloc.is_idle());
        assert_eq!(alloc.free_gpus(), 4);
    }

    #[test]
    fn oversized_slot_request_is_never_satisfiable() {
        let b = batch(PlatformId::Local);
        let alloc = b.submit(AllocationRequest::nodes(1)).unwrap();
        let err = alloc.allocate_slot(&ResourceRequest::cores(64)).unwrap_err();
        assert!(matches!(err, ResourceError::NeverSatisfiable { .. }));
    }

    #[test]
    fn release_unknown_slot_fails() {
        let b = batch(PlatformId::Local);
        let alloc = b.submit(AllocationRequest::nodes(1)).unwrap();
        let bogus = Slot {
            id: 99,
            node_index: 5,
            node_name: "nope".into(),
            core_ids: vec![0],
            gpu_ids: vec![],
            mem_gib: 0.0,
        };
        assert!(matches!(alloc.release_slot(&bogus), Err(ResourceError::UnknownSlot(99))));
    }

    #[test]
    fn queue_wait_modelled_when_requested() {
        let spec = PlatformId::Delta.spec();
        let clock = ClockSpec::scaled(100_000.0).build();
        let b = BatchSystem::new(spec, clock, 3);
        let alloc = b.submit(AllocationRequest::nodes(1).with_queue_wait(true)).unwrap();
        assert!(alloc.queue_wait_secs() > 0.0);
        let alloc2 = b.submit(AllocationRequest::nodes(1)).unwrap();
        assert_eq!(alloc2.queue_wait_secs(), 0.0);
    }

    #[test]
    fn frontier_supports_experiment1_scale() {
        let b = batch(PlatformId::Frontier);
        // 640 services x 1 GPU each => 80 Frontier nodes.
        let alloc = b.submit(AllocationRequest::nodes(80)).unwrap();
        let mut slots = Vec::with_capacity(640);
        for _ in 0..640 {
            slots.push(alloc.allocate_slot(&ResourceRequest::gpus(1)).unwrap());
        }
        assert_eq!(alloc.free_gpus(), 0);
        assert_eq!(slots.len(), 640);
    }

    #[test]
    fn allocation_request_builder() {
        let r = AllocationRequest::nodes(3).with_walltime_secs(120.0).with_queue_wait(true);
        assert_eq!(r.nodes, 3);
        assert_eq!(r.walltime_secs, 120.0);
        assert!(r.model_queue_wait);
    }

    #[test]
    fn batch_error_display() {
        assert!(BatchError::Busy.to_string().contains("allocated"));
        assert!(BatchError::EmptyRequest.to_string().contains("at least one"));
        assert!(BatchError::TooLarge { requested: 5, available: 2 }.to_string().contains('5'));
    }
}
