//! Platform catalog: the machines the paper evaluates on, expressed as data.
//!
//! * **OLCF Frontier** — 9,408 nodes, 64-core AMD EPYC, 4× MI250X presenting 8 GCDs
//!   ("GPUs") per node, 512 GiB RAM. Used for Experiment 1 (bootstrap scaling, 640 GPUs).
//! * **NCSA Delta** — A100 GPU partition: 4× A100-40GB per node, 64 cores, 256 GiB.
//!   Used for Experiments 2 and 3 (local services, 256 cores / 16 GPUs per pilot).
//! * **R3** — a cloud-hosted server exposing ML capabilities over REST/ZeroMQ, reached
//!   over a WAN link with ~0.47 ms latency. Used as the remote deployment target.
//!
//! A [`PlatformSpec`] bundles the node shape, node count, launcher kind, and the
//! latency profiles of its interconnect and of the WAN path towards remote platforms.

use serde::{Deserialize, Serialize};

use crate::launcher::LauncherKind;
use crate::network::LatencyProfile;
use crate::resources::NodeSpec;

/// Identifier of a platform in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformId {
    /// OLCF Frontier (exascale, MI250X GPUs).
    Frontier,
    /// NCSA Delta (A100 GPUs).
    Delta,
    /// R3: remote cloud host serving ML models.
    R3Cloud,
    /// A small local test platform (used by unit tests and the quickstart example).
    Local,
}

impl PlatformId {
    /// Resolve the catalog entry for this platform.
    pub fn spec(self) -> PlatformSpec {
        match self {
            PlatformId::Frontier => PlatformSpec::frontier(),
            PlatformId::Delta => PlatformSpec::delta(),
            PlatformId::R3Cloud => PlatformSpec::r3_cloud(),
            PlatformId::Local => PlatformSpec::local(),
        }
    }

    /// Short lower-case name used in identifiers and hostnames.
    pub fn short_name(self) -> &'static str {
        match self {
            PlatformId::Frontier => "frontier",
            PlatformId::Delta => "delta",
            PlatformId::R3Cloud => "r3",
            PlatformId::Local => "local",
        }
    }
}

impl std::fmt::Display for PlatformId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Full description of a platform: node shape and count, launcher, latency profiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Catalog identifier.
    pub id: PlatformId,
    /// Human-readable name.
    pub name: String,
    /// Number of compute nodes available to batch jobs.
    pub num_nodes: usize,
    /// Shape of each node.
    pub node: NodeSpec,
    /// Launcher used to start tasks/services on compute nodes.
    pub launcher: LauncherKind,
    /// Latency of the node-to-node interconnect (same platform).
    pub intra_latency: LatencyProfile,
    /// Latency of the WAN path from a compute node of this platform to a remote
    /// service endpoint (e.g. Delta → R3).
    pub wan_latency: LatencyProfile,
    /// Mean batch-queue wait in seconds for a pilot-sized job (0 for cloud/local).
    pub queue_wait_mean_secs: f64,
    /// True if this "platform" is a persistent remote service host rather than a batch
    /// HPC machine (no pilot allocation or bootstrap needed — paper §IV).
    pub is_remote_service_host: bool,
}

impl PlatformSpec {
    /// OLCF Frontier catalog entry.
    pub fn frontier() -> Self {
        PlatformSpec {
            id: PlatformId::Frontier,
            name: "OLCF Frontier".to_string(),
            num_nodes: 9408,
            // 64 cores, 8 GCDs (4x MI250X), 512 GiB RAM, 64 GiB HBM per GCD.
            node: NodeSpec::new(64, 8, 512.0, 64.0),
            launcher: LauncherKind::MpiPrrte,
            intra_latency: LatencyProfile::hpc_interconnect(),
            wan_latency: LatencyProfile::wan(),
            queue_wait_mean_secs: 120.0,
            is_remote_service_host: false,
        }
    }

    /// NCSA Delta (A100 partition) catalog entry.
    pub fn delta() -> Self {
        PlatformSpec {
            id: PlatformId::Delta,
            name: "NCSA Delta (A100)".to_string(),
            num_nodes: 100,
            node: NodeSpec::new(64, 4, 256.0, 40.0),
            launcher: LauncherKind::MpiPrrte,
            // Paper-measured inter-node latency on Delta: 0.063 ms +/- 0.014 ms.
            intra_latency: LatencyProfile::paper_local(),
            // Paper-measured node-to-node latency towards R3: 0.47 ms +/- 0.04 ms.
            wan_latency: LatencyProfile::paper_remote(),
            queue_wait_mean_secs: 60.0,
            is_remote_service_host: false,
        }
    }

    /// R3 cloud service host catalog entry.
    pub fn r3_cloud() -> Self {
        PlatformSpec {
            id: PlatformId::R3Cloud,
            name: "R3 cloud service host".to_string(),
            num_nodes: 4,
            node: NodeSpec::new(32, 8, 256.0, 40.0),
            launcher: LauncherKind::Fork,
            intra_latency: LatencyProfile::datacenter(),
            wan_latency: LatencyProfile::paper_remote(),
            queue_wait_mean_secs: 0.0,
            is_remote_service_host: true,
        }
    }

    /// Small local platform for tests and examples (2 nodes, 8 cores, 2 GPUs each).
    pub fn local() -> Self {
        PlatformSpec {
            id: PlatformId::Local,
            name: "local test platform".to_string(),
            num_nodes: 2,
            node: NodeSpec::new(8, 2, 64.0, 16.0),
            launcher: LauncherKind::Fork,
            intra_latency: LatencyProfile::loopback(),
            wan_latency: LatencyProfile::paper_remote(),
            queue_wait_mean_secs: 0.0,
            is_remote_service_host: false,
        }
    }

    /// Total GPUs across the platform.
    pub fn total_gpus(&self) -> u64 {
        self.num_nodes as u64 * self.node.gpus as u64
    }

    /// Total cores across the platform.
    pub fn total_cores(&self) -> u64 {
        self.num_nodes as u64 * self.node.cores as u64
    }

    /// Synthetic hostname of node `index`.
    pub fn node_name(&self, index: usize) -> String {
        format!("{}-{:05}", self.id.short_name(), index)
    }

    /// Override the number of nodes (used to build right-sized pilots in tests).
    pub fn with_num_nodes(mut self, n: usize) -> Self {
        self.num_nodes = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_entries_have_expected_shapes() {
        let f = PlatformSpec::frontier();
        assert_eq!(f.node.gpus, 8);
        assert_eq!(f.node.cores, 64);
        assert_eq!(f.num_nodes, 9408);
        assert_eq!(f.launcher, LauncherKind::MpiPrrte);
        assert!(
            f.total_gpus() >= 640,
            "Frontier must fit experiment 1's 640 GPUs"
        );

        let d = PlatformSpec::delta();
        assert_eq!(d.node.gpus, 4);
        // Experiment 2/3 pilots: 256 cores, 16 GPUs → 4 Delta nodes.
        assert!(d.total_cores() >= 256);
        assert!(d.total_gpus() >= 16);

        let r = PlatformSpec::r3_cloud();
        assert!(r.is_remote_service_host);
        assert_eq!(r.queue_wait_mean_secs, 0.0);

        let l = PlatformSpec::local();
        assert_eq!(l.num_nodes, 2);
    }

    #[test]
    fn platform_id_roundtrip() {
        for id in [
            PlatformId::Frontier,
            PlatformId::Delta,
            PlatformId::R3Cloud,
            PlatformId::Local,
        ] {
            assert_eq!(id.spec().id, id);
            assert!(!id.short_name().is_empty());
            assert_eq!(format!("{id}"), id.short_name());
        }
    }

    #[test]
    fn node_names_are_indexed() {
        let d = PlatformSpec::delta();
        assert_eq!(d.node_name(3), "delta-00003");
        assert_ne!(d.node_name(1), d.node_name(2));
    }

    #[test]
    fn with_num_nodes_overrides() {
        let f = PlatformSpec::frontier().with_num_nodes(80);
        assert_eq!(f.num_nodes, 80);
        assert_eq!(f.total_gpus(), 640);
    }

    #[test]
    fn paper_latency_profiles_are_wired() {
        let d = PlatformSpec::delta();
        // Local: 0.063 ms mean; remote: 0.47 ms mean (paper §IV-C).
        assert!((d.intra_latency.mean_ms() - 0.063).abs() < 1e-9);
        assert!((d.wan_latency.mean_ms() - 0.47).abs() < 1e-9);
    }
}
