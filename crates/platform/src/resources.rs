//! Resource model: nodes, cores, GPUs, memory, and placement slots.
//!
//! A [`NodeSpec`] describes the shape of a compute node; [`NodeState`] tracks which of
//! its cores/GPUs/memory are in use; a [`Slot`] is a concrete reservation of resources
//! handed to a task or a service instance for its lifetime. Single-node slots hold one
//! [`SlotMember`]; multi-node MPI gangs hold one member per node, claimed and released
//! as a unit. The pilot's scheduler allocates slots from its
//! [`crate::batch::Allocation`] and releases them when the task or service completes.
//!
//! Occupancy is tracked as `u128` bitmask words (bit set = unit free) with cached
//! free-unit counters, so capacity queries are O(1) and index picking is a
//! trailing-zeros scan over at most `ceil(cores/128)` words — placement cost does not
//! grow with node size the way the former `Vec<bool>` scan did.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Bits per occupancy word.
const WORD_BITS: u32 = 128;

/// Errors raised by resource accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceError {
    /// The request can never be satisfied by this node shape.
    NeverSatisfiable {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// The request exceeds what is currently free (but could be satisfied later).
    InsufficientResources,
    /// A slot was released that does not belong to this node or was already released.
    UnknownSlot(u64),
    /// The request pins no cores and no GPUs (zero-unit requests would reserve memory
    /// or a slot id without occupying any indexed unit, corrupting headroom-class
    /// accounting — most visibly the idle bucket the gang allocator claims from).
    EmptyRequest,
    /// A backfill drain was requested while another reservation is still active. The
    /// allocation supports at most one draining gang at a time (only the head of a
    /// scheduler class can drain, see `crate::batch::Allocation::begin_drain`).
    DrainActive,
    /// A drain operation referenced a reservation that does not exist any more —
    /// either never begun, already cancelled, or already consumed by its placement.
    UnknownDrain(u64),
    /// The slot's node was failed out from under it (`crate::batch::Allocation::
    /// fail_node`): its resources were already reclaimed when the node was evicted,
    /// so the caller must treat the slot as released — distinct from
    /// [`ResourceError::UnknownSlot`], which signals a caller bug (double release,
    /// foreign slot). The payload is the failed node's allocation-global index.
    NodeFailed(usize),
    /// An operation referenced a node index the allocation does not have.
    UnknownNode(usize),
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::NeverSatisfiable { reason } => {
                write!(f, "request can never be satisfied: {reason}")
            }
            ResourceError::InsufficientResources => write!(f, "insufficient free resources"),
            ResourceError::UnknownSlot(id) => write!(f, "unknown or already released slot {id}"),
            ResourceError::EmptyRequest => {
                write!(f, "request must pin at least one core or GPU")
            }
            ResourceError::DrainActive => {
                write!(f, "another backfill reservation is already draining")
            }
            ResourceError::UnknownDrain(id) => {
                write!(f, "unknown or already completed drain reservation {id}")
            }
            ResourceError::NodeFailed(node) => {
                write!(
                    f,
                    "node {node} has failed; the slot's resources were reclaimed on eviction"
                )
            }
            ResourceError::UnknownNode(node) => {
                write!(f, "unknown node index {node}")
            }
        }
    }
}

impl std::error::Error for ResourceError {}

/// How a multi-node gang's members may be packed onto nodes.
///
/// The policy travels with the request ([`ResourceRequest::packing`], `None` =
/// inherit the scheduler's session-level default, which itself defaults to
/// [`GangPacking::Partial`]) and governs both direct gang placement and what a
/// backfill drain is allowed to pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GangPacking {
    /// Members land only on fully idle nodes (the pre-partial behaviour): strongest
    /// isolation, but ranks-per-node shares below a whole node waste the remainder,
    /// and sub-node churn that never idles a node can delay a draining gang
    /// indefinitely.
    Whole,
    /// Members best-fit onto any node whose free headroom covers one member share,
    /// co-locating with existing slots. Drains may pin partially free nodes the same
    /// way, which bounds gang waits even under sub-node churn.
    #[default]
    Partial,
}

/// Minimum nodes per allocator shard when the shard count is derived rather than
/// set explicitly: sharding pays off only when each shard still owns enough nodes
/// for its capacity index to absorb placements without constant cross-shard
/// fallbacks, and small (test-sized) allocations must resolve to exactly one shard
/// so single-lock behaviour is reproduced bit-for-bit.
pub const MIN_NODES_PER_SHARD: usize = 16;

/// Allocator-level configuration carried by an allocation request: how the
/// allocation's mutable state (nodes + capacity index) is partitioned into
/// independently locked shards.
///
/// `shards: None` (the default) derives the count from the host:
/// `min(available_parallelism, num_nodes / MIN_NODES_PER_SHARD)`, clamped to at
/// least 1 — so a laptop-sized or test-sized allocation gets exactly one shard
/// (today's single-lock behaviour, byte for byte), while a 256-node allocation on
/// a many-core host gets up to 16. An explicit `Some(n)` pins the count (clamped
/// to `1..=num_nodes`); `Some(1)` is the compatibility escape hatch.
///
/// Because the derived count depends on the host's parallelism, the *placement
/// order* of a seeded run (which concrete nodes a request lands on) can differ
/// between machines with different core counts; recorded timings do not (they
/// come from the seeded virtual-clock models). Experiments that must reproduce
/// exact placements across hosts should pin an explicit shard count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationConfig {
    /// Number of allocator shards, or `None` to derive from the host parallelism
    /// and the allocation's node count.
    pub shards: Option<usize>,
}

impl AllocationConfig {
    /// Pin an explicit shard count (clamped to at least 1 at resolution time).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Resolve the concrete shard count for an allocation of `num_nodes` nodes.
    /// Always in `1..=max(num_nodes, 1)`.
    pub fn resolve_shards(&self, num_nodes: usize) -> usize {
        let cap = num_nodes.max(1);
        match self.shards {
            Some(explicit) => explicit.clamp(1, cap),
            None => {
                let parallelism = std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1);
                parallelism
                    .min(num_nodes / MIN_NODES_PER_SHARD)
                    .clamp(1, cap)
            }
        }
    }
}

/// Shape of a compute node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// CPU cores per node.
    pub cores: u32,
    /// GPUs (or GPU dies) per node.
    pub gpus: u32,
    /// Main memory per node, in GiB.
    pub mem_gib: f64,
    /// GPU memory per GPU, in GiB.
    pub gpu_mem_gib: f64,
}

impl NodeSpec {
    /// Create a node shape.
    pub fn new(cores: u32, gpus: u32, mem_gib: f64, gpu_mem_gib: f64) -> Self {
        NodeSpec {
            cores,
            gpus,
            mem_gib,
            gpu_mem_gib,
        }
    }
}

/// Resources requested for one task or service instance.
///
/// `cores`, `gpus` and `mem_gib` are **per member node** (ranks-per-node semantics).
/// Single-node entities leave `nodes` at 1; a multi-node MPI task sets `nodes > 1` and
/// is placed as a *gang*: that many distinct nodes are claimed atomically, each
/// reserving the per-node shares, and released as a unit. Under
/// [`GangPacking::Partial`] (the default) members best-fit onto partially free nodes;
/// [`GangPacking::Whole`] restricts members to fully idle nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceRequest {
    /// CPU cores per member node.
    pub cores: u32,
    /// GPUs per member node.
    pub gpus: u32,
    /// Main memory per member node in GiB (0.0 = don't care).
    pub mem_gib: f64,
    /// Number of whole nodes spanned (1 = single-node; >1 = MPI gang placed on that
    /// many *distinct* nodes, each hosting one member share).
    pub nodes: usize,
    /// Gang packing policy: `None` inherits the scheduler's default (itself
    /// [`GangPacking::Partial`] unless configured otherwise); `Some` pins the policy
    /// for this request. Ignored for single-node requests.
    pub packing: Option<GangPacking>,
}

impl ResourceRequest {
    /// A request for `cores` cores and no GPU on a single node.
    ///
    /// Zero-unit requests are rejected at construction: a request pinning no core and
    /// no GPU would pass occupancy checks without occupying any indexed unit, leaving
    /// its node misclassified in the capacity index (it stays in the idle bucket while
    /// a live slot points at it).
    pub fn cores(cores: u32) -> Result<Self, ResourceError> {
        if cores == 0 {
            return Err(ResourceError::EmptyRequest);
        }
        Ok(ResourceRequest {
            cores,
            gpus: 0,
            mem_gib: 0.0,
            nodes: 1,
            packing: None,
        })
    }

    /// A request for `gpus` GPUs and one core per GPU on a single node.
    ///
    /// `gpus == 0` is a constructor-level error rather than a silent 1-core/0-GPU
    /// request, so a miscomputed GPU count can never reach the capacity index.
    pub fn gpus(gpus: u32) -> Result<Self, ResourceError> {
        if gpus == 0 {
            return Err(ResourceError::EmptyRequest);
        }
        Ok(ResourceRequest {
            cores: gpus,
            gpus,
            mem_gib: 0.0,
            nodes: 1,
            packing: None,
        })
    }

    /// Add a memory requirement (per member node).
    pub fn with_mem_gib(mut self, mem: f64) -> Self {
        self.mem_gib = mem;
        self
    }

    /// Span `nodes` whole nodes as an MPI gang (cores/GPUs/memory apply per node).
    /// Clamped to at least 1.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes.max(1);
        self
    }

    /// Pin the gang packing policy for this request (overrides the scheduler's
    /// session-level default).
    pub fn with_packing(mut self, packing: GangPacking) -> Self {
        self.packing = Some(packing);
        self
    }

    /// A copy of this request with an unset packing policy resolved to `default`
    /// (an explicit `Some` policy on the request always wins).
    pub fn or_packing(mut self, default: GangPacking) -> Self {
        self.packing.get_or_insert(default);
        self
    }

    /// True when this request is a multi-node gang.
    pub fn is_gang(&self) -> bool {
        self.nodes > 1
    }

    /// True if the request pins no core and no GPU — the same condition
    /// [`ResourceRequest::validate`] rejects as [`ResourceError::EmptyRequest`]
    /// (memory alone does not make a request non-empty: un-pinned memory is exactly
    /// what the zero-unit guard exists to keep out of the index).
    pub fn is_empty(&self) -> bool {
        self.cores == 0 && self.gpus == 0
    }

    /// Check the structural invariants enforced by the constructors, for requests
    /// built as struct literals: at least one core or GPU per member node, and a
    /// non-zero node span.
    pub fn validate(&self) -> Result<(), ResourceError> {
        if self.cores == 0 && self.gpus == 0 {
            return Err(ResourceError::EmptyRequest);
        }
        if self.nodes == 0 {
            return Err(ResourceError::EmptyRequest);
        }
        Ok(())
    }
}

impl Default for ResourceRequest {
    fn default() -> Self {
        ResourceRequest {
            cores: 1,
            gpus: 0,
            mem_gib: 0.0,
            nodes: 1,
            packing: None,
        }
    }
}

/// One node's share of a (possibly multi-node) slot: the concrete core/GPU indices and
/// memory reserved on that node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotMember {
    /// Index of the node within the allocation.
    pub node_index: usize,
    /// Node hostname (synthetic, e.g. `frontier-0042`). Interned: cloning a slot or
    /// creating one from a node shares the allocation's name storage instead of
    /// heap-allocating per placement.
    pub node_name: Arc<str>,
    /// Core indices reserved on the node.
    pub core_ids: Vec<u32>,
    /// GPU indices reserved on the node.
    pub gpu_ids: Vec<u32>,
    /// Memory reserved on the node, GiB.
    pub mem_gib: f64,
    /// True when the node already hosted other live slots at claim time — a
    /// partial-packing co-location rather than a whole-idle-node claim. Telemetry
    /// only; release does not depend on it.
    pub co_resident: bool,
}

/// A concrete reservation of resources: one [`SlotMember`] per spanned node.
///
/// Single-node placements have exactly one member; multi-node MPI gangs hold one per
/// member node (ordered by node index — the MPI rank order), all claimed atomically and
/// released as a unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Slot {
    /// Unique slot identifier (within its allocation).
    pub id: u64,
    /// Per-node memberships; never empty, ordered by node index.
    pub members: Vec<SlotMember>,
}

impl Slot {
    /// Build a single-node slot.
    pub fn single(id: u64, member: SlotMember) -> Self {
        Slot {
            id,
            members: vec![member],
        }
    }

    /// The lead member (rank 0's node for gangs; the only member otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty. The allocator never produces such a slot and
    /// [`crate::batch::Allocation::release_slot`] rejects one, but a hand-built or
    /// deserialized `Slot` with no members violates the type's invariant.
    pub fn lead(&self) -> &SlotMember {
        &self.members[0]
    }

    /// Allocation-relative index of the lead node.
    pub fn node_index(&self) -> usize {
        self.lead().node_index
    }

    /// Hostname of the lead node.
    pub fn node_name(&self) -> &Arc<str> {
        &self.lead().node_name
    }

    /// Number of nodes spanned by the slot.
    pub fn num_nodes(&self) -> usize {
        self.members.len()
    }

    /// True when the slot spans more than one node.
    pub fn is_gang(&self) -> bool {
        self.members.len() > 1
    }

    /// Total number of cores across all member nodes.
    pub fn num_cores(&self) -> usize {
        self.members.iter().map(|m| m.core_ids.len()).sum()
    }

    /// Total number of GPUs across all member nodes.
    pub fn num_gpus(&self) -> usize {
        self.members.iter().map(|m| m.gpu_ids.len()).sum()
    }

    /// Allocation-relative indices of all member nodes, in rank order.
    pub fn node_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter().map(|m| m.node_index)
    }

    /// Number of member nodes that were *not* fully idle when claimed — members a
    /// partial-packing placement co-located beside existing slots (0 for whole-node
    /// gangs and single-node slots on idle nodes).
    pub fn partial_nodes(&self) -> usize {
        self.members.iter().filter(|m| m.co_resident).count()
    }
}

/// A bitmask over `n` resource units; bit set = unit free.
fn full_mask(n: u32) -> Vec<u128> {
    let words = n.div_ceil(WORD_BITS) as usize;
    let mut mask = vec![!0u128; words];
    let rem = n % WORD_BITS;
    if rem != 0 {
        if let Some(last) = mask.last_mut() {
            *last = (!0u128) >> (WORD_BITS - rem);
        }
    }
    mask
}

/// Clear `count` set bits (lowest-index first) and append their indices to `out`.
/// The caller guarantees at least `count` bits are set.
fn take_units(mask: &mut [u128], count: u32, out: &mut Vec<u32>) {
    let mut need = count;
    for (w, word) in mask.iter_mut().enumerate() {
        while need > 0 && *word != 0 {
            let bit = word.trailing_zeros();
            *word &= *word - 1; // clear lowest set bit
            out.push(w as u32 * WORD_BITS + bit);
            need -= 1;
        }
        if need == 0 {
            break;
        }
    }
    debug_assert_eq!(
        need, 0,
        "take_units called with fewer free bits than requested"
    );
}

/// Set the bit for unit `id` if it is within bounds and currently clear.
/// Returns `true` when the bit was actually set (so double releases do not
/// inflate the cached free counters).
fn return_unit(mask: &mut [u128], total: u32, id: u32) -> bool {
    if id >= total {
        return false;
    }
    let word = (id / WORD_BITS) as usize;
    let bit = 1u128 << (id % WORD_BITS);
    if mask[word] & bit != 0 {
        return false;
    }
    mask[word] |= bit;
    true
}

/// Health of a node within an allocation.
///
/// `Healthy` nodes participate in placement. `Draining` nodes are pinned by a
/// backfill reservation (removed from the capacity index, waiting for a gang).
/// `Failed` nodes were lost at runtime ([`crate::batch::Allocation::fail_node`]):
/// their slots were evicted and they never re-enter any index. `Retired` nodes
/// were removed by an explicit shrink ([`crate::batch::Allocation::shrink`]);
/// like `Failed` it is terminal, but it is an orderly exit, not a fault.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeHealth {
    /// In service and placeable.
    #[default]
    Healthy,
    /// Pinned by a draining backfill reservation; not placeable until released.
    Draining,
    /// Lost at runtime; terminal. Never re-enters a capacity index.
    Failed,
    /// Removed by an orderly shrink; terminal.
    Retired,
}

/// Mutable occupancy state of one node.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// Node shape.
    pub spec: NodeSpec,
    /// Node hostname (interned; slot creation clones the `Arc`, not the string).
    pub name: Arc<str>,
    core_mask: Vec<u128>,
    gpu_mask: Vec<u128>,
    free_cores: u32,
    free_gpus: u32,
    mem_free_gib: f64,
    health: NodeHealth,
}

impl NodeState {
    /// Create a fully free node.
    pub fn new(name: impl Into<Arc<str>>, spec: NodeSpec) -> Self {
        NodeState {
            spec,
            name: name.into(),
            core_mask: full_mask(spec.cores),
            gpu_mask: full_mask(spec.gpus),
            free_cores: spec.cores,
            free_gpus: spec.gpus,
            mem_free_gib: spec.mem_gib,
            health: NodeHealth::Healthy,
        }
    }

    /// Current health state.
    pub fn health(&self) -> NodeHealth {
        self.health
    }

    /// Set the health state. Transitions are validated by the allocation (the
    /// single writer), not here: `Failed` and `Retired` are terminal by
    /// convention of the callers in `crate::batch`.
    pub fn set_health(&mut self, health: NodeHealth) {
        self.health = health;
    }

    /// Number of currently free cores (O(1): cached counter).
    pub fn free_cores(&self) -> u32 {
        self.free_cores
    }

    /// Number of currently free GPUs (O(1): cached counter).
    pub fn free_gpus(&self) -> u32 {
        self.free_gpus
    }

    /// Currently free memory, GiB.
    pub fn free_mem_gib(&self) -> f64 {
        self.mem_free_gib
    }

    /// True if the node has no reservations at all (O(1)).
    pub fn is_idle(&self) -> bool {
        self.free_cores == self.spec.cores
            && self.free_gpus == self.spec.gpus
            && (self.mem_free_gib - self.spec.mem_gib).abs() < 1e-9
    }

    /// Whether one member node's share of `req` could ever fit this node shape
    /// (ignoring current occupancy; the `nodes` span is the allocation's concern).
    pub fn can_ever_fit(&self, req: &ResourceRequest) -> bool {
        req.cores <= self.spec.cores
            && req.gpus <= self.spec.gpus
            && req.mem_gib <= self.spec.mem_gib
    }

    /// Whether one member node's share of `req` fits the node right now (O(1)).
    pub fn can_fit_now(&self, req: &ResourceRequest) -> bool {
        req.cores <= self.free_cores
            && req.gpus <= self.free_gpus
            && req.mem_gib <= self.mem_free_gib + 1e-9
    }

    /// Try to reserve one member node's share of `req` on this node, returning the
    /// concrete core/GPU indices.
    pub fn try_reserve(
        &mut self,
        req: &ResourceRequest,
    ) -> Result<(Vec<u32>, Vec<u32>, f64), ResourceError> {
        if !self.can_ever_fit(req) {
            return Err(ResourceError::NeverSatisfiable {
                reason: format!(
                    "request ({} cores, {} gpus, {:.1} GiB) exceeds node shape ({} cores, {} gpus, {:.1} GiB)",
                    req.cores, req.gpus, req.mem_gib, self.spec.cores, self.spec.gpus, self.spec.mem_gib
                ),
            });
        }
        if !self.can_fit_now(req) {
            return Err(ResourceError::InsufficientResources);
        }
        let mut cores = Vec::with_capacity(req.cores as usize);
        take_units(&mut self.core_mask, req.cores, &mut cores);
        self.free_cores -= req.cores;
        let mut gpus = Vec::with_capacity(req.gpus as usize);
        take_units(&mut self.gpu_mask, req.gpus, &mut gpus);
        self.free_gpus -= req.gpus;
        self.mem_free_gib -= req.mem_gib;
        Ok((cores, gpus, req.mem_gib))
    }

    /// Release previously reserved resources. Out-of-range or already-free indices are
    /// ignored, so double releases never inflate the free counters.
    pub fn release(&mut self, core_ids: &[u32], gpu_ids: &[u32], mem_gib: f64) {
        for &c in core_ids {
            if return_unit(&mut self.core_mask, self.spec.cores, c) {
                self.free_cores += 1;
            }
        }
        for &g in gpu_ids {
            if return_unit(&mut self.gpu_mask, self.spec.gpus, g) {
                self.free_gpus += 1;
            }
        }
        self.mem_free_gib = (self.mem_free_gib + mem_gib).min(self.spec.mem_gib);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeState {
        NodeState::new("test-0000", NodeSpec::new(8, 4, 256.0, 40.0))
    }

    #[test]
    fn fresh_node_is_idle() {
        let n = node();
        assert!(n.is_idle());
        assert_eq!(n.free_cores(), 8);
        assert_eq!(n.free_gpus(), 4);
        assert_eq!(n.free_mem_gib(), 256.0);
    }

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut n = node();
        let req = ResourceRequest {
            cores: 2,
            gpus: 1,
            mem_gib: 64.0,
            nodes: 1,
            packing: None,
        };
        let (cores, gpus, mem) = n.try_reserve(&req).unwrap();
        assert_eq!(cores.len(), 2);
        assert_eq!(gpus.len(), 1);
        assert_eq!(mem, 64.0);
        assert_eq!(n.free_cores(), 6);
        assert_eq!(n.free_gpus(), 3);
        assert!(!n.is_idle());
        n.release(&cores, &gpus, mem);
        assert!(n.is_idle());
    }

    #[test]
    fn reserve_distinct_indices() {
        let mut n = node();
        let r1 = n.try_reserve(&ResourceRequest::gpus(2).unwrap()).unwrap();
        let r2 = n.try_reserve(&ResourceRequest::gpus(2).unwrap()).unwrap();
        let mut all: Vec<u32> = r1.1.iter().chain(r2.1.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4, "GPU indices must not be double-booked");
    }

    #[test]
    fn oversized_request_is_never_satisfiable() {
        let mut n = node();
        let err = n
            .try_reserve(&ResourceRequest {
                cores: 9,
                gpus: 0,
                mem_gib: 0.0,
                nodes: 1,
                packing: None,
            })
            .unwrap_err();
        assert!(matches!(err, ResourceError::NeverSatisfiable { .. }));
        let err = n
            .try_reserve(&ResourceRequest {
                cores: 1,
                gpus: 5,
                mem_gib: 0.0,
                nodes: 1,
                packing: None,
            })
            .unwrap_err();
        assert!(matches!(err, ResourceError::NeverSatisfiable { .. }));
    }

    #[test]
    fn exhausted_node_reports_insufficient() {
        let mut n = node();
        let _ = n.try_reserve(&ResourceRequest::gpus(4).unwrap()).unwrap();
        let err = n
            .try_reserve(&ResourceRequest::gpus(1).unwrap())
            .unwrap_err();
        assert_eq!(err, ResourceError::InsufficientResources);
    }

    #[test]
    fn release_is_idempotent_and_clamped() {
        let mut n = node();
        let req = ResourceRequest {
            cores: 1,
            gpus: 0,
            mem_gib: 10.0,
            nodes: 1,
            packing: None,
        };
        let (c, g, m) = n.try_reserve(&req).unwrap();
        n.release(&c, &g, m);
        n.release(&c, &g, m); // double release must not overflow capacity
        assert_eq!(n.free_cores(), 8);
        assert!(n.free_mem_gib() <= 256.0 + 1e-9);
    }

    #[test]
    fn release_ignores_out_of_range_indices() {
        let mut n = node();
        n.release(&[999], &[999], 0.0);
        assert_eq!(n.free_cores(), 8);
        assert_eq!(n.free_gpus(), 4);
        assert!(n.is_idle());
    }

    #[test]
    fn resource_request_constructors() {
        let r = ResourceRequest::cores(4).unwrap();
        assert_eq!(r.cores, 4);
        assert_eq!(r.gpus, 0);
        assert_eq!(r.nodes, 1);
        let g = ResourceRequest::gpus(2).unwrap().with_mem_gib(32.0);
        assert_eq!(g.gpus, 2);
        assert_eq!(g.cores, 2);
        assert_eq!(g.mem_gib, 32.0);
        assert!(!g.is_empty());
        assert!(!g.is_gang());
        assert!(ResourceRequest {
            cores: 0,
            gpus: 0,
            mem_gib: 0.0,
            nodes: 1,
            packing: None,
        }
        .is_empty());
        assert_eq!(
            ResourceRequest::default(),
            ResourceRequest::cores(1).unwrap()
        );
    }

    #[test]
    fn zero_unit_constructors_are_rejected() {
        assert_eq!(
            ResourceRequest::gpus(0).unwrap_err(),
            ResourceError::EmptyRequest
        );
        assert_eq!(
            ResourceRequest::cores(0).unwrap_err(),
            ResourceError::EmptyRequest
        );
        // Struct literals bypass the constructors; validate() catches them.
        let literal = ResourceRequest {
            cores: 0,
            gpus: 0,
            mem_gib: 8.0,
            nodes: 1,
            packing: None,
        };
        assert_eq!(literal.validate().unwrap_err(), ResourceError::EmptyRequest);
        assert!(
            literal.is_empty(),
            "is_empty must agree with the EmptyRequest invariant for mem-only requests"
        );
        let zero_span = ResourceRequest {
            cores: 1,
            gpus: 0,
            mem_gib: 0.0,
            nodes: 0,
            packing: None,
        };
        assert_eq!(
            zero_span.validate().unwrap_err(),
            ResourceError::EmptyRequest
        );
        assert!(ResourceRequest::default().validate().is_ok());
    }

    #[test]
    fn gang_request_builder() {
        let r = ResourceRequest::cores(32).unwrap().with_nodes(4);
        assert_eq!(r.nodes, 4);
        assert!(r.is_gang());
        assert!(r.validate().is_ok());
        // Clamped to at least one node.
        assert_eq!(ResourceRequest::cores(1).unwrap().with_nodes(0).nodes, 1);
    }

    #[test]
    fn packing_resolution_prefers_the_explicit_request_policy() {
        let inherit = ResourceRequest::cores(4).unwrap().with_nodes(2);
        assert_eq!(inherit.packing, None);
        // Unset packing resolves to the supplied default…
        assert_eq!(
            inherit.or_packing(GangPacking::Whole).packing,
            Some(GangPacking::Whole)
        );
        // …while an explicit request-level policy always wins.
        let pinned = inherit.with_packing(GangPacking::Partial);
        assert_eq!(
            pinned.or_packing(GangPacking::Whole).packing,
            Some(GangPacking::Partial)
        );
        assert_eq!(GangPacking::default(), GangPacking::Partial);
    }

    #[test]
    fn slot_accessors() {
        let s = Slot::single(
            3,
            SlotMember {
                node_index: 0,
                node_name: "n0".into(),
                core_ids: vec![0, 1],
                gpu_ids: vec![2],
                mem_gib: 8.0,
                co_resident: false,
            },
        );
        assert_eq!(s.num_cores(), 2);
        assert_eq!(s.num_gpus(), 1);
        assert_eq!(s.num_nodes(), 1);
        assert_eq!(s.node_index(), 0);
        assert_eq!(&**s.node_name(), "n0");
        assert!(!s.is_gang());
    }

    #[test]
    fn gang_slot_aggregates_members() {
        let member = |i: usize| SlotMember {
            node_index: i,
            node_name: format!("n{i}").into(),
            core_ids: vec![0, 1, 2],
            gpu_ids: vec![0],
            mem_gib: 4.0,
            co_resident: i == 5,
        };
        let s = Slot {
            id: 7,
            members: vec![member(2), member(5), member(9)],
        };
        assert!(s.is_gang());
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_cores(), 9);
        assert_eq!(s.num_gpus(), 3);
        assert_eq!(s.node_index(), 2, "lead node is the first member");
        assert_eq!(s.node_indices().collect::<Vec<_>>(), vec![2, 5, 9]);
        assert_eq!(s.partial_nodes(), 1, "co-resident members are counted");
    }

    #[test]
    fn wide_node_spans_multiple_mask_words() {
        // 192 cores = one full u128 word plus a 64-bit tail.
        let spec = NodeSpec::new(192, 0, 1024.0, 0.0);
        let mut n = NodeState::new("wide-0000", spec);
        assert_eq!(n.free_cores(), 192);
        let (cores, _, _) = n
            .try_reserve(&ResourceRequest::cores(130).unwrap())
            .unwrap();
        assert_eq!(cores.len(), 130);
        assert_eq!(n.free_cores(), 62);
        // Indices must be distinct and include both words.
        let mut sorted = cores.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 130);
        assert!(sorted.iter().any(|&c| c >= 128), "second word must be used");
        n.release(&cores, &[], 0.0);
        assert!(n.is_idle());
    }

    #[test]
    fn freed_low_indices_are_reused_first() {
        let mut n = node();
        let (first, _, _) = n.try_reserve(&ResourceRequest::cores(2).unwrap()).unwrap();
        let (_second, _, _) = n.try_reserve(&ResourceRequest::cores(2).unwrap()).unwrap();
        n.release(&first, &[], 0.0);
        let (third, _, _) = n.try_reserve(&ResourceRequest::cores(2).unwrap()).unwrap();
        assert_eq!(
            third, first,
            "trailing-zeros picking reuses the lowest free indices"
        );
    }

    #[test]
    fn allocation_config_resolves_shards() {
        // Explicit counts are clamped into 1..=nodes.
        assert_eq!(
            AllocationConfig::default()
                .with_shards(4)
                .resolve_shards(256),
            4
        );
        assert_eq!(
            AllocationConfig::default()
                .with_shards(0)
                .resolve_shards(256),
            1
        );
        assert_eq!(
            AllocationConfig::default()
                .with_shards(99)
                .resolve_shards(8),
            8
        );
        assert_eq!(
            AllocationConfig::default().with_shards(3).resolve_shards(0),
            1
        );
        // Derived counts collapse to one shard below MIN_NODES_PER_SHARD nodes, so
        // test-sized allocations reproduce single-lock behaviour on any host.
        let derived = AllocationConfig::default();
        assert_eq!(derived.resolve_shards(MIN_NODES_PER_SHARD - 1), 1);
        assert_eq!(derived.resolve_shards(1), 1);
        // Larger allocations derive at most nodes/MIN_NODES_PER_SHARD shards,
        // bounded by the host parallelism (≥1 everywhere).
        let wide = derived.resolve_shards(4096);
        assert!((1..=4096 / MIN_NODES_PER_SHARD).contains(&wide));
    }

    #[test]
    fn error_display() {
        let e = ResourceError::UnknownSlot(9);
        assert!(e.to_string().contains('9'));
        assert!(ResourceError::InsufficientResources
            .to_string()
            .contains("insufficient"));
        assert!(ResourceError::EmptyRequest
            .to_string()
            .contains("at least one"));
        assert!(ResourceError::NodeFailed(3).to_string().contains("node 3"));
        assert!(ResourceError::UnknownNode(7)
            .to_string()
            .contains("unknown node"));
    }

    #[test]
    fn node_health_defaults_and_transitions() {
        let mut n = node();
        assert_eq!(n.health(), NodeHealth::Healthy);
        n.set_health(NodeHealth::Draining);
        assert_eq!(n.health(), NodeHealth::Draining);
        n.set_health(NodeHealth::Failed);
        assert_eq!(n.health(), NodeHealth::Failed);
        // Health is orthogonal to occupancy: a failed node still reports its
        // (reclaimed) free counters.
        assert!(n.is_idle());
    }
}
