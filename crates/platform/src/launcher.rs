//! Launcher models: how long it takes to start an executable on its target resources.
//!
//! RADICAL-Pilot launches tasks and service instances through a launch method (fork on
//! the node, SSH, or PRRTE/`prun` backed by PMIx — the paper uses MPI/PRRTE on Frontier
//! and Delta). Experiment 1 shows that the *launch* component of the bootstrap time is
//! nearly constant up to ~160 concurrent launches and then grows super-linearly, which
//! the authors attribute to MPI start-up contention. [`LaunchModel`] reproduces exactly
//! that behaviour with a calibrated contention term.

use rand::Rng;
use serde::{Deserialize, Serialize};

use hpcml_sim::dist::Dist;

/// The launch method used to place an executable on compute resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LauncherKind {
    /// Direct fork/exec on an already-provisioned node (cloud hosts, local tests).
    Fork,
    /// SSH into the target node and exec.
    Ssh,
    /// PMIx/PRRTE (`prun`) launch, the MPI-style launcher used on Frontier and Delta.
    MpiPrrte,
}

impl LauncherKind {
    /// Default launch-time model for this launcher kind.
    pub fn model(self) -> LaunchModel {
        match self {
            LauncherKind::Fork => LaunchModel {
                kind: self,
                base_secs: Dist::normal(0.05, 0.01),
                contention_knee: 1024,
                contention_coeff: 0.0,
                contention_exponent: 1.0,
            },
            LauncherKind::Ssh => LaunchModel {
                kind: self,
                base_secs: Dist::normal(0.8, 0.15),
                contention_knee: 256,
                contention_coeff: 0.004,
                contention_exponent: 1.2,
            },
            LauncherKind::MpiPrrte => LaunchModel {
                kind: self,
                // Baseline prun/PRRTE start-up on a leadership-class machine: ~2 s.
                base_secs: Dist::normal(2.0, 0.3),
                // Paper Fig. 3: launch time flat up to ~160 concurrent instances.
                contention_knee: 160,
                // Beyond the knee the DVM/daemon wire-up cost grows super-linearly, yet
                // stays well below the model-init time even at 640 instances (Fig. 3).
                contention_coeff: 0.0026,
                contention_exponent: 1.3,
            },
        }
    }
}

impl std::fmt::Display for LauncherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LauncherKind::Fork => "fork",
            LauncherKind::Ssh => "ssh",
            LauncherKind::MpiPrrte => "mpi/prrte",
        };
        f.write_str(s)
    }
}

/// Calibrated model of launch duration as a function of launch concurrency.
///
/// `launch_time(n) = base + coeff * max(0, n - knee)^exponent` (seconds), where `base`
/// is stochastic and the contention term is deterministic in the number of concurrent
/// launches `n`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchModel {
    /// Which launcher this models.
    pub kind: LauncherKind,
    /// Per-launch baseline duration (seconds).
    pub base_secs: Dist,
    /// Concurrency below which no contention is observed.
    pub contention_knee: u32,
    /// Coefficient of the contention term.
    pub contention_coeff: f64,
    /// Exponent of the contention term.
    pub contention_exponent: f64,
}

impl LaunchModel {
    /// Sample the launch duration for one executable when `concurrent` launches are in
    /// flight at the same time.
    pub fn sample_launch<R: Rng + ?Sized>(
        &self,
        concurrent: u32,
        rng: &mut R,
    ) -> std::time::Duration {
        let base = self.base_secs.sample(rng).max(0.0);
        std::time::Duration::from_secs_f64(base + self.contention_secs(concurrent))
    }

    /// Deterministic contention component for a given concurrency level.
    pub fn contention_secs(&self, concurrent: u32) -> f64 {
        let excess = concurrent.saturating_sub(self.contention_knee) as f64;
        if excess <= 0.0 {
            0.0
        } else {
            self.contention_coeff * excess.powf(self.contention_exponent)
        }
    }

    /// Expected (mean) launch duration at a given concurrency.
    pub fn mean_launch_secs(&self, concurrent: u32) -> f64 {
        self.base_secs.mean() + self.contention_secs(concurrent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mpi_launch_flat_below_knee() {
        let m = LauncherKind::MpiPrrte.model();
        let at_1 = m.mean_launch_secs(1);
        let at_160 = m.mean_launch_secs(160);
        assert!(
            (at_1 - at_160).abs() < 1e-9,
            "launch must be flat up to the knee"
        );
    }

    #[test]
    fn mpi_launch_grows_superlinearly_past_knee() {
        let m = LauncherKind::MpiPrrte.model();
        let at_160 = m.mean_launch_secs(160);
        let at_320 = m.mean_launch_secs(320);
        let at_640 = m.mean_launch_secs(640);
        assert!(at_320 > at_160);
        assert!(at_640 > at_320);
        // Super-linear: the increment from 320→640 exceeds the increment from 160→320.
        assert!(at_640 - at_320 > at_320 - at_160);
        // The paper's Fig. 3 shows launch remaining smaller than the model-init time
        // (~30 s) even at 640 instances: sanity-bound the calibration.
        assert!(
            at_640 < 30.0,
            "launch at 640 should stay below model init, got {at_640}"
        );
        assert!(
            at_640 > 4.0,
            "launch at 640 should clearly exceed the baseline, got {at_640}"
        );
    }

    #[test]
    fn fork_launch_has_no_contention() {
        let m = LauncherKind::Fork.model();
        assert_eq!(m.contention_secs(10_000), 0.0);
        assert!(m.mean_launch_secs(1) < 0.2);
    }

    #[test]
    fn sampled_launch_is_positive_and_reproducible() {
        let m = LauncherKind::MpiPrrte.model();
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..32)
                .map(|_| m.sample_launch(320, &mut rng).as_secs_f64())
                .collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(11);
            (0..32)
                .map(|_| m.sample_launch(320, &mut rng).as_secs_f64())
                .collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn launcher_display_names() {
        assert_eq!(LauncherKind::Fork.to_string(), "fork");
        assert_eq!(LauncherKind::MpiPrrte.to_string(), "mpi/prrte");
        assert_eq!(LauncherKind::Ssh.to_string(), "ssh");
    }
}
