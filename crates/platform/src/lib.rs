//! # hpcml-platform — simulated HPC platform substrate
//!
//! The paper runs its experiments on OLCF Frontier, NCSA Delta, and "R3", a cloud host.
//! None of those machines are available to this reproduction, so this crate implements
//! the platform substrate the runtime needs, from scratch:
//!
//! * [`resources`] — the resource model: nodes, cores, GPUs, memory, and [`resources::Slot`]s
//!   (the unit of placement handed to tasks and services);
//! * [`spec`] — platform catalogs with the published node shapes of Frontier, Delta and
//!   the R3 cloud host, plus network-latency profiles (local vs remote);
//! * [`batch`] — a batch/resource manager: allocation requests, queue-wait modelling, and
//!   [`batch::Allocation`]s from which the pilot carves slots;
//! * [`launcher`] — launch-time models for fork/SSH/MPI-PRRTE launchers, including the
//!   super-linear MPI start-up overhead the paper observes beyond ~160 concurrent
//!   launches (Fig. 3);
//! * [`network`] — latency profiles used by the communication layer to model local
//!   (0.063 ± 0.014 ms) and remote (0.47 ± 0.04 ms) links.
//!
//! The experiments in the paper depend on slot counts, GPU counts, concurrency limits,
//! launcher behaviour and link latencies — not on the machines' floating-point
//! throughput — so this substrate preserves the behaviour that matters (see DESIGN.md §5).
//!
//! # Example
//!
//! Submit a pilot-sized allocation to a platform's batch system and carve a slot out
//! of it:
//!
//! ```
//! use hpcml_platform::batch::{AllocationRequest, BatchSystem};
//! use hpcml_platform::{PlatformId, ResourceRequest};
//! use hpcml_sim::clock::ClockSpec;
//!
//! let batch = BatchSystem::new(PlatformId::Local.spec(), ClockSpec::Manual.build(), 7);
//! let alloc = batch.submit(AllocationRequest::nodes(2))?;
//! assert_eq!(alloc.num_nodes(), 2);
//!
//! let slot = alloc.allocate_slot(&ResourceRequest::gpus(1)?)?;
//! assert_eq!(slot.num_gpus(), 1);
//! alloc.release_slot(&slot)?;
//! assert!(alloc.is_idle());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod launcher;
pub mod network;
pub mod resources;
pub mod spec;

pub use batch::DrainStatus;
pub use batch::{Allocation, AllocationRequest, BatchError, BatchSystem};
pub use launcher::{LaunchModel, LauncherKind};
pub use network::{LatencyProfile, NetworkLocality};
pub use resources::{GangPacking, NodeSpec, ResourceError, ResourceRequest, Slot, SlotMember};
pub use spec::{PlatformId, PlatformSpec};
