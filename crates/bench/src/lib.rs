//! # hpcml-bench — experiment harness reproducing the paper's evaluation
//!
//! One module per paper artifact:
//!
//! * [`exp1`] — Experiment 1 / Fig. 3: scaling of local service bootstrap time (BT)
//!   on a Frontier-profile pilot, 1–640 concurrent llama-8b service instances.
//! * [`exp2`] — Experiment 2 / Figs. 4–5: strong and weak scaling of local and remote
//!   NOOP service response time (RT) on a Delta-profile pilot (+R3 for remote).
//! * [`exp3`] — Experiment 3 / Fig. 6: strong and weak scaling of local and remote
//!   llama-8b inference time (IT).
//! * [`tables`] — Tables I and II as printable data.
//! * [`report`] — shared row/series printers so every binary emits the same format.
//!
//! The binaries under `src/bin/` drive these modules and print one row per
//! configuration; `cargo bench` exercises reduced-scale versions of the same harness
//! plus micro-benchmarks of the runtime's hot paths.

#![warn(missing_docs)]

pub mod exp1;
pub mod exp2;
pub mod exp3;
pub mod report;
pub mod tables;

/// Returns true when the harness should run at full paper scale (set `HPCML_FULL=1`).
/// The default is a reduced scale that finishes in seconds while preserving the shapes.
pub fn full_scale() -> bool {
    std::env::var("HPCML_FULL")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}
