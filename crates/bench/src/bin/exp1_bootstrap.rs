//! Experiment 1 / Fig. 3 — scaling of local service bootstrap time (BT).
//!
//! Launches N concurrent llama-8b services (one GPU each) on a Frontier-profile pilot
//! and prints the per-instance-count breakdown of launch / init / publish times, i.e.
//! the series plotted in the paper's Fig. 3.

use hpcml_bench::exp1::{run_sweep, BootstrapConfig};
use hpcml_bench::full_scale;
use hpcml_bench::report::{render_csv, render_table};

fn main() {
    let config = if full_scale() {
        BootstrapConfig::paper()
    } else {
        BootstrapConfig::quick()
    };
    eprintln!(
        "exp1: sweeping {:?} concurrent llama-8b services on a Frontier-profile pilot (HPCML_FULL={})",
        config.instance_counts,
        full_scale()
    );
    let results = run_sweep(&config);
    let rows: Vec<_> = results.iter().map(|r| r.to_row()).collect();
    println!(
        "{}",
        render_table(
            "Fig. 3 — service bootstrap times (per instance, seconds)",
            &["launch", "init", "publish"],
            &rows
        )
    );
    println!("{}", render_csv(&rows));
}
