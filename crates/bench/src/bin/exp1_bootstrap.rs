//! Experiment 1 / Fig. 3 — scaling of local service bootstrap time (BT).
//!
//! Launches N concurrent llama-8b services (one GPU each) on a Frontier-profile pilot
//! and prints the per-instance-count breakdown of launch / init / publish times, i.e.
//! the series plotted in the paper's Fig. 3 — followed by the pilot resize-latency
//! sweep (elastic expand/shrink cost across pilot sizes).

use hpcml_bench::exp1::{run_resize_sweep, run_sweep, BootstrapConfig, ResizeConfig};
use hpcml_bench::full_scale;
use hpcml_bench::report::{render_csv, render_table};

fn main() {
    let config = if full_scale() {
        BootstrapConfig::paper()
    } else {
        BootstrapConfig::quick()
    };
    eprintln!(
        "exp1: sweeping {:?} concurrent llama-8b services on a Frontier-profile pilot (HPCML_FULL={})",
        config.instance_counts,
        full_scale()
    );
    let results = run_sweep(&config);
    let rows: Vec<_> = results.iter().map(|r| r.to_row()).collect();
    println!(
        "{}",
        render_table(
            "Fig. 3 — service bootstrap times (per instance, seconds)",
            &["launch", "init", "publish"],
            &rows
        )
    );
    println!("{}", render_csv(&rows));

    let resize_config = if full_scale() {
        ResizeConfig::paper()
    } else {
        ResizeConfig::quick()
    };
    eprintln!(
        "exp1: timing {} expand+shrink cycles of {} nodes across pilots of {:?} nodes",
        resize_config.cycles, resize_config.delta, resize_config.node_counts
    );
    let resize_results = run_resize_sweep(&resize_config);
    let resize_rows: Vec<_> = resize_results.iter().map(|r| r.to_row()).collect();
    println!(
        "{}",
        render_table(
            "Pilot resize latency (per operation, real seconds)",
            &["expand", "shrink"],
            &resize_rows
        )
    );
    println!("{}", render_csv(&resize_rows));
}
