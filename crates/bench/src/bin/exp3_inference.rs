//! Experiment 3 / Fig. 6 — strong and weak scaling of llama-8b inference time (IT),
//! for both remote (as plotted in Fig. 6) and local deployments (discussed in the text).

use hpcml_bench::exp2::{Deployment, Scaling};
use hpcml_bench::exp3::run;
use hpcml_bench::full_scale;
use hpcml_bench::report::{render_csv, render_table};

fn main() {
    let quick = !full_scale();
    eprintln!(
        "exp3: Delta pilot, llama-8b services, local and remote (HPCML_FULL={})",
        full_scale()
    );

    for deployment in [Deployment::Remote, Deployment::Local] {
        let strong = run(Scaling::Strong, deployment, quick);
        let rows: Vec<_> = strong.iter().map(|r| r.to_row()).collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "Fig. 6 — {} LLAMA inference, strong scaling (16 clients)",
                    deployment.label()
                ),
                &["communication", "service", "inference"],
                &rows
            )
        );
        println!("{}", render_csv(&rows));

        let weak = run(Scaling::Weak, deployment, quick);
        let rows: Vec<_> = weak.iter().map(|r| r.to_row()).collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "Fig. 6 — {} LLAMA inference, weak scaling (clients == services)",
                    deployment.label()
                ),
                &["communication", "service", "inference"],
                &rows
            )
        );
        println!("{}", render_csv(&rows));
    }
}
