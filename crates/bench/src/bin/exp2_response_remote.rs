//! Experiment 2 (remote) / Fig. 5 — strong and weak scaling of remote NOOP response time.

use hpcml_bench::exp2::{run_sweep, Deployment, Scaling, ScalingConfig};
use hpcml_bench::full_scale;
use hpcml_bench::report::{render_csv, render_table};

fn main() {
    let config = if full_scale() {
        ScalingConfig::paper_noop(Deployment::Remote)
    } else {
        ScalingConfig::quick_noop(Deployment::Remote)
    };
    eprintln!(
        "exp2 (remote): Delta clients -> R3-hosted NOOP services, {} requests/client (HPCML_FULL={})",
        config.requests_per_client,
        full_scale()
    );

    let strong = run_sweep(Scaling::Strong, &config);
    let rows: Vec<_> = strong.iter().map(|r| r.to_row()).collect();
    println!(
        "{}",
        render_table(
            "Fig. 5 (top) — remote NOOP response time, strong scaling (16 clients)",
            &["communication", "service", "inference"],
            &rows
        )
    );
    println!("{}", render_csv(&rows));

    let weak = run_sweep(Scaling::Weak, &config);
    let rows: Vec<_> = weak.iter().map(|r| r.to_row()).collect();
    println!(
        "{}",
        render_table(
            "Fig. 5 (bottom) — remote NOOP response time, weak scaling (clients == services)",
            &["communication", "service", "inference"],
            &rows
        )
    );
    println!("{}", render_csv(&rows));
}
