//! Regenerates the paper's Table II (experiment setup matrix).

use hpcml_bench::tables::render_table2;

fn main() {
    println!("{}", render_table2());
    println!("Run the experiments with:");
    println!("  cargo run --release -p hpcml-bench --bin exp1_bootstrap        # Fig. 3");
    println!("  cargo run --release -p hpcml-bench --bin exp2_response_local   # Fig. 4");
    println!("  cargo run --release -p hpcml-bench --bin exp2_response_remote  # Fig. 5");
    println!("  cargo run --release -p hpcml-bench --bin exp3_inference        # Fig. 6");
    println!("Set HPCML_FULL=1 for the paper-scale sweeps (640 services, 1024 requests/client).");
}
