//! Experiment 2 (local) / Fig. 4 — strong and weak scaling of local NOOP response time.

use hpcml_bench::exp2::{run_sweep, Deployment, Scaling, ScalingConfig};
use hpcml_bench::full_scale;
use hpcml_bench::report::{render_csv, render_table};

fn main() {
    let config = if full_scale() {
        ScalingConfig::paper_noop(Deployment::Local)
    } else {
        ScalingConfig::quick_noop(Deployment::Local)
    };
    eprintln!(
        "exp2 (local): Delta pilot, NOOP services, {} requests/client (HPCML_FULL={})",
        config.requests_per_client,
        full_scale()
    );

    let strong = run_sweep(Scaling::Strong, &config);
    let rows: Vec<_> = strong.iter().map(|r| r.to_row()).collect();
    println!(
        "{}",
        render_table(
            "Fig. 4 (top) — local NOOP response time, strong scaling (16 clients)",
            &["communication", "service", "inference"],
            &rows
        )
    );
    println!("{}", render_csv(&rows));

    let weak = run_sweep(Scaling::Weak, &config);
    let rows: Vec<_> = weak.iter().map(|r| r.to_row()).collect();
    println!(
        "{}",
        render_table(
            "Fig. 4 (bottom) — local NOOP response time, weak scaling (clients == services)",
            &["communication", "service", "inference"],
            &rows
        )
    );
    println!("{}", render_csv(&rows));
}
