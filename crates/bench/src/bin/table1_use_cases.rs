//! Regenerates the paper's Table I (use-case pipelines, stages, resources, services),
//! and cross-checks it against the structure of the implemented LUCID pipelines.

use hpcml_bench::tables::render_table1;
use hpcml_workflows::dsl::structure;
use hpcml_workflows::lucid::{
    cell_painting_pipeline, signature_detection_pipeline, uncertainty_quantification_pipeline,
    CellPaintingConfig, SignatureDetectionConfig, UqConfig,
};

fn main() {
    println!("{}", render_table1());

    println!("## Implemented pipeline structures (test-scale configurations)");
    let pipelines = vec![
        (
            "cell-painting",
            structure(&cell_painting_pipeline(&CellPaintingConfig::test_scale())),
        ),
        (
            "signature-detection",
            structure(&signature_detection_pipeline(
                &SignatureDetectionConfig::test_scale(),
            )),
        ),
        (
            "uncertainty-quantification",
            structure(&uncertainty_quantification_pipeline(&UqConfig::test_scale())),
        ),
    ];
    for (name, stages) in pipelines {
        println!("{name}:");
        for (stage, services, tasks) in stages {
            println!("  {stage:<40} services={services:<3} tasks={tasks}");
        }
    }
}
