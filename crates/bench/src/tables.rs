//! Tables I and II of the paper as printable data.

use hpcml_workflows::lucid::{use_case_table, UseCaseRow};

/// One row of the paper's Table II (experiment setup).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentSetupRow {
    /// Experiment id (1-3).
    pub id: u8,
    /// HPC platform(s).
    pub platform: &'static str,
    /// Task type.
    pub task_type: &'static str,
    /// Model.
    pub model: &'static str,
    /// Model deployment (local / remote).
    pub deployment: &'static str,
    /// Number of client tasks.
    pub tasks: &'static str,
    /// Number of model instances.
    pub models: &'static str,
    /// Cores per pilot.
    pub cores_per_pilot: u32,
    /// GPUs per pilot.
    pub gpus_per_pilot: u32,
    /// Scaling mode.
    pub scaling: &'static str,
}

/// The contents of the paper's Table II.
pub fn experiment_setup_table() -> Vec<ExperimentSetupRow> {
    vec![
        ExperimentSetupRow {
            id: 1,
            platform: "Frontier",
            task_type: "n/a",
            model: "llama 8b",
            deployment: "local",
            tasks: "n/a",
            models: "1-640",
            cores_per_pilot: 640,
            gpus_per_pilot: 40,
            scaling: "weak",
        },
        ExperimentSetupRow {
            id: 2,
            platform: "Delta",
            task_type: "NOOP",
            model: "noop",
            deployment: "local",
            tasks: "1-16",
            models: "1-16",
            cores_per_pilot: 256,
            gpus_per_pilot: 16,
            scaling: "strong/weak",
        },
        ExperimentSetupRow {
            id: 2,
            platform: "Delta and R3",
            task_type: "NOOP",
            model: "noop",
            deployment: "remote",
            tasks: "1-16",
            models: "1-16",
            cores_per_pilot: 256,
            gpus_per_pilot: 16,
            scaling: "strong/weak",
        },
        ExperimentSetupRow {
            id: 3,
            platform: "Delta",
            task_type: "inference",
            model: "llama 8b",
            deployment: "local",
            tasks: "1-16",
            models: "1-16",
            cores_per_pilot: 256,
            gpus_per_pilot: 16,
            scaling: "strong/weak",
        },
        ExperimentSetupRow {
            id: 3,
            platform: "Delta and R3",
            task_type: "inference",
            model: "llama 8b",
            deployment: "remote",
            tasks: "1-16",
            models: "1-16",
            cores_per_pilot: 256,
            gpus_per_pilot: 16,
            scaling: "strong/weak",
        },
    ]
}

/// Render Table I as text.
pub fn render_table1() -> String {
    let mut out = String::from(
        "## Table I — use cases: pipelines, stages, resource requirements, service-based implementation\n",
    );
    out.push_str(&format!(
        "{:<4}{:<30}{:<50}{:<15}{:<10}\n",
        "ID", "Pipeline", "Stage", "Resource", "Service"
    ));
    for row in use_case_table() {
        out.push_str(&format!(
            "{:<4}{:<30}{:<50}{:<15}{:<10}\n",
            row.id,
            row.pipeline,
            row.stage,
            row.resource,
            if row.as_service { "Yes" } else { "No" }
        ));
    }
    out
}

/// Render Table II as text.
pub fn render_table2() -> String {
    let mut out = String::from("## Table II — experiment setup\n");
    out.push_str(&format!(
        "{:<4}{:<16}{:<12}{:<10}{:<12}{:<8}{:<8}{:<14}{:<14}{:<12}\n",
        "ID",
        "Platform",
        "Task type",
        "Model",
        "Deployment",
        "Tasks",
        "Models",
        "Cores/pilot",
        "GPUs/pilot",
        "Scaling"
    ));
    for row in experiment_setup_table() {
        out.push_str(&format!(
            "{:<4}{:<16}{:<12}{:<10}{:<12}{:<8}{:<8}{:<14}{:<14}{:<12}\n",
            row.id,
            row.platform,
            row.task_type,
            row.model,
            row.deployment,
            row.tasks,
            row.models,
            row.cores_per_pilot,
            row.gpus_per_pilot,
            row.scaling
        ));
    }
    out
}

/// Re-export of the Table I rows for convenience.
pub fn table1_rows() -> Vec<UseCaseRow> {
    use_case_table()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_setup() {
        let rows = experiment_setup_table();
        assert_eq!(rows.len(), 5);
        let exp1 = &rows[0];
        assert_eq!(exp1.platform, "Frontier");
        assert_eq!(exp1.gpus_per_pilot, 40);
        assert_eq!(exp1.scaling, "weak");
        assert!(rows.iter().filter(|r| r.id == 2).count() == 2);
        assert!(rows
            .iter()
            .filter(|r| r.id == 3)
            .all(|r| r.model == "llama 8b"));
        assert!(rows
            .iter()
            .filter(|r| r.id >= 2)
            .all(|r| r.cores_per_pilot == 256 && r.gpus_per_pilot == 16));
    }

    #[test]
    fn rendered_tables_contain_key_entries() {
        let t1 = render_table1();
        assert!(t1.contains("Cell Painting"));
        assert!(t1.contains("Uncertainty Quantification"));
        assert_eq!(table1_rows().len(), 8);
        let t2 = render_table2();
        assert!(t2.contains("Frontier"));
        assert!(t2.contains("Delta and R3"));
        assert!(t2.contains("strong/weak"));
    }
}
