//! Experiment 1 / Fig. 3: scaling of local service bootstrap time (BT).
//!
//! The paper launches 1, 2, 4, 8, 20, 40, 80, 160, 320 and 640 service instances — each
//! hosting a llama-8b model on one Frontier GPU — and reports the three bootstrap
//! components per instance count: `launch` (flat up to ~160, then growing
//! super-linearly), `init` (model load, dominant and roughly constant), and `publish`
//! (endpoint publication, always below launch).

use std::collections::BTreeMap;
use std::time::Duration;

use hpcml_platform::PlatformId;
use hpcml_runtime::describe::{PilotDescription, ServiceDescription};
use hpcml_runtime::session::Session;
use hpcml_serving::ModelSpec;
use hpcml_sim::clock::ClockSpec;
use hpcml_sim::stats::Summary;

use crate::report::Row;

/// Configuration of one bootstrap-scaling run.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Numbers of concurrent service instances to sweep over.
    pub instance_counts: Vec<usize>,
    /// Clock compression factor.
    pub clock_scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Model hosted by every service instance.
    pub model: ModelSpec,
}

impl BootstrapConfig {
    /// The paper's full sweep (1–640 instances).
    pub fn paper() -> Self {
        BootstrapConfig {
            instance_counts: vec![1, 2, 4, 8, 20, 40, 80, 160, 320, 640],
            clock_scale: 400.0,
            seed: 42,
            model: ModelSpec::sim_llama_8b(),
        }
    }

    /// Reduced sweep used by default so the binary finishes in a few seconds.
    pub fn quick() -> Self {
        BootstrapConfig {
            instance_counts: vec![1, 2, 4, 8, 20, 40],
            clock_scale: 400.0,
            seed: 42,
            model: ModelSpec::sim_llama_8b(),
        }
    }
}

/// Result of one instance-count configuration.
#[derive(Debug, Clone)]
pub struct BootstrapResult {
    /// Number of concurrently bootstrapped services.
    pub instances: usize,
    /// Per-component summaries (`launch`, `init`, `publish`).
    pub components: BTreeMap<String, Summary>,
    /// Summary of total bootstrap time per service.
    pub total: Summary,
}

impl BootstrapResult {
    /// Convert to a printable row.
    pub fn to_row(&self) -> Row {
        Row::new(
            format!("instances={}", self.instances),
            self.components.clone(),
            self.total,
        )
    }
}

/// Bootstrap `instances` llama-8b services concurrently on a Frontier-profile pilot and
/// measure the per-service bootstrap breakdown.
pub fn run_one(instances: usize, config: &BootstrapConfig) -> BootstrapResult {
    let session = Session::builder(format!("exp1-{instances}"))
        .platform(PlatformId::Frontier)
        .clock(ClockSpec::scaled(config.clock_scale))
        .seed(config.seed)
        .build()
        .expect("session");

    // One GPU per service; Frontier nodes expose 8 GPUs, so round the node count up.
    let nodes = instances.div_ceil(8).max(1);
    session
        .submit_pilot(
            PilotDescription::new(PlatformId::Frontier)
                .nodes(nodes)
                .runtime_secs(7200.0),
        )
        .expect("pilot");

    let handles: Vec<_> = (0..instances)
        .map(|i| {
            session
                .submit_service(
                    ServiceDescription::new(format!("llm-{i:04}"))
                        .model(config.model.clone())
                        .gpus(1)
                        .startup_timeout_secs(3600.0),
                )
                .expect("submit service")
        })
        .collect();
    for h in &handles {
        h.wait_ready_timeout(Duration::from_secs(600))
            .expect("service ready");
    }

    let metrics = session.metrics();
    let result = BootstrapResult {
        instances,
        components: metrics.bootstrap_summaries(),
        total: metrics.bootstrap_total_summary(),
    };
    session.close();
    result
}

/// Run the full sweep.
pub fn run_sweep(config: &BootstrapConfig) -> Vec<BootstrapResult> {
    config
        .instance_counts
        .iter()
        .map(|&n| run_one(n, config))
        .collect()
}

/// Configuration of one pilot-resize latency run: how large the pilot starts, by how
/// many nodes each cycle grows and shrinks it, and how many cycles to time.
///
/// Resize latency is a first-order scalability metric for leadership-class pilots
/// (the RADICAL-Pilot characterization reports bootstrap/resize cost alongside
/// utilisation): an elastic pilot is only useful if joining and retiring nodes is
/// cheap next to the workload it rebalances.
#[derive(Debug, Clone)]
pub struct ResizeConfig {
    /// Pilot sizes (in nodes) to sweep over.
    pub node_counts: Vec<usize>,
    /// Nodes added by each expand and retired by each shrink.
    pub delta: usize,
    /// Timed expand+shrink cycles per pilot size.
    pub cycles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ResizeConfig {
    /// Full sweep across pilot sizes up to leadership scale.
    pub fn paper() -> Self {
        ResizeConfig {
            node_counts: vec![8, 64, 512, 2048],
            delta: 8,
            cycles: 32,
            seed: 42,
        }
    }

    /// Reduced sweep used by default.
    pub fn quick() -> Self {
        ResizeConfig {
            node_counts: vec![8, 64],
            delta: 4,
            cycles: 16,
            seed: 42,
        }
    }
}

/// Result of one resize-latency configuration: real-time seconds per operation.
#[derive(Debug, Clone)]
pub struct ResizeResult {
    /// Pilot size the cycles ran against.
    pub nodes: usize,
    /// Per-cycle `expand(delta)` latency (real seconds).
    pub expand: Summary,
    /// Per-cycle `shrink(delta)` latency (real seconds).
    pub shrink: Summary,
}

impl ResizeResult {
    /// Convert to a printable row.
    pub fn to_row(&self) -> Row {
        let mut components = BTreeMap::new();
        components.insert("expand".to_string(), self.expand);
        components.insert("shrink".to_string(), self.shrink);
        // One "total" cycle = an expand followed by a shrink; summing the
        // per-operation summaries component-wise is the per-cycle bound.
        let total = Summary {
            count: self.expand.count,
            mean: self.expand.mean + self.shrink.mean,
            std_dev: self.expand.std_dev + self.shrink.std_dev,
            min: self.expand.min + self.shrink.min,
            max: self.expand.max + self.shrink.max,
            p50: self.expand.p50 + self.shrink.p50,
            p90: self.expand.p90 + self.shrink.p90,
            p95: self.expand.p95 + self.shrink.p95,
            p99: self.expand.p99 + self.shrink.p99,
        };
        Row::new(format!("nodes={}", self.nodes), components, total)
    }
}

/// Time `cycles` expand+shrink cycles of `delta` nodes against a `nodes`-node
/// Frontier-profile pilot. Latencies are wall-clock: resize is a runtime control
/// operation, not a simulated workload, so real seconds are the honest unit.
pub fn run_resize_one(nodes: usize, config: &ResizeConfig) -> ResizeResult {
    let session = Session::builder(format!("exp1-resize-{nodes}"))
        .platform(PlatformId::Frontier)
        .clock(ClockSpec::scaled(10_000.0))
        .seed(config.seed)
        .build()
        .expect("session");
    let pilot = session
        .submit_pilot(
            PilotDescription::new(PlatformId::Frontier)
                .nodes(nodes)
                .runtime_secs(7200.0),
        )
        .expect("pilot");
    let mut expand = Vec::with_capacity(config.cycles);
    let mut shrink = Vec::with_capacity(config.cycles);
    for _ in 0..config.cycles {
        let t = std::time::Instant::now();
        pilot.resize(nodes + config.delta).expect("expand");
        expand.push(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        pilot.resize(nodes).expect("shrink");
        shrink.push(t.elapsed().as_secs_f64());
    }
    assert_eq!(pilot.attached_nodes(), nodes, "cycles must be size-neutral");
    session.close();
    ResizeResult {
        nodes,
        expand: Summary::from_slice(&expand),
        shrink: Summary::from_slice(&shrink),
    }
}

/// Run the resize-latency sweep.
pub fn run_resize_sweep(config: &ResizeConfig) -> Vec<ResizeResult> {
    config
        .node_counts
        .iter()
        .map(|&n| run_resize_one(n, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_components_have_paper_shape_at_small_scale() {
        let config = BootstrapConfig {
            instance_counts: vec![4],
            clock_scale: 2000.0,
            seed: 7,
            model: ModelSpec::sim_llama_8b(),
        };
        let r = run_one(4, &config);
        assert_eq!(r.instances, 4);
        assert_eq!(r.components["init"].count, 4);
        // init dominates launch; publish stays below launch (paper Fig. 3).
        assert!(r.components["init"].mean > r.components["launch"].mean);
        assert!(r.components["publish"].mean < r.components["launch"].mean);
        assert!(r.total.mean >= r.components["init"].mean);
        assert!(!r.to_row().label.is_empty());
    }

    #[test]
    fn resize_cycles_are_size_neutral_and_measured() {
        let config = ResizeConfig {
            node_counts: vec![4, 16],
            delta: 2,
            cycles: 4,
            seed: 7,
        };
        let results = run_resize_sweep(&config);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.expand.count, 4);
            assert_eq!(r.shrink.count, 4);
            assert!(r.expand.mean > 0.0 && r.shrink.mean > 0.0);
            assert!(r.expand.min <= r.expand.p99 && r.expand.p99 <= r.expand.max);
            let row = r.to_row();
            assert!(row.label.contains("nodes="));
        }
    }

    #[test]
    fn launch_grows_with_concurrency_past_the_knee() {
        let config = BootstrapConfig {
            instance_counts: vec![8, 320],
            clock_scale: 6000.0,
            seed: 9,
            model: ModelSpec::sim_llama_8b(),
        };
        let small = run_one(8, &config);
        let big = run_one(320, &config);
        assert!(
            big.components["launch"].mean > small.components["launch"].mean * 1.5,
            "launch at 320 ({:.2}s) must exceed launch at 8 ({:.2}s)",
            big.components["launch"].mean,
            small.components["launch"].mean
        );
        // Init stays roughly constant per instance.
        let ratio = big.components["init"].mean / small.components["init"].mean;
        assert!((0.6..1.6).contains(&ratio), "init ratio {ratio}");
    }
}
