//! Experiment 3 / Fig. 6: strong and weak scaling of model inference time (IT).
//!
//! The topology is identical to experiment 2 (Delta pilot, 16 GPUs, 16 clients, local or
//! remote services) but the services host a llama-8b-class model instead of NOOP, so:
//!
//! * the `inference` component dominates the response time by orders of magnitude;
//! * the local/remote difference (sub-millisecond vs ~1 ms of communication) becomes
//!   negligible relative to seconds of inference — model locality is a secondary
//!   concern, as the paper concludes;
//! * under strong scaling with few services the single-threaded backend queues requests
//!   and the `service` (queueing) component blows up.

use crate::exp2::{run_sweep, Deployment, Scaling, ScalingConfig, ScalingResult};

/// Run the inference-time sweep for the given deployment and scaling mode.
pub fn run(scaling: Scaling, deployment: Deployment, quick: bool) -> Vec<ScalingResult> {
    let config = if quick {
        ScalingConfig::quick_llm(deployment)
    } else {
        ScalingConfig::paper_llm(deployment)
    };
    run_sweep(scaling, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp2::run_one;
    use hpcml_serving::{ModelSpec, ServingConfig};

    fn tiny_llm(deployment: Deployment) -> ScalingConfig {
        ScalingConfig {
            service_counts: vec![1, 2],
            strong_clients: 2,
            requests_per_client: 3,
            model: ModelSpec::sim_llama_8b(),
            deployment,
            // Moderate compression keeps the (scaled-up) real scheduling jitter in the
            // communication component well below the seconds of inference time.
            clock_scale: 200.0,
            max_tokens: 64,
            serving: ServingConfig::default(),
            seed: 5,
        }
    }

    #[test]
    fn inference_dominates_response_time() {
        let r = run_one(2, 2, &tiny_llm(Deployment::Remote));
        let inference = r.components["inference"].mean;
        let communication = r.components["communication"].mean;
        assert!(
            inference > 0.5,
            "llama-8b inference must take seconds, got {inference}"
        );
        assert!(
            inference > 10.0 * communication,
            "inference {inference} must dwarf communication {communication}"
        );
    }

    #[test]
    fn queueing_grows_when_services_are_scarce() {
        // 2 clients hammering 1 single-threaded service vs 2 services: the queueing
        // (service) component must shrink when more services are available.
        let scarce = run_one(2, 1, &tiny_llm(Deployment::Local));
        let ample = run_one(2, 2, &tiny_llm(Deployment::Local));
        assert!(
            scarce.components["service"].mean > ample.components["service"].mean,
            "service/queue time with 1 service ({:.3}s) must exceed 2 services ({:.3}s)",
            scarce.components["service"].mean,
            ample.components["service"].mean
        );
    }

    #[test]
    fn batching_amortises_the_scarce_service_queue() {
        // The same 2-clients-1-service crunch as above, but the service batches up to
        // 2 requests per backend dispatch: amortised decode cost must beat the
        // serial one-request-one-call path end to end.
        let unbatched = run_one(2, 1, &tiny_llm(Deployment::Local));
        let mut config = tiny_llm(Deployment::Local);
        config.serving = ServingConfig::default()
            .max_batch_size(2)
            .batch_latency_budget_secs(1.0);
        let batched = run_one(2, 1, &config);
        assert!(
            batched.total.mean < unbatched.total.mean,
            "batched RT ({:.3}s) must beat unbatched RT ({:.3}s)",
            batched.total.mean,
            unbatched.total.mean
        );
    }

    #[test]
    fn local_and_remote_inference_times_are_comparable() {
        let local = run_one(1, 1, &tiny_llm(Deployment::Local));
        let remote = run_one(1, 1, &tiny_llm(Deployment::Remote));
        let ratio = remote.components["inference"].mean / local.components["inference"].mean;
        assert!(
            (0.5..2.0).contains(&ratio),
            "inference times should be comparable, ratio {ratio}"
        );
    }
}
