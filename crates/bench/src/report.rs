//! Shared reporting helpers: every experiment binary prints the same row format.

use std::collections::BTreeMap;

use hpcml_sim::stats::Summary;

/// One printed row: a configuration label plus per-component summaries.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration label (e.g. `services=16 clients=16`).
    pub label: String,
    /// Per-component summaries, keyed by component name.
    pub components: BTreeMap<String, Summary>,
    /// Summary of the per-sample totals.
    pub total: Summary,
}

impl Row {
    /// Create a row.
    pub fn new(
        label: impl Into<String>,
        components: BTreeMap<String, Summary>,
        total: Summary,
    ) -> Self {
        Row {
            label: label.into(),
            components,
            total,
        }
    }
}

/// Render a table of rows with one column per component (mean ± std, seconds).
pub fn render_table(title: &str, component_order: &[&str], rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!("{:<28}", "configuration"));
    for c in component_order {
        out.push_str(&format!("{:>24}", format!("{c} (s)")));
    }
    out.push_str(&format!("{:>24}\n", "total (s)"));
    for row in rows {
        out.push_str(&format!("{:<28}", row.label));
        for c in component_order {
            match row.components.get(*c) {
                Some(s) => out.push_str(&format!(
                    "{:>24}",
                    format!("{:.4} ± {:.4}", s.mean, s.std_dev)
                )),
                None => out.push_str(&format!("{:>24}", "-")),
            }
        }
        out.push_str(&format!(
            "{:>24}\n",
            format!("{:.4} ± {:.4}", row.total.mean, row.total.std_dev)
        ));
    }
    out
}

/// Render rows as CSV (`label,component,mean,std,min,p50,p95,max,count`).
pub fn render_csv(rows: &[Row]) -> String {
    let mut out =
        String::from("configuration,component,mean_s,std_s,min_s,p50_s,p95_s,max_s,count\n");
    for row in rows {
        for (name, s) in &row.components {
            out.push_str(&format!(
                "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
                row.label, name, s.mean, s.std_dev, s.min, s.p50, s.p95, s.max, s.count
            ));
        }
        out.push_str(&format!(
            "{},total,{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
            row.label,
            row.total.mean,
            row.total.std_dev,
            row.total.min,
            row.total.p50,
            row.total.p95,
            row.total.max,
            row.total.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        let mut components = BTreeMap::new();
        components.insert("launch".to_string(), Summary::from_slice(&[2.0, 2.2, 1.8]));
        components.insert("init".to_string(), Summary::from_slice(&[30.0, 31.0, 29.0]));
        Row::new(
            "services=4",
            components,
            Summary::from_slice(&[32.0, 33.2, 30.8]),
        )
    }

    #[test]
    fn table_contains_all_columns_and_rows() {
        let t = render_table("Fig 3", &["launch", "init", "publish"], &[row()]);
        assert!(t.contains("Fig 3"));
        assert!(t.contains("services=4"));
        assert!(t.contains("launch"));
        assert!(t.contains("init"));
        // Missing component renders a dash.
        assert!(t.contains('-'));
        assert!(t.contains("total"));
    }

    #[test]
    fn csv_has_one_line_per_component_plus_total() {
        let csv = render_csv(&[row()]);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 1 + 2 + 1, "header + 2 components + total");
        assert!(lines[0].starts_with("configuration,component"));
        assert!(csv.contains("services=4,init"));
        assert!(csv.contains("services=4,total"));
    }
}
