//! Experiment 2 / Figs. 4–5: strong and weak scaling of service response time (RT).
//!
//! A Delta-profile pilot hosts NOOP services (local scenario) or talks to NOOP services
//! hosted on the R3 cloud platform (remote scenario). A set of client tasks each send a
//! fixed number of inference requests; the response time of every request is decomposed
//! into `communication`, `service` and `inference`. The paper sweeps:
//!
//! * strong scaling — 16 clients against 1, 2, 4, 8, 16 services;
//! * weak scaling — N clients against N services for N in 1, 2, 4, 8, 16.
//!
//! This module is also reused by experiment 3 (same topology, llama-8b model instead of
//! NOOP, so inference dominates instead of communication).

use std::collections::BTreeMap;
use std::time::Duration;

use hpcml_platform::PlatformId;
use hpcml_runtime::describe::{PilotDescription, ServiceDescription, TaskDescription, TaskKind};
use hpcml_runtime::session::Session;
use hpcml_serving::{ModelSpec, ServingConfig};
use hpcml_sim::clock::ClockSpec;
use hpcml_sim::dist::Dist;
use hpcml_sim::stats::Summary;

use crate::report::Row;

/// Where the services run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// Services run on the same Delta pilot as the client tasks.
    Local,
    /// Services run on the remote R3 cloud host.
    Remote,
}

impl Deployment {
    /// Short label used in row names.
    pub fn label(self) -> &'static str {
        match self {
            Deployment::Local => "local",
            Deployment::Remote => "remote",
        }
    }
}

/// Which scaling mode a sweep uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scaling {
    /// Fixed number of clients (16 in the paper), growing number of services.
    Strong,
    /// Clients and services grow together (N/N).
    Weak,
}

/// Configuration of one response/inference-time scaling run.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Service counts to sweep over.
    pub service_counts: Vec<usize>,
    /// Number of clients for strong scaling (the paper uses 16).
    pub strong_clients: usize,
    /// Requests sent by each client.
    pub requests_per_client: u32,
    /// Model hosted by the services.
    pub model: ModelSpec,
    /// Local or remote service deployment.
    pub deployment: Deployment,
    /// Clock compression factor (use < 1 to *dilate* time for sub-millisecond
    /// communication measurements, > 1 to compress long inference runs).
    pub clock_scale: f64,
    /// Generation budget per request (relevant for LLM models only).
    pub max_tokens: u32,
    /// Serving-plane shape for every service in the sweep: replicas, batch size,
    /// latency budget, shedding. The default (1 replica, batch 1) is the paper's
    /// one-request-one-call service.
    pub serving: ServingConfig,
    /// RNG seed.
    pub seed: u64,
}

impl ScalingConfig {
    /// Paper-parameterised NOOP configuration (1024 requests per client).
    pub fn paper_noop(deployment: Deployment) -> Self {
        ScalingConfig {
            service_counts: vec![1, 2, 4, 8, 16],
            strong_clients: 16,
            requests_per_client: 1024,
            model: ModelSpec::noop(),
            deployment,
            // Dilate time 4x so that sub-millisecond network latencies dominate the
            // (scaled-down) real scheduling jitter.
            clock_scale: 0.25,
            max_tokens: 1,
            serving: ServingConfig::default(),
            seed: 42,
        }
    }

    /// Reduced NOOP configuration used by default (128 requests per client).
    pub fn quick_noop(deployment: Deployment) -> Self {
        let mut c = Self::paper_noop(deployment);
        c.requests_per_client = 128;
        c
    }

    /// Paper-parameterised llama-8b configuration (experiment 3).
    pub fn paper_llm(deployment: Deployment) -> Self {
        ScalingConfig {
            service_counts: vec![1, 2, 4, 8, 16],
            strong_clients: 16,
            requests_per_client: 64,
            model: ModelSpec::sim_llama_8b(),
            deployment,
            clock_scale: 800.0,
            max_tokens: 128,
            serving: ServingConfig::default(),
            seed: 42,
        }
    }

    /// Reduced llama-8b configuration used by default.
    pub fn quick_llm(deployment: Deployment) -> Self {
        let mut c = Self::paper_llm(deployment);
        c.requests_per_client = 8;
        c.service_counts = vec![1, 2, 4, 8, 16];
        c
    }
}

/// Result of one `(clients, services)` configuration.
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// Number of client tasks.
    pub clients: usize,
    /// Number of service instances.
    pub services: usize,
    /// Deployment scenario.
    pub deployment: Deployment,
    /// Per-component response summaries (`communication`, `service`, `inference`).
    pub components: BTreeMap<String, Summary>,
    /// Summary of total response time per request.
    pub total: Summary,
}

impl ScalingResult {
    /// Convert to a printable row.
    pub fn to_row(&self) -> Row {
        Row::new(
            format!(
                "{} clients={} services={}",
                self.deployment.label(),
                self.clients,
                self.services
            ),
            self.components.clone(),
            self.total,
        )
    }
}

/// Run one `(clients, services)` configuration.
pub fn run_one(clients: usize, services: usize, config: &ScalingConfig) -> ScalingResult {
    let session = Session::builder(format!(
        "exp2-{}-{}x{}",
        config.deployment.label(),
        clients,
        services
    ))
    .platform(PlatformId::Delta)
    .clock(ClockSpec::scaled(config.clock_scale))
    .seed(config.seed)
    .build()
    .expect("session");

    // The paper's experiment 2/3 pilot: 256 cores / 16 GPUs => 4 Delta nodes.
    session
        .submit_pilot(
            PilotDescription::new(PlatformId::Delta)
                .nodes(4)
                .runtime_secs(7200.0),
        )
        .expect("pilot");

    // Bring the services up.
    let service_names: Vec<String> = (0..services).map(|i| format!("svc-{i:03}")).collect();
    let svc_handles: Vec<_> = service_names
        .iter()
        .map(|name| {
            let mut desc = ServiceDescription::new(name.clone()).model(config.model.clone());
            desc = if config.model.is_noop() {
                desc.cores(1)
            } else {
                desc.gpus(1)
            };
            desc = desc.serving(config.serving.clone());
            if config.deployment == Deployment::Remote {
                desc = desc.remote(PlatformId::R3Cloud);
            }
            session.submit_service(desc).expect("submit service")
        })
        .collect();
    for h in &svc_handles {
        h.wait_ready_timeout(Duration::from_secs(300))
            .expect("service ready");
    }

    // Launch the clients; each spreads its requests round-robin over all services.
    let client_handles: Vec<_> = (0..clients)
        .map(|i| {
            session
                .submit_task(
                    TaskDescription::new(format!("client-{i:03}"))
                        .kind(TaskKind::InferenceClient {
                            selector: hpcml_runtime::describe::ServiceSelector::Named(
                                service_names.clone(),
                            ),
                            requests: config.requests_per_client,
                            prompt_words: 48,
                            max_tokens: config.max_tokens,
                            think_time_secs: Dist::constant(0.0),
                        })
                        .cores(1),
                )
                .expect("submit client task")
        })
        .collect();
    for h in &client_handles {
        h.wait_done_timeout(Duration::from_secs(900))
            .expect("client done");
    }

    let metrics = session.metrics();
    let result = ScalingResult {
        clients,
        services,
        deployment: config.deployment,
        components: metrics.response_summaries(),
        total: metrics.response_total_summary(),
    };
    session.close();
    result
}

/// Run a strong- or weak-scaling sweep.
pub fn run_sweep(scaling: Scaling, config: &ScalingConfig) -> Vec<ScalingResult> {
    config
        .service_counts
        .iter()
        .map(|&services| {
            let clients = match scaling {
                Scaling::Strong => config.strong_clients,
                Scaling::Weak => services,
            };
            run_one(clients, services, config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(deployment: Deployment) -> ScalingConfig {
        ScalingConfig {
            service_counts: vec![1, 2],
            strong_clients: 4,
            requests_per_client: 12,
            model: ModelSpec::noop(),
            deployment,
            clock_scale: 0.5,
            max_tokens: 1,
            serving: ServingConfig::default(),
            seed: 3,
        }
    }

    #[test]
    fn local_noop_rt_is_dominated_by_communication() {
        let r = run_one(2, 2, &tiny(Deployment::Local));
        assert_eq!(r.components["communication"].count, 24);
        assert!(
            r.components["inference"].mean < 1e-6,
            "NOOP inference must be ~0"
        );
        assert!(
            r.components["communication"].mean > r.components["service"].mean,
            "communication {:.6} must dominate service {:.6}",
            r.components["communication"].mean,
            r.components["service"].mean
        );
        // Local latency is sub-millisecond.
        assert!(
            r.total.mean < 0.01,
            "local NOOP RT should be well below 10 ms, got {}",
            r.total.mean
        );
        assert!(r.to_row().label.contains("local"));
    }

    #[test]
    fn remote_noop_rt_exceeds_local() {
        let local = run_one(2, 2, &tiny(Deployment::Local));
        let remote = run_one(2, 2, &tiny(Deployment::Remote));
        assert!(
            remote.components["communication"].mean > 2.0 * local.components["communication"].mean,
            "remote communication {:.6} must clearly exceed local {:.6}",
            remote.components["communication"].mean,
            local.components["communication"].mean
        );
    }

    #[test]
    fn batched_serving_config_flows_through_the_sweep() {
        let mut config = tiny(Deployment::Local);
        config.serving = ServingConfig::default()
            .max_batch_size(4)
            .batch_latency_budget_secs(0.001);
        let r = run_one(2, 1, &config);
        assert_eq!(r.components["communication"].count, 24);
    }

    #[test]
    fn weak_scaling_sweep_runs_all_configurations() {
        let config = tiny(Deployment::Local);
        let results = run_sweep(Scaling::Weak, &config);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].clients, 1);
        assert_eq!(results[1].clients, 2);
        let strong = run_sweep(Scaling::Strong, &config);
        assert!(strong.iter().all(|r| r.clients == 4));
    }
}
