//! Criterion bench for experiment 2 (Figs. 4–5): local vs remote NOOP response time at
//! a reduced request count. The full sweeps are produced by the `exp2_response_*`
//! binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hpcml_bench::exp2::{run_one, Deployment, ScalingConfig};
use hpcml_serving::{ModelSpec, ServingConfig};

fn config(deployment: Deployment) -> ScalingConfig {
    ScalingConfig {
        service_counts: vec![],
        strong_clients: 4,
        requests_per_client: 32,
        model: ModelSpec::noop(),
        deployment,
        clock_scale: 1.0,
        max_tokens: 1,
        serving: ServingConfig::default(),
        seed: 42,
    }
}

fn bench_response_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp2_noop_response");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for deployment in [Deployment::Local, Deployment::Remote] {
        group.bench_with_input(
            BenchmarkId::from_parameter(deployment.label()),
            &deployment,
            |b, &d| {
                let cfg = config(d);
                b.iter(|| {
                    let r = run_one(4, 4, &cfg);
                    assert_eq!(r.components["communication"].count, 4 * 32);
                    r
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_response_time);
criterion_main!(benches);
