//! Comm-fabric benchmark family: zero-copy fan-out vs per-subscriber cloning,
//! batched vs singleton request round trips, and registry lookup under
//! registration churn.
//!
//! Two kinds of measurement share one binary:
//!
//! * **Real-time** points (`comm/fanout/*`, `comm/registry/*`) measure nanoseconds of
//!   CPU work per operation — the fan-out comparison is allocation-bound, so the
//!   encode-once/clone-each ratio holds on any host regardless of core count.
//! * **Virtual-time** points (`comm/batch/*`) measure the deterministic link-pricing
//!   model on the scaled clock, like the serving-plane bench: the batched/singleton
//!   ratio is a property of the coalescing rule, not of the machine.
//!
//! All results print in the harness line format (`name  time: [...]`) consumed by
//! `scripts/bench_guard.sh` and recorded in `BENCH_comm.json`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use hpcml_comm::link::Link;
use hpcml_comm::message::Message;
use hpcml_comm::pubsub::Publisher;
use hpcml_comm::registry::EndpointRegistry;
use hpcml_comm::reqrep::ReqRepServer;
use hpcml_platform::network::LatencyProfile;
use hpcml_sim::clock::ClockSpec;

/// Virtual seconds per real second for the virtual-time points. Low enough that
/// real scheduling jitter (tens of µs) stays small against the 500 ms virtual hops.
const CLOCK_SCALE: f64 = 1_000.0;

/// Print one result in the bench harness line format (same shape as the criterion
/// shim: `name  time: [  value unit/iter]  samples: N`).
fn report(name: &str, secs_per_iter: f64, samples: usize) {
    let (scaled, unit) = if secs_per_iter < 1e-6 {
        (secs_per_iter * 1e9, "ns")
    } else if secs_per_iter < 1e-3 {
        (secs_per_iter * 1e6, "µs")
    } else {
        (secs_per_iter * 1e3, "ms")
    };
    println!("{name:<48} time: [{scaled:9.2} {unit}/iter]  samples: {samples}");
}

/// A representative state-update message: the header set a runtime state transition
/// carries (entity, states, placement, stamps) plus a ~1 KiB body.
fn update_message() -> Message {
    Message::new("state.task.running", "state.update")
        .with_header("entity", "task.000042")
        .with_header("state", "AGENT_EXECUTING")
        .with_header("prev_state", "AGENT_SCHEDULING")
        .with_header("pilot", "pilot.0001")
        .with_header("node", "frontier-c12n07")
        .with_header("session", "session.bench")
        .with_f64_header("at", 123.456)
        .with_f64_header("queued_at", 122.789)
        .with_text(&"task state payload ".repeat(54))
}

/// Zero-copy fan-out: encode once, hand the same frozen frame to all N subscribers.
fn bench_fanout_encode_once(subscribers: usize, iters: usize) -> f64 {
    let publisher = Publisher::new();
    let subs: Vec<_> = (0..subscribers)
        .map(|_| publisher.subscribe(&["state."]))
        .collect();
    let msg = update_message();
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let t0 = Instant::now();
        let delivered = publisher.publish(&msg);
        total += t0.elapsed();
        assert_eq!(delivered, subscribers);
        // Drain outside the timed window so queue growth never skews later iterations.
        for sub in &subs {
            sub.drain_frames();
        }
    }
    total.as_secs_f64() / iters as f64
}

/// The pre-fabric baseline, reconstructed: deep-clone the `Message` once per
/// subscriber and send the owned copies — N clones instead of one encode.
fn bench_fanout_clone_each(subscribers: usize, iters: usize) -> f64 {
    let channels: Vec<_> = (0..subscribers)
        .map(|_| crossbeam::channel::unbounded::<Message>())
        .collect();
    let msg = update_message();
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let t0 = Instant::now();
        for (tx, _) in &channels {
            tx.send(msg.clone()).unwrap();
        }
        total += t0.elapsed();
        for (_, rx) in &channels {
            while rx.try_recv().is_ok() {}
        }
    }
    total.as_secs_f64() / iters as f64
}

/// Registry lookups racing registration churn on the other shards.
fn bench_registry_lookup_churn(iters: usize) -> f64 {
    let registry = Arc::new(EndpointRegistry::new());
    let servers: Vec<ReqRepServer> = (0..64)
        .map(|i| ReqRepServer::new(format!("service.svc-{i:03}")))
        .collect();
    for s in &servers {
        registry
            .register(s.name().to_string(), s.handle(), BTreeMap::new())
            .unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let name = format!("service.churn-{}", i % 32);
                let server = ReqRepServer::new(name.clone());
                let _ = registry.register(name.clone(), server.handle(), BTreeMap::new());
                let _ = registry.unregister(&name);
                i += 1;
                thread::yield_now();
            }
        })
    };
    let t0 = Instant::now();
    for i in 0..iters {
        let name = format!("service.svc-{:03}", i % 64);
        assert!(registry.lookup(&name).is_some());
    }
    let per_iter = t0.elapsed().as_secs_f64() / iters as f64;
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
    per_iter
}

/// Virtual response time per request for `n` requests over a 500 ms hop, sent either
/// one round trip at a time or as one coalesced batch.
fn bench_roundtrip(n: usize, batched: bool) -> f64 {
    let clock = ClockSpec::scaled(CLOCK_SCALE).build();
    let profile = LatencyProfile::normal_ms(500.0, 0.0).with_per_kib_ms(1.0);
    let link = Link::new("bench", Arc::clone(&clock), profile, 17);
    let server = ReqRepServer::new("svc.rt");
    let client = server.client(link);
    let serve = thread::spawn(move || {
        let mut served = 0;
        while served < n {
            let batch = server
                .recv_batch(n, Duration::from_secs(30))
                .expect("bench server");
            for (msg, r) in batch {
                served += 1;
                r.reply(Message::new(msg.topic, "reply").with_text("ok"))
                    .unwrap();
            }
        }
    });
    let t0 = clock.now();
    if batched {
        let reqs: Vec<Message> = (0..n)
            .map(|i| Message::new("svc.rt", "req").with_text(&i.to_string()))
            .collect();
        let replies = client
            .request_batch(reqs, Duration::from_secs(30))
            .expect("batched replies");
        assert_eq!(replies.len(), n);
    } else {
        for i in 0..n {
            client
                .request(Message::new("svc.rt", "req").with_text(&i.to_string()))
                .expect("singleton reply");
        }
    }
    let elapsed = clock.now().since(t0).as_secs_f64();
    serve.join().unwrap();
    elapsed / n as f64
}

fn main() {
    // Fan-out sweep: the encode-once path must beat the clone-per-subscriber
    // baseline, and the gap must widen with subscriber count.
    const FANOUT_ITERS: usize = 2_000;
    for subscribers in [1usize, 8, 64] {
        report(
            &format!("comm/fanout/encode_once/{subscribers}"),
            bench_fanout_encode_once(subscribers, FANOUT_ITERS),
            FANOUT_ITERS,
        );
    }
    for subscribers in [1usize, 8, 64] {
        report(
            &format!("comm/fanout/clone_each/{subscribers}"),
            bench_fanout_clone_each(subscribers, FANOUT_ITERS),
            FANOUT_ITERS,
        );
    }

    // Batched vs singleton round trips, priced on the virtual clock: 16 requests over
    // a 500 ms hop cost one latency sample per direction when coalesced, 16 when not.
    const BATCH_N: usize = 16;
    report(
        "comm/batch/roundtrip/singleton",
        bench_roundtrip(BATCH_N, false),
        BATCH_N,
    );
    report(
        "comm/batch/roundtrip/batched_16",
        bench_roundtrip(BATCH_N, true),
        BATCH_N,
    );

    // Registry lookups stay fast while churn hammers registration on other names.
    const LOOKUP_ITERS: usize = 50_000;
    report(
        "comm/registry/lookup_churn",
        bench_registry_lookup_churn(LOOKUP_ITERS),
        LOOKUP_ITERS,
    );
}
