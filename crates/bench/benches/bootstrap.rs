//! Criterion bench for experiment 1 (Fig. 3): service bootstrap at increasing
//! concurrency, on a reduced instance sweep so `cargo bench` stays fast. The full paper
//! sweep is produced by the `exp1_bootstrap` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hpcml_bench::exp1::{run_one, BootstrapConfig};
use hpcml_serving::ModelSpec;

fn bench_bootstrap(c: &mut Criterion) {
    let config = BootstrapConfig {
        instance_counts: vec![],
        clock_scale: 20_000.0,
        seed: 42,
        model: ModelSpec::sim_llama_8b(),
    };
    let mut group = c.benchmark_group("exp1_bootstrap");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for &instances in &[1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(instances),
            &instances,
            |b, &n| {
                b.iter(|| {
                    let result = run_one(n, &config);
                    assert_eq!(result.components["init"].count, n);
                    result
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bootstrap);
criterion_main!(benches);
