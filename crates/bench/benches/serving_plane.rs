//! Serving-plane benchmark: batched vs unbatched throughput, and overload tail
//! latency with shedding on vs off.
//!
//! Unlike the hot-path benches this measures **virtual** durations — the simulation's
//! deterministic model of inference time — and prints them in the harness line format
//! (`name  time: [...]`) so `scripts/bench_guard.sh` can parse, record and guard them
//! in `BENCH_serving.json`. Virtual measurements are immune to host-load noise: the
//! batched/unbatched ratio is a property of the serving plane's cost model, not of the
//! machine the bench runs on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use hpcml_comm::link::Link;
use hpcml_comm::reqrep::ReqRepServer;
use hpcml_serving::protocol::{KIND_INFER_REPLY, KIND_SHED};
use hpcml_serving::service::{inference_request_message, inference_request_message_with_deadline};
use hpcml_serving::{
    null_sink, InferenceRequest, InferenceService, ModelHost, ModelSpec, ServingConfig,
};
use hpcml_sim::clock::{ClockSpec, SharedClock};

/// Compression factor: virtual seconds per real second. High enough that a full run
/// finishes in a fraction of a second of real time, low enough that real scheduling
/// jitter (tens of µs) stays small against the virtual batching budgets — at 50 000x,
/// 20 µs of thread wake-up latency would already be a full virtual second.
const CLOCK_SCALE: f64 = 2_000.0;

/// Print one result in the bench harness line format (same shape as the criterion
/// shim: `name  time: [  value unit/iter]  samples: N`).
fn report(name: &str, virtual_secs: f64, samples: usize) {
    let (scaled, unit) = if virtual_secs < 1e-6 {
        (virtual_secs * 1e9, "ns")
    } else if virtual_secs < 1e-3 {
        (virtual_secs * 1e6, "µs")
    } else {
        (virtual_secs * 1e3, "ms")
    };
    println!("{name:<48} time: [{scaled:9.2} {unit}/iter]  samples: {samples}");
}

struct Served {
    /// Virtual response time of each request answered with an inference reply.
    response_secs: Vec<f64>,
    /// Requests shed by admission control.
    shed: usize,
    /// Virtual wall time of the whole run.
    elapsed_secs: f64,
}

/// Stand up one service and drive it with `clients` threads sending
/// `requests_per_client` sequential requests each.
fn drive(
    config: ServingConfig,
    clients: usize,
    requests_per_client: usize,
    deadline_secs: Option<f64>,
    seed: u64,
) -> Served {
    let clock: SharedClock = ClockSpec::scaled(CLOCK_SCALE).build();
    let replicas = config.replicas;
    let hosts: Vec<Arc<ModelHost>> = (0..replicas)
        .map(|i| {
            let h = Arc::new(ModelHost::from_spec(
                ModelSpec::sim_llama_8b(),
                Arc::clone(&clock),
                seed + i as u64,
            ));
            h.load();
            h
        })
        .collect();
    let service = Arc::new(InferenceService::with_config(
        "svc.bench",
        hosts,
        Arc::clone(&clock),
        seed + 100,
        config,
        null_sink(),
    ));
    let endpoint = ReqRepServer::new("svc.bench");
    let client = endpoint.client(Link::instant(Arc::clone(&clock)));
    let stop = Arc::new(AtomicBool::new(false));
    let (svc, stop2) = (Arc::clone(&service), Arc::clone(&stop));
    let serve_thread = thread::spawn(move || svc.serve(&endpoint, &stop2));

    // Calibrate the admission estimate with one uncontended request so deadline
    // shedding has a live service-time EWMA from the first flood request on.
    let warm = InferenceRequest::new("w ".repeat(40), 64);
    let _ = client.request(inference_request_message("svc.bench", &warm));

    let t0 = clock.now();
    let workers: Vec<thread::JoinHandle<(Vec<f64>, usize)>> = (0..clients)
        .map(|c| {
            let client = client.clone();
            let clock = Arc::clone(&clock);
            thread::spawn(move || {
                let mut times = Vec::new();
                let mut shed = 0usize;
                for _ in 0..requests_per_client {
                    let req = InferenceRequest::new("q ".repeat(40), 64)
                        .from_client(format!("bench.{c}"));
                    let msg = match deadline_secs {
                        Some(d) => inference_request_message_with_deadline("svc.bench", &req, d),
                        None => inference_request_message("svc.bench", &req),
                    };
                    let sent = clock.now();
                    let reply = client.request(msg).expect("bench service reply");
                    let rt = clock.now().since(sent).as_secs_f64();
                    match reply.kind.as_str() {
                        KIND_INFER_REPLY => times.push(rt),
                        KIND_SHED => shed += 1,
                        other => panic!("unexpected reply kind {other}"),
                    }
                }
                (times, shed)
            })
        })
        .collect();
    let mut response_secs = Vec::new();
    let mut shed = 0usize;
    for w in workers {
        let (times, s) = w.join().expect("bench client");
        response_secs.extend(times);
        shed += s;
    }
    let elapsed_secs = clock.now().since(t0).as_secs_f64();
    stop.store(true, Ordering::Release);
    serve_thread.join().expect("serve loop");
    Served {
        response_secs,
        shed,
        elapsed_secs,
    }
}

fn p99(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if samples.is_empty() {
        return 0.0;
    }
    let idx = ((samples.len() as f64) * 0.99).ceil() as usize;
    samples[idx.min(samples.len()).saturating_sub(1)]
}

fn main() {
    // Throughput: 8 concurrent clients, 4 requests each, one replica. The unbatched
    // service serialises all 32 inferences; continuous batching amortises decode cost
    // across up to 8 in-flight requests. Reported value: virtual seconds per request.
    let unbatched = drive(ServingConfig::default(), 8, 4, None, 1);
    report(
        "serving/unbatched",
        unbatched.elapsed_secs / unbatched.response_secs.len().max(1) as f64,
        unbatched.response_secs.len(),
    );
    let batched = drive(
        // A generous 1 s budget (vs ~2.7 s inference) lets every 8-wide wave fill
        // before dispatch; throughput is dominated by batch amortisation, not the
        // wait.
        ServingConfig::default()
            .max_batch_size(8)
            .batch_latency_budget_secs(1.0),
        8,
        4,
        None,
        1,
    );
    report(
        "serving/batched/8",
        batched.elapsed_secs / batched.response_secs.len().max(1) as f64,
        batched.response_secs.len(),
    );

    // Overload tail: 24 one-shot clients flood a single unbatched-width replica pool
    // (batch 4) at once, each with a 10 s deadline. With shedding on, admission
    // rejects what it cannot serve in time and the admitted tail stays near the
    // deadline; with shedding off, the queue grows without bound and the p99 response
    // time is the whole backlog. Reported value: p99 virtual response time.
    let overload_cfg = ServingConfig::default()
        .max_batch_size(4)
        .batch_latency_budget_secs(0.05)
        .queue_capacity(64);
    let mut shed_on = drive(
        overload_cfg.clone().shed_deadlines(true),
        24,
        1,
        Some(10.0),
        2,
    );
    report(
        "serving/overload_p99/shed_on",
        p99(&mut shed_on.response_secs),
        shed_on.response_secs.len(),
    );
    assert!(
        shed_on.shed > 0,
        "overload with deadlines must shed some of 24 requests"
    );
    let mut shed_off = drive(overload_cfg.shed_deadlines(false), 24, 1, Some(10.0), 2);
    report(
        "serving/overload_p99/shed_off",
        p99(&mut shed_off.response_secs),
        shed_off.response_secs.len(),
    );
    assert_eq!(shed_off.shed, 0, "shedding disabled must admit everything");
}
