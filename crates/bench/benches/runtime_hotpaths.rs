//! Micro-benchmarks of the runtime's hot paths: message codec, endpoint registry
//! lookup, scheduler allocate/release, NOOP request round trip, and statistics
//! summarisation. These are the operations that sit on the critical path of every
//! figure in the paper's evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use hpcml_comm::link::Link;
use hpcml_comm::message::Message;
use hpcml_comm::registry::EndpointRegistry;
use hpcml_comm::reqrep::ReqRepServer;
use hpcml_platform::batch::{AllocationRequest, BatchSystem};
use hpcml_platform::resources::ResourceRequest;
use hpcml_platform::PlatformId;
use hpcml_runtime::scheduler::{Priority, Scheduler};
use hpcml_sim::clock::ClockSpec;
use hpcml_sim::stats::Summary;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn bench_codec(c: &mut Criterion) {
    let msg = Message::new("service.llm-0", "inference.request")
        .with_header("client", "task.000123")
        .with_f64_header("sent_at", 123.456)
        .with_text(&"low dose radiation effects on cell morphology ".repeat(8));
    c.bench_function("codec/encode", |b| b.iter(|| black_box(msg.encode())));
    let encoded = msg.encode();
    c.bench_function("codec/decode", |b| {
        b.iter(|| Message::decode(black_box(encoded.clone())).unwrap())
    });
}

fn bench_registry(c: &mut Criterion) {
    let registry = EndpointRegistry::new();
    let servers: Vec<ReqRepServer> = (0..64).map(|i| ReqRepServer::new(format!("service.svc-{i:03}"))).collect();
    for s in &servers {
        registry.register(s.name().to_string(), s.handle(), BTreeMap::new()).unwrap();
    }
    c.bench_function("registry/lookup_64", |b| {
        b.iter(|| registry.lookup(black_box("service.svc-031")).unwrap())
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let batch = BatchSystem::new(PlatformId::Delta.spec(), ClockSpec::Manual.build(), 1);
    let alloc = batch.submit(AllocationRequest::nodes(4)).unwrap();
    let scheduler = Scheduler::new(alloc);
    let req = ResourceRequest::cores(4);
    c.bench_function("scheduler/allocate_release", |b| {
        b.iter(|| {
            let slot = scheduler.allocate(&req, Priority::Task, Duration::from_secs(1)).unwrap();
            scheduler.release(&slot).unwrap();
        })
    });
}

fn bench_noop_roundtrip(c: &mut Criterion) {
    let clock = ClockSpec::scaled(1000.0).build();
    let server = ReqRepServer::new("svc.bench");
    let client = server.client(Link::instant(Arc::clone(&clock)));
    let server_thread = std::thread::spawn(move || {
        while let Ok((msg, responder)) = server.recv_timeout(Duration::from_secs(5)) {
            if msg.kind == "stop" {
                let _ = responder.reply(Message::new("svc.bench", "bye"));
                break;
            }
            let _ = responder.reply(Message::new("svc.bench", "reply"));
        }
    });
    c.bench_function("reqrep/noop_roundtrip", |b| {
        b.iter(|| client.request(Message::new("svc.bench", "ping")).unwrap())
    });
    let _ = client.request(Message::new("svc.bench", "stop"));
    let _ = server_thread.join();
}

fn bench_stats(c: &mut Criterion) {
    let samples: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.37).sin().abs()).collect();
    c.bench_function("stats/summary_4096", |b| b.iter(|| Summary::from_slice(black_box(&samples))));
}

criterion_group!(
    benches,
    bench_codec,
    bench_registry,
    bench_scheduler,
    bench_noop_roundtrip,
    bench_stats
);
criterion_main!(benches);
