//! Micro-benchmarks of the runtime's hot paths: message codec, endpoint registry
//! lookup, scheduler allocate/release, NOOP request round trip, and statistics
//! summarisation. These are the operations that sit on the critical path of every
//! figure in the paper's evaluation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use hpcml_comm::link::Link;
use hpcml_comm::message::Message;
use hpcml_comm::registry::EndpointRegistry;
use hpcml_comm::reqrep::ReqRepServer;
use hpcml_platform::batch::{AllocationRequest, BatchSystem};
use hpcml_platform::resources::ResourceRequest;
use hpcml_platform::PlatformId;
use hpcml_runtime::scheduler::{Priority, Scheduler};
use hpcml_sim::clock::ClockSpec;
use hpcml_sim::stats::Summary;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn bench_codec(c: &mut Criterion) {
    let msg = Message::new("service.llm-0", "inference.request")
        .with_header("client", "task.000123")
        .with_f64_header("sent_at", 123.456)
        .with_text(&"low dose radiation effects on cell morphology ".repeat(8));
    c.bench_function("codec/encode", |b| b.iter(|| black_box(msg.encode())));
    let encoded = msg.encode();
    // `Bytes::clone` is a reference-count bump, so the owned-decode bench measures
    // decoding, not buffer duplication.
    c.bench_function("codec/decode", |b| {
        b.iter(|| Message::decode(black_box(encoded.clone())).unwrap())
    });
    // Borrowed decode: no clone, no per-field allocation.
    c.bench_function("codec/decode_view", |b| {
        b.iter(|| Message::decode_view(black_box(&encoded)).unwrap())
    });
}

fn bench_registry(c: &mut Criterion) {
    let registry = EndpointRegistry::new();
    let servers: Vec<ReqRepServer> = (0..64)
        .map(|i| ReqRepServer::new(format!("service.svc-{i:03}")))
        .collect();
    for s in &servers {
        registry
            .register(s.name().to_string(), s.handle(), BTreeMap::new())
            .unwrap();
    }
    c.bench_function("registry/lookup_64", |b| {
        b.iter(|| registry.lookup(black_box("service.svc-031")).unwrap())
    });
}

/// A Frontier-shaped platform spec widened to `nodes`, so the sweep can exceed the
/// catalog's node counts without touching the catalog.
fn wide_spec(nodes: usize) -> hpcml_platform::PlatformSpec {
    let mut spec = PlatformId::Frontier.spec();
    spec.num_nodes = nodes;
    spec
}

/// The acceptance criterion of the indexed allocator: allocate+release latency must be
/// flat (within 2×) from toy pilots to thousand-node pilots, where the old
/// linear-scan placement grew with node count.
fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/allocate_release");
    for nodes in [4usize, 256, 4096] {
        let batch = BatchSystem::new(wide_spec(nodes), ClockSpec::Manual.build(), 1);
        let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
        // Pre-fill every node to just over half so placement works against realistic
        // mixed occupancy (an empty allocation would let even a linear scan stop at
        // node 0). Requesting cores/2 + 1 means a second such slot can never pack onto
        // an already-touched node, so each of the `nodes` slots lands on a distinct
        // node and no node is left idle or full.
        let spec = alloc.node_spec();
        let half_fill = ResourceRequest::cores(spec.cores / 2 + 1).unwrap();
        let held: Vec<_> = (0..nodes)
            .map(|_| alloc.allocate_slot(&half_fill).unwrap())
            .collect();
        assert_eq!(alloc.idle_nodes(), 0, "pre-fill must touch every node");
        let scheduler = Scheduler::new(alloc);
        let req = ResourceRequest::cores(4).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                let slot = scheduler
                    .allocate(&req, Priority::Task, Duration::from_secs(1))
                    .unwrap();
                scheduler.release(&slot).unwrap();
            })
        });
        for slot in &held {
            scheduler.allocation().release_slot(slot).unwrap();
        }
    }
    group.finish();
}

/// Gang placement cost must be O(gang size), independent of the allocation's total
/// node count: a fixed 2-node gang claimed against a half-occupied allocation must be
/// flat (within 2×) across the same 4 → 4096 node sweep as `allocate_release`.
fn bench_gang_allocate(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/gang_allocate");
    for nodes in [4usize, 256, 4096] {
        let batch = BatchSystem::new(wide_spec(nodes), ClockSpec::Manual.build(), 1);
        let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
        // Occupy half the nodes with single-node slots so the idle bucket is a real
        // subset (claiming from an all-idle allocation would hide index bookkeeping).
        let spec = alloc.node_spec();
        let half_fill = ResourceRequest::cores(spec.cores / 2 + 1).unwrap();
        let held: Vec<_> = (0..nodes / 2)
            .map(|_| alloc.allocate_slot(&half_fill).unwrap())
            .collect();
        assert_eq!(alloc.idle_nodes(), nodes - nodes / 2);
        let scheduler = Scheduler::new(alloc);
        // Whole-node ranks-per-node shape: all cores and GPUs of each member node.
        let req = ResourceRequest {
            cores: spec.cores,
            gpus: spec.gpus,
            mem_gib: 0.0,
            nodes: 2,
            packing: None,
        };
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                let slot = scheduler
                    .allocate(&req, Priority::Task, Duration::from_secs(1))
                    .unwrap();
                scheduler.release(&slot).unwrap();
            })
        });
        for slot in &held {
            scheduler.allocation().release_slot(slot).unwrap();
        }
    }
    group.finish();
}

/// Partial-packing gang placement must stay O(gang size + GPU levels), independent
/// of the allocation's total node count: a 2-node gang of *half-node members*
/// best-fit onto a 50%-loaded allocation (every node carries a resident slot, so no
/// node is idle and every claim goes through `find_fit`, not the idle bucket) must
/// be flat (within 2×) across the same 4 → 4096 node sweep, guarded like
/// `gang_allocate`.
fn bench_gang_partial(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/gang_partial");
    for nodes in [4usize, 256, 4096] {
        let batch = BatchSystem::new(wide_spec(nodes), ClockSpec::Manual.build(), 1);
        let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
        let spec = alloc.node_spec();
        // Load every node to just over half (cores/2 + 1 cannot pack twice onto one
        // node), so the allocation is ~50% occupied with zero idle nodes and the
        // member share below must co-locate beside a resident on every claim.
        let half_fill = ResourceRequest::cores(spec.cores / 2 + 1).unwrap();
        let held: Vec<_> = (0..nodes)
            .map(|_| alloc.allocate_slot(&half_fill).unwrap())
            .collect();
        assert_eq!(alloc.idle_nodes(), 0, "load must touch every node");
        let scheduler = Scheduler::new(alloc);
        // Half-node member share (what fits beside the resident), Partial packing by
        // default: every member lands co-resident.
        let req = ResourceRequest::cores(spec.cores / 2 - 1)
            .unwrap()
            .with_nodes(2);
        let probe = scheduler
            .allocate(&req, Priority::Task, Duration::from_secs(1))
            .unwrap();
        assert_eq!(probe.partial_nodes(), 2, "members must be co-resident");
        scheduler.release(&probe).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                let slot = scheduler
                    .allocate(&req, Priority::Task, Duration::from_secs(1))
                    .unwrap();
                scheduler.release(&slot).unwrap();
            })
        });
        for slot in &held {
            scheduler.allocation().release_slot(slot).unwrap();
        }
    }
    group.finish();
}

/// Backfill-reservation cycle cost must be O(gang size + pinned nodes), independent
/// of the allocation's total node count: open a drain (pinning the two idle nodes),
/// place the gang through the reservation, release it — flat (within 2×) across the
/// same 4 → 4096 node sweep, guarded like `gang_allocate`.
fn bench_gang_backfill(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/gang_backfill");
    for nodes in [4usize, 256, 4096] {
        let batch = BatchSystem::new(wide_spec(nodes), ClockSpec::Manual.build(), 1);
        let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
        let spec = alloc.node_spec();
        // Occupy all but two nodes so the reservation works against a full index and
        // must pin exactly the two idle nodes each cycle.
        let half_fill = ResourceRequest::cores(spec.cores / 2 + 1).unwrap();
        let held: Vec<_> = (0..nodes - 2)
            .map(|_| alloc.allocate_slot(&half_fill).unwrap())
            .collect();
        assert_eq!(alloc.idle_nodes(), 2);
        let req = ResourceRequest {
            cores: spec.cores,
            gpus: spec.gpus,
            mem_gib: 0.0,
            nodes: 2,
            packing: None,
        };
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                let id = alloc.begin_drain(&req).unwrap();
                let slot = alloc.allocate_reserved(id, &req).unwrap();
                alloc.release_slot(&slot).unwrap();
            })
        });
        for slot in &held {
            alloc.release_slot(slot).unwrap();
        }
    }
    group.finish();
}

/// Pilot-elasticity hot path: one `expand(1)` + `shrink(1)` cycle against a fully
/// loaded allocation, swept across allocation width. Every node carries a resident
/// slot, so the freshly appended node is the only idle one and each shrink retires
/// exactly it — the cycle is stationary (retired entries accumulate but the
/// no-failure shrink path never scans them). Recorded as a trajectory datapoint in
/// `BENCH_scheduler.json`; not flatness-guarded, since the cycle's shard-lock walk
/// legitimately grows with the derived shard count.
fn bench_resize(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/resize");
    for nodes in [4usize, 256, 4096] {
        let batch = BatchSystem::new(wide_spec(nodes), ClockSpec::Manual.build(), 1);
        let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
        let spec = alloc.node_spec();
        let half_fill = ResourceRequest::cores(spec.cores / 2 + 1).unwrap();
        let held: Vec<_> = (0..nodes)
            .map(|_| alloc.allocate_slot(&half_fill).unwrap())
            .collect();
        assert_eq!(alloc.idle_nodes(), 0, "pre-fill must touch every node");
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                alloc.expand(1).unwrap();
                alloc.shrink(1).unwrap();
            })
        });
        for slot in &held {
            alloc.release_slot(slot).unwrap();
        }
    }
    group.finish();
}

/// Multi-thread allocate/release churn on a 256-node allocation, swept across
/// thread counts (1/2/4/8/16), contrasting the sharded configurations against
/// their single-lock baselines on both axes. `sharded` pins 16 allocator shards
/// — what the default derivation yields for 256 nodes on a ≥16-core host,
/// pinned explicitly so the sweep measures the same structure on any machine —
/// with a single queue shard; `single` pins `allocator_shards = 1` (the
/// pre-sharding allocator, bit for bit); `queue_sharded` keeps the 16 allocator
/// shards and stripes the scheduler front-end into 16 queue shards, so the
/// `queue_sharded` vs `sharded` gap isolates the *wait-queue lock* contention
/// the queue sharding exists to cut (both pin identical allocators). Capacity
/// always exceeds demand, so every allocation takes the queueless fast path;
/// parked-waiter wakeups are measured separately by `bench_scheduler_waitqueue`.
/// `scripts/bench_guard.sh` asserts the group's existence, that 8-thread
/// sharded churn beats the 1-shard baseline, and that 8-thread queue-sharded
/// churn beats the 1-queue-shard baseline.
fn bench_scheduler_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/churn");
    group.sample_size(10);
    const NODES: usize = 256;
    // High enough that per-iteration thread spawn/join overhead (identical in both
    // configurations) does not dilute the lock-contention signal the speedup
    // guard measures.
    const OPS_PER_THREAD: usize = 1024;
    for (label, alloc_shards, queue_shards) in [
        ("sharded", 16usize, 1usize),
        ("single", 1, 1),
        ("queue_sharded", 16, 16),
    ] {
        for threads in [1usize, 2, 4, 8, 16] {
            let batch = BatchSystem::new(wide_spec(NODES), ClockSpec::Manual.build(), 1);
            let alloc = batch
                .submit(AllocationRequest::nodes(NODES).with_allocator_shards(alloc_shards))
                .unwrap();
            assert_eq!(alloc.num_shards(), alloc_shards);
            let scheduler = Arc::new(Scheduler::new(alloc).with_queue_shards(Some(queue_shards)));
            assert_eq!(scheduler.queue_shards(), queue_shards);
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| {
                    let mut handles = Vec::new();
                    for _ in 0..threads {
                        let s = Arc::clone(&scheduler);
                        handles.push(std::thread::spawn(move || {
                            let req = ResourceRequest::cores(4).unwrap();
                            for _ in 0..OPS_PER_THREAD {
                                let slot = s
                                    .allocate(&req, Priority::Task, Duration::from_secs(10))
                                    .unwrap();
                                s.release(&slot).unwrap();
                            }
                        }));
                    }
                    for h in handles {
                        h.join().unwrap();
                    }
                })
            });
        }
    }
    group.finish();
}

/// Oversubscribed wait-queue churn: demand permanently exceeds capacity, so threads
/// genuinely park and every release performs a targeted head wakeup. This is the bench
/// that would catch a regression in the parked-waiter wake path.
fn bench_scheduler_waitqueue(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/contended_waitqueue");
    group.sample_size(10);
    // 2 Frontier nodes = 128 cores; 8 threads x 48 cores demand 384 — at most two
    // slots fit concurrently, so ~6 threads are parked at any instant.
    let batch = BatchSystem::new(wide_spec(2), ClockSpec::Manual.build(), 1);
    let alloc = batch.submit(AllocationRequest::nodes(2)).unwrap();
    let scheduler = Arc::new(Scheduler::new(alloc));
    group.bench_function("8_threads_48_cores", |b| {
        b.iter(|| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                let s = Arc::clone(&scheduler);
                handles.push(std::thread::spawn(move || {
                    let req = ResourceRequest::cores(48).unwrap();
                    for _ in 0..32 {
                        let slot = s
                            .allocate(&req, Priority::Task, Duration::from_secs(30))
                            .unwrap();
                        s.release(&slot).unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    group.finish();
}

/// Admission overhead of a 10⁴-submission burst against a *full* allocation, so
/// nothing places and the bench isolates pure queue admission + retirement:
/// `batched` admits the burst through `submit_batch` (one shard-lock round trip
/// for the whole queue) and retires the tickets with `cancel_admitted`;
/// `individual` runs the same requests through `allocate` with a zero timeout —
/// per request: an enqueue, two failed placement scans, a dequeue, and a window
/// wake. Both pin one queue shard so the comparison is lock-round-trip count,
/// not striping. `scripts/bench_guard.sh` asserts the datapoints exist and that
/// the batched path beats the individual path.
fn bench_admission_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/admission_batch");
    group.sample_size(10);
    const BURST: usize = 10_000;
    const NODES: usize = 4;
    let batch = BatchSystem::new(wide_spec(NODES), ClockSpec::Manual.build(), 1);
    let alloc = batch.submit(AllocationRequest::nodes(NODES)).unwrap();
    let spec = alloc.node_spec();
    // Saturate every node: the shape stays satisfiable, so admission succeeds,
    // but no placement can.
    let whole = ResourceRequest {
        cores: spec.cores,
        gpus: spec.gpus,
        mem_gib: 0.0,
        nodes: 1,
        packing: None,
    };
    let _held: Vec<_> = (0..NODES)
        .map(|_| alloc.allocate_slot(&whole).unwrap())
        .collect();
    let scheduler = Arc::new(Scheduler::new(alloc).with_queue_shards(Some(1)));
    let req = ResourceRequest::cores(4).unwrap();
    let requests: Vec<(ResourceRequest, Priority)> =
        (0..BURST).map(|_| (req, Priority::Task)).collect();
    group.bench_function(BenchmarkId::new("batched", BURST), |b| {
        b.iter(|| {
            let admission = scheduler.submit_batch(&requests).unwrap();
            for ticket in admission.tickets {
                scheduler.cancel_admitted(ticket);
            }
        })
    });
    group.bench_function(BenchmarkId::new("individual", BURST), |b| {
        b.iter(|| {
            for (req, priority) in &requests {
                let err = scheduler
                    .allocate(req, *priority, Duration::ZERO)
                    .unwrap_err();
                black_box(err);
            }
        })
    });
    group.finish();
}

fn bench_noop_roundtrip(c: &mut Criterion) {
    let clock = ClockSpec::scaled(1000.0).build();
    let server = ReqRepServer::new("svc.bench");
    let client = server.client(Link::instant(Arc::clone(&clock)));
    let server_thread = std::thread::spawn(move || {
        while let Ok((msg, responder)) = server.recv_timeout(Duration::from_secs(5)) {
            if msg.kind == "stop" {
                let _ = responder.reply(Message::new("svc.bench", "bye"));
                break;
            }
            let _ = responder.reply(Message::new("svc.bench", "reply"));
        }
    });
    c.bench_function("reqrep/noop_roundtrip", |b| {
        b.iter(|| client.request(Message::new("svc.bench", "ping")).unwrap())
    });
    let _ = client.request(Message::new("svc.bench", "stop"));
    let _ = server_thread.join();
}

fn bench_stats(c: &mut Criterion) {
    let samples: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.37).sin().abs()).collect();
    c.bench_function("stats/summary_4096", |b| {
        b.iter(|| Summary::from_slice(black_box(&samples)))
    });
}

criterion_group!(
    benches,
    bench_codec,
    bench_registry,
    bench_scheduler,
    bench_gang_allocate,
    bench_gang_partial,
    bench_gang_backfill,
    bench_resize,
    bench_scheduler_churn,
    bench_scheduler_waitqueue,
    bench_admission_batch,
    bench_noop_roundtrip,
    bench_stats
);
criterion_main!(benches);
