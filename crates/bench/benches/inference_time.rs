//! Criterion bench for experiment 3 (Fig. 6): llama-8b inference time through the
//! service interface, local vs remote, at a reduced request count. The full sweeps are
//! produced by the `exp3_inference` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hpcml_bench::exp2::{run_one, Deployment, ScalingConfig};
use hpcml_serving::{ModelSpec, ServingConfig};

fn config(deployment: Deployment) -> ScalingConfig {
    ScalingConfig {
        service_counts: vec![],
        strong_clients: 2,
        requests_per_client: 4,
        model: ModelSpec::sim_llama_8b(),
        deployment,
        clock_scale: 20_000.0,
        max_tokens: 64,
        serving: ServingConfig::default(),
        seed: 42,
    }
}

fn bench_inference_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp3_llama_inference");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    for deployment in [Deployment::Local, Deployment::Remote] {
        group.bench_with_input(
            BenchmarkId::from_parameter(deployment.label()),
            &deployment,
            |b, &d| {
                let cfg = config(d);
                b.iter(|| {
                    let r = run_one(2, 2, &cfg);
                    assert!(r.components["inference"].mean > 0.1);
                    r
                });
            },
        );
    }
    // The serving-plane variant of the same topology: up to 4 requests batched per
    // backend dispatch. Amortised decode cost shows up as a lower mean inference
    // component; the guarded throughput trajectory lives in benches/serving_plane.rs.
    group.bench_function("local_batched_4", |b| {
        let mut cfg = config(Deployment::Local);
        cfg.serving = ServingConfig::default()
            .max_batch_size(4)
            .batch_latency_budget_secs(0.5);
        b.iter(|| {
            let r = run_one(2, 2, &cfg);
            assert!(r.components["inference"].mean > 0.1);
            r
        });
    });
    group.finish();
}

criterion_group!(benches, bench_inference_time);
criterion_main!(benches);
