//! Data manager and stagers.
//!
//! The architecture collects RADICAL-Pilot's data capabilities into a `DataManager`
//! (paper Fig. 2): before a task executes, its input directives are staged to the
//! execution sandbox; after it finishes, outputs are staged back. The LUCID pipelines
//! move anything from kilobyte CSV files to the 1.6 TB cell-painting image set (via
//! Globus), so staging durations are modelled from dataset size, a per-transfer setup
//! latency and a bandwidth that depends on whether the endpoint is platform-local or
//! remote.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use hpcml_sim::clock::SharedClock;
use hpcml_sim::dist::Dist;

use crate::describe::DataDirective;
use crate::metrics::RuntimeMetrics;

/// Transfer performance model for one class of endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferProfile {
    /// Sustained bandwidth, MiB per second.
    pub bandwidth_mib_s: f64,
    /// Per-transfer setup latency, seconds.
    pub setup_secs: Dist,
}

impl TransferProfile {
    /// Platform-local staging (parallel filesystem): ~1 GiB/s, negligible setup.
    pub fn local_fs() -> Self {
        TransferProfile {
            bandwidth_mib_s: 1024.0,
            setup_secs: Dist::normal(0.02, 0.005),
        }
    }

    /// Wide-area transfer (Globus-class): ~200 MiB/s with a few seconds of setup.
    pub fn wide_area() -> Self {
        TransferProfile {
            bandwidth_mib_s: 200.0,
            setup_secs: Dist::normal(3.0, 0.5),
        }
    }

    /// Expected transfer duration for `size_mib`.
    pub fn mean_secs(&self, size_mib: f64) -> f64 {
        self.setup_secs.mean() + size_mib / self.bandwidth_mib_s
    }
}

/// The data manager: executes staging directives on the virtual clock.
pub struct DataManager {
    clock: SharedClock,
    local: TransferProfile,
    remote: TransferProfile,
    rng: Mutex<StdRng>,
    metrics: Arc<RuntimeMetrics>,
}

impl std::fmt::Debug for DataManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataManager")
            .field("local_bw", &self.local.bandwidth_mib_s)
            .field("remote_bw", &self.remote.bandwidth_mib_s)
            .finish()
    }
}

impl DataManager {
    /// Create a data manager with default transfer profiles.
    pub fn new(clock: SharedClock, metrics: Arc<RuntimeMetrics>, seed: u64) -> Self {
        DataManager {
            clock,
            local: TransferProfile::local_fs(),
            remote: TransferProfile::wide_area(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            metrics,
        }
    }

    /// Override the transfer profiles.
    pub fn with_profiles(mut self, local: TransferProfile, remote: TransferProfile) -> Self {
        self.local = local;
        self.remote = remote;
        self
    }

    /// Stage one directive; returns the (virtual) seconds spent.
    pub fn stage(&self, directive: &DataDirective) -> f64 {
        let profile = if directive.remote {
            self.remote
        } else {
            self.local
        };
        let setup = {
            let mut rng = self.rng.lock();
            profile.setup_secs.sample(&mut *rng).max(0.0)
        };
        let secs = setup + directive.size_mib.max(0.0) / profile.bandwidth_mib_s;
        self.clock.sleep(std::time::Duration::from_secs_f64(secs));
        self.metrics.record_scalar("staging.secs", secs);
        self.metrics
            .record_scalar("staging.mib", directive.size_mib);
        secs
    }

    /// Stage a set of directives sequentially; returns the total seconds spent.
    pub fn stage_all(&self, directives: &[DataDirective]) -> f64 {
        directives.iter().map(|d| self.stage(d)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcml_sim::clock::ClockSpec;

    fn manager(scale: f64) -> (SharedClock, DataManager) {
        let clock = ClockSpec::scaled(scale).build();
        let metrics = RuntimeMetrics::new();
        (Arc::clone(&clock), DataManager::new(clock, metrics, 5))
    }

    #[test]
    fn local_staging_is_fast() {
        let (clock, dm) = manager(10_000.0);
        let t0 = clock.now();
        let secs = dm.stage(&DataDirective::local("features.csv", 100.0));
        assert!(
            secs < 1.0,
            "100 MiB local should stage in well under a second, got {secs}"
        );
        assert!(clock.now().since(t0).as_secs_f64() >= secs * 0.5);
    }

    #[test]
    fn remote_staging_includes_setup_and_bandwidth() {
        let (_clock, dm) = manager(100_000.0);
        let secs = dm.stage(&DataDirective::remote("vcf-sample", 300.0));
        // ~3 s setup + 1.5 s transfer.
        assert!(secs > 2.0 && secs < 10.0, "remote 300 MiB took {secs}");
    }

    #[test]
    fn large_remote_dataset_scales_with_size() {
        let (_clock, dm) = manager(1_000_000.0);
        let small = dm.stage(&DataDirective::remote("a", 1_000.0));
        let large = dm.stage(&DataDirective::remote("b", 100_000.0));
        assert!(large > 10.0 * small, "large {large} vs small {small}");
    }

    #[test]
    fn stage_all_sums_and_records_metrics() {
        let clock = ClockSpec::scaled(100_000.0).build();
        let metrics = RuntimeMetrics::new();
        let dm = DataManager::new(clock, Arc::clone(&metrics), 6);
        let total = dm.stage_all(&[
            DataDirective::local("x", 10.0),
            DataDirective::local("y", 20.0),
        ]);
        assert!(total > 0.0);
        assert_eq!(metrics.scalar_values("staging.secs").len(), 2);
        assert!((metrics.scalar_summary("staging.mib").mean - 15.0).abs() < 1e-9);
        assert!(!format!("{dm:?}").is_empty());
    }

    #[test]
    fn empty_directive_costs_only_setup() {
        let (_clock, dm) = manager(100_000.0);
        let secs = dm.stage(&DataDirective::local("empty", 0.0));
        assert!(secs < 0.1);
    }

    #[test]
    fn profile_means() {
        assert!(
            TransferProfile::wide_area().mean_secs(200.0)
                > TransferProfile::local_fs().mean_secs(200.0)
        );
    }
}
