//! Runtime metrics: the paper's three quantities, collected with component breakdowns.
//!
//! * **Bootstrap Time (BT)** — per local service instance: `launch` + `init` + `publish`.
//! * **Response Time (RT)** — per inference request, client-observed:
//!   `communication` + `service` + `inference`.
//! * **Inference Time (IT)** — the `inference` component in isolation.
//!
//! All values are virtual seconds. The recorders are shared (`Arc<RuntimeMetrics>`)
//! between the executor, the service manager, and the client tasks that issue requests,
//! and the experiment harness reads the summaries after the workload drains.

use std::collections::BTreeMap;
use std::sync::Arc;

use hpcml_sim::metrics::{BreakdownRecorder, ComponentSample, MetricRegistry};
use hpcml_sim::stats::Summary;

use crate::records::BootstrapTimes;

/// Component name: service launch.
pub const C_LAUNCH: &str = "launch";
/// Component name: model load / initialisation.
pub const C_INIT: &str = "init";
/// Component name: endpoint publication.
pub const C_PUBLISH: &str = "publish";
/// Component name: request+reply network time.
pub const C_COMMUNICATION: &str = "communication";
/// Component name: service-side queueing + parsing + serialisation.
pub const C_SERVICE: &str = "service";
/// Component name: model compute time.
pub const C_INFERENCE: &str = "inference";

/// Shared collection of runtime metrics.
#[derive(Debug, Default)]
pub struct RuntimeMetrics {
    bootstrap: BreakdownRecorder,
    response: BreakdownRecorder,
    registry: MetricRegistry,
}

impl RuntimeMetrics {
    /// Create an empty metric set.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record the bootstrap breakdown of one service instance.
    pub fn record_bootstrap(&self, service_id: &str, times: BootstrapTimes) {
        self.bootstrap.record(
            ComponentSample::new(service_id)
                .with(C_LAUNCH, times.launch_secs)
                .with(C_INIT, times.init_secs)
                .with(C_PUBLISH, times.publish_secs),
        );
    }

    /// Record the response breakdown of one inference request.
    pub fn record_response(
        &self,
        request_id: &str,
        communication: f64,
        service: f64,
        inference: f64,
    ) {
        self.response.record(
            ComponentSample::new(request_id)
                .with(C_COMMUNICATION, communication)
                .with(C_SERVICE, service)
                .with(C_INFERENCE, inference),
        );
    }

    /// Record an arbitrary named scalar (staging durations, task durations, ...).
    pub fn record_scalar(&self, name: &str, value: f64) {
        self.registry.record(name, value);
    }

    /// Number of bootstrap samples recorded.
    pub fn bootstrap_count(&self) -> usize {
        self.bootstrap.len()
    }

    /// Number of response samples recorded.
    pub fn response_count(&self) -> usize {
        self.response.len()
    }

    /// Per-component bootstrap summaries (`launch`, `init`, `publish`).
    pub fn bootstrap_summaries(&self) -> BTreeMap<String, Summary> {
        self.bootstrap.component_summaries()
    }

    /// Summary of total bootstrap time per service.
    pub fn bootstrap_total_summary(&self) -> Summary {
        self.bootstrap.total_summary()
    }

    /// Per-component response summaries (`communication`, `service`, `inference`).
    pub fn response_summaries(&self) -> BTreeMap<String, Summary> {
        self.response.component_summaries()
    }

    /// Summary of total response time per request.
    pub fn response_total_summary(&self) -> Summary {
        self.response.total_summary()
    }

    /// Summary of the inference component alone (the paper's IT metric).
    pub fn inference_summary(&self) -> Summary {
        self.response_summaries()
            .remove(C_INFERENCE)
            .unwrap_or_default()
    }

    /// Raw bootstrap samples (for CSV export by the harness).
    pub fn bootstrap_samples(&self) -> Vec<ComponentSample> {
        self.bootstrap.samples()
    }

    /// Raw response samples (for CSV export by the harness).
    pub fn response_samples(&self) -> Vec<ComponentSample> {
        self.response.samples()
    }

    /// Scalar series accessor.
    pub fn scalar_summary(&self, name: &str) -> Summary {
        self.registry.summary(name)
    }

    /// Scalar series values.
    pub fn scalar_values(&self, name: &str) -> Vec<f64> {
        self.registry.values(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_recording_and_summaries() {
        let m = RuntimeMetrics::new();
        for i in 0..16 {
            m.record_bootstrap(
                &format!("service.{i}"),
                BootstrapTimes {
                    launch_secs: 2.0,
                    init_secs: 30.0 + i as f64 * 0.1,
                    publish_secs: 0.3,
                },
            );
        }
        assert_eq!(m.bootstrap_count(), 16);
        let s = m.bootstrap_summaries();
        assert!((s[C_LAUNCH].mean - 2.0).abs() < 1e-12);
        assert!(s[C_INIT].mean > 30.0);
        assert!(s[C_PUBLISH].mean < s[C_LAUNCH].mean);
        assert!(m.bootstrap_total_summary().mean > 32.0);
        assert_eq!(m.bootstrap_samples().len(), 16);
    }

    #[test]
    fn response_recording_and_inference_summary() {
        let m = RuntimeMetrics::new();
        for i in 0..100 {
            m.record_response(&format!("request.{i}"), 0.0001, 0.00005, 2.0);
        }
        assert_eq!(m.response_count(), 100);
        let s = m.response_summaries();
        assert!(s[C_INFERENCE].mean > 100.0 * s[C_COMMUNICATION].mean);
        assert!((m.inference_summary().mean - 2.0).abs() < 1e-9);
        assert!((m.response_total_summary().mean - 2.00015).abs() < 1e-6);
        assert_eq!(m.response_samples().len(), 100);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = RuntimeMetrics::new();
        assert_eq!(m.bootstrap_count(), 0);
        assert_eq!(m.inference_summary().count, 0);
        assert_eq!(m.response_total_summary().mean, 0.0);
    }

    #[test]
    fn scalar_series() {
        let m = RuntimeMetrics::new();
        m.record_scalar("staging.secs", 1.5);
        m.record_scalar("staging.secs", 2.5);
        assert_eq!(m.scalar_values("staging.secs").len(), 2);
        assert!((m.scalar_summary("staging.secs").mean - 2.0).abs() < 1e-12);
        assert_eq!(m.scalar_values("missing"), Vec::<f64>::new());
    }
}
