//! Entity state models.
//!
//! RADICAL-Pilot entities follow a stateful execution paradigm: every task, service and
//! pilot walks a fixed state graph, and every transition is timestamped (that is what
//! the paper's overhead decomposition is computed from). This module defines the three
//! state machines and their legal transitions; [`crate::records`] enforces them.

use serde::{Deserialize, Serialize};

/// States of a compute task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TaskState {
    /// Accepted by the client API.
    New,
    /// Waiting for / being assigned resources.
    Scheduling,
    /// Input data being staged to the execution sandbox.
    StagingInput,
    /// Running on its slot.
    Executing,
    /// Output data being staged back.
    StagingOutput,
    /// Finished successfully.
    Done,
    /// Finished unsuccessfully.
    Failed,
    /// Cancelled before completion.
    Canceled,
}

impl TaskState {
    /// Whether this is a terminal state.
    pub fn is_final(self) -> bool {
        matches!(
            self,
            TaskState::Done | TaskState::Failed | TaskState::Canceled
        )
    }

    /// Legal successor states.
    pub fn successors(self) -> &'static [TaskState] {
        use TaskState::*;
        match self {
            New => &[Scheduling, Canceled],
            Scheduling => &[StagingInput, Executing, Failed, Canceled],
            StagingInput => &[Executing, Failed, Canceled],
            // Executing -> Scheduling is the node-failure retry edge: a task whose
            // slot was evicted re-enters the wait queue instead of failing outright.
            Executing => &[StagingOutput, Done, Scheduling, Failed, Canceled],
            StagingOutput => &[Done, Failed, Canceled],
            Done | Failed | Canceled => &[],
        }
    }

    /// Whether `self -> next` is a legal transition.
    pub fn can_transition_to(self, next: TaskState) -> bool {
        self.successors().contains(&next)
    }
}

/// States of a service instance (the paper's extension of the task model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceState {
    /// Accepted by the client API.
    New,
    /// Waiting for / being assigned resources.
    Scheduling,
    /// Service executable being launched on its target resources.
    Launching,
    /// ML capability (model) being loaded and initialised.
    Initializing,
    /// Endpoint being published to the registry.
    Publishing,
    /// Ready: accepting client requests.
    Ready,
    /// Orderly shutdown in progress.
    Stopping,
    /// Stopped after an orderly shutdown.
    Stopped,
    /// Failed (launch error, crash, failed liveness).
    Failed,
}

impl ServiceState {
    /// Whether this is a terminal state.
    pub fn is_final(self) -> bool {
        matches!(self, ServiceState::Stopped | ServiceState::Failed)
    }

    /// Legal successor states.
    pub fn successors(self) -> &'static [ServiceState] {
        use ServiceState::*;
        match self {
            New => &[Scheduling, Failed],
            Scheduling => &[Launching, Failed],
            Launching => &[Initializing, Failed],
            Initializing => &[Publishing, Failed],
            Publishing => &[Ready, Failed],
            Ready => &[Stopping, Failed],
            Stopping => &[Stopped, Failed],
            Stopped | Failed => &[],
        }
    }

    /// Whether `self -> next` is a legal transition.
    pub fn can_transition_to(self, next: ServiceState) -> bool {
        self.successors().contains(&next)
    }

    /// The bootstrap phase (launch/init/publish) this state belongs to, if any. Used to
    /// attribute elapsed time to the paper's bootstrap components.
    pub fn bootstrap_component(self) -> Option<&'static str> {
        match self {
            ServiceState::Launching => Some("launch"),
            ServiceState::Initializing => Some("init"),
            ServiceState::Publishing => Some("publish"),
            _ => None,
        }
    }
}

/// States of a pilot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PilotState {
    /// Accepted by the client API.
    New,
    /// Waiting in the platform's batch queue.
    Queued,
    /// Active: its allocation can be scheduled onto.
    Active,
    /// Finished (walltime expired or explicitly terminated).
    Done,
    /// Failed to start or aborted.
    Failed,
    /// Cancelled before becoming active.
    Canceled,
}

impl PilotState {
    /// Whether this is a terminal state.
    pub fn is_final(self) -> bool {
        matches!(
            self,
            PilotState::Done | PilotState::Failed | PilotState::Canceled
        )
    }

    /// Legal successor states.
    pub fn successors(self) -> &'static [PilotState] {
        use PilotState::*;
        match self {
            New => &[Queued, Failed, Canceled],
            Queued => &[Active, Failed, Canceled],
            Active => &[Done, Failed, Canceled],
            Done | Failed | Canceled => &[],
        }
    }

    /// Whether `self -> next` is a legal transition.
    pub fn can_transition_to(self, next: PilotState) -> bool {
        self.successors().contains(&next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_happy_path_is_legal() {
        use TaskState::*;
        let path = [
            New,
            Scheduling,
            StagingInput,
            Executing,
            StagingOutput,
            Done,
        ];
        for w in path.windows(2) {
            assert!(w[0].can_transition_to(w[1]), "{:?} -> {:?}", w[0], w[1]);
        }
        assert!(Done.is_final());
        assert!(!Executing.is_final());
    }

    #[test]
    fn task_illegal_transitions_rejected() {
        use TaskState::*;
        assert!(!New.can_transition_to(Executing));
        assert!(!Done.can_transition_to(Executing));
        assert!(!Executing.can_transition_to(New));
        assert!(Done.successors().is_empty());
    }

    #[test]
    fn task_retry_edge_reenters_scheduling_from_executing_only() {
        use TaskState::*;
        assert!(Executing.can_transition_to(Scheduling));
        assert!(!StagingOutput.can_transition_to(Scheduling));
        assert!(!Done.can_transition_to(Scheduling));
        assert!(!Failed.can_transition_to(Scheduling));
    }

    #[test]
    fn service_happy_path_is_legal() {
        use ServiceState::*;
        let path = [
            New,
            Scheduling,
            Launching,
            Initializing,
            Publishing,
            Ready,
            Stopping,
            Stopped,
        ];
        for w in path.windows(2) {
            assert!(w[0].can_transition_to(w[1]), "{:?} -> {:?}", w[0], w[1]);
        }
        assert!(Stopped.is_final());
        assert!(Failed.is_final());
        assert!(!Ready.is_final());
    }

    #[test]
    fn service_every_non_final_state_can_fail() {
        use ServiceState::*;
        for s in [
            New,
            Scheduling,
            Launching,
            Initializing,
            Publishing,
            Ready,
            Stopping,
        ] {
            assert!(s.can_transition_to(Failed), "{s:?} must be able to fail");
        }
    }

    #[test]
    fn service_bootstrap_components_map_to_paper_figure3() {
        use ServiceState::*;
        assert_eq!(Launching.bootstrap_component(), Some("launch"));
        assert_eq!(Initializing.bootstrap_component(), Some("init"));
        assert_eq!(Publishing.bootstrap_component(), Some("publish"));
        assert_eq!(Ready.bootstrap_component(), None);
        assert_eq!(New.bootstrap_component(), None);
    }

    #[test]
    fn pilot_states() {
        use PilotState::*;
        assert!(New.can_transition_to(Queued));
        assert!(Queued.can_transition_to(Active));
        assert!(Active.can_transition_to(Done));
        assert!(!New.can_transition_to(Active));
        assert!(!Done.can_transition_to(Active));
        assert!(Canceled.is_final());
    }

    #[test]
    fn no_state_lists_itself_as_successor() {
        use ServiceState::*;
        for s in [
            New,
            Scheduling,
            Launching,
            Initializing,
            Publishing,
            Ready,
            Stopping,
            Stopped,
            Failed,
        ] {
            assert!(!s.successors().contains(&s));
        }
    }
}
