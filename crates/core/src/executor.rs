//! The executor: launching service instances and running tasks.
//!
//! The executor realises flows ③–⑤ of the paper's architecture (Fig. 2): it places each
//! scheduled entity on its slot and drives it through its lifecycle. Every service and
//! task runs on its own OS thread (the paper's entities are self-contained executables
//! placed on specific nodes), and all hardware-bound durations — launcher start-up,
//! model load, data staging, compute kernels, network hops, token generation — are spent
//! on the session's shared virtual clock.
//!
//! For **local services** the executor measures the three bootstrap components of the
//! paper's Fig. 3 from the service's own state timestamps:
//! `launch` (Launching → Initializing), `init` (Initializing → Publishing) and
//! `publish` (Publishing → Ready). For **inference-client tasks** it records one
//! response-time sample per request, decomposed into `communication`, `service` and
//! `inference` exactly as the paper's experiments 2 and 3 do.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hpcml_comm::link::Link;
use hpcml_comm::message::Message;
use hpcml_comm::pubsub::Publisher;
use hpcml_comm::registry::{EndpointEntry, EndpointRegistry};
use hpcml_comm::reqrep::ReqRepServer;
use hpcml_platform::resources::ResourceError;
use hpcml_platform::PlatformId;
use hpcml_serving::host::ModelHost;
use hpcml_serving::protocol::{
    HDR_INFERENCE_SECS, HDR_RETRY_AFTER_SECS, HDR_SERVICE_SECS, KIND_ERROR, KIND_SHED,
};
use hpcml_serving::request::InferenceRequest;
use hpcml_serving::service::{inference_request_message, InferenceService};
use hpcml_sim::clock::{SharedClock, Stopwatch};
use hpcml_sim::dist::Dist;

use crate::data::DataManager;
use crate::describe::{ServicePlacement, ServiceSelector, TaskKind};
use crate::error::RuntimeError;
use crate::metrics::RuntimeMetrics;
use crate::records::{BootstrapTimes, ServiceRecord, TaskRecord};
use crate::scheduler::{AdmissionTicket, Priority, Scheduler};
use crate::states::{ServiceState, TaskState};

/// Metadata key under which a service's model name is published.
pub const META_MODEL: &str = "model";
/// Metadata key under which a service's platform is published.
pub const META_PLATFORM: &str = "platform";
/// Metadata key under which a service's runtime identifier is published.
pub const META_SERVICE_ID: &str = "service_id";

/// How long entity threads wait for dependencies (endpoints, resources) in real time.
const DEPENDENCY_TIMEOUT: Duration = Duration::from_secs(120);

/// Virtual backoff before the first retry of a task evicted by a node failure;
/// doubles on every further attempt (exponential backoff on the session clock).
const RETRY_BACKOFF_BASE_SECS: f64 = 0.5;

/// How many times an inference client honours a shed reply's retry-after hint before
/// counting the request as failed.
const MAX_SHED_RETRIES: u32 = 3;

/// The executor component.
pub struct Executor {
    clock: SharedClock,
    metrics: Arc<RuntimeMetrics>,
    registry: Arc<EndpointRegistry>,
    data: Arc<DataManager>,
    publisher: Publisher,
    concurrent_launches: Arc<AtomicU32>,
    publish_overhead: Dist,
    seed_counter: AtomicU64,
    base_seed: u64,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field(
                "concurrent_launches",
                &self.concurrent_launches.load(Ordering::Relaxed),
            )
            .field("spawned", &self.handles.lock().len())
            .finish()
    }
}

impl Executor {
    /// Create an executor.
    pub fn new(
        clock: SharedClock,
        metrics: Arc<RuntimeMetrics>,
        registry: Arc<EndpointRegistry>,
        data: Arc<DataManager>,
        publisher: Publisher,
        base_seed: u64,
    ) -> Arc<Self> {
        Arc::new(Executor {
            clock,
            metrics,
            registry,
            data,
            publisher,
            concurrent_launches: Arc::new(AtomicU32::new(0)),
            // Endpoint publication: registry round trip plus control-channel fan-out.
            // Calibrated to stay below the launch time, as the paper observes.
            publish_overhead: Dist::normal(0.35, 0.08),
            seed_counter: AtomicU64::new(1),
            base_seed,
            handles: Mutex::new(Vec::new()),
        })
    }

    fn next_seed(&self) -> u64 {
        self.base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.seed_counter.fetch_add(1, Ordering::Relaxed))
    }

    fn publish_state(&self, entity_kind: &str, id: &str, state: &str) {
        let msg = Message::new(format!("state.{entity_kind}.{state}"), "state.update")
            .with_header("entity", id)
            .with_header("state", state);
        self.publisher.publish(&msg);
    }

    /// Spawn the lifecycle thread of a service instance.
    pub fn spawn_service(
        self: &Arc<Self>,
        record: Arc<ServiceRecord>,
        scheduler: Option<Arc<Scheduler>>,
    ) {
        let this = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(record.id.clone())
            .spawn(move || this.run_service(record, scheduler))
            .expect("failed to spawn service thread");
        self.handles.lock().push(handle);
    }

    /// Spawn the lifecycle thread of a task.
    pub fn spawn_task(
        self: &Arc<Self>,
        record: Arc<TaskRecord>,
        scheduler: Option<Arc<Scheduler>>,
    ) {
        let this = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(record.id.clone())
            .spawn(move || this.run_task(record, scheduler, None))
            .expect("failed to spawn task thread");
        self.handles.lock().push(handle);
    }

    /// Spawn the lifecycle thread of a task whose placement request was already
    /// admitted through [`Scheduler::submit_batch`]: the thread consumes the
    /// [`AdmissionTicket`] instead of enqueueing again, so the task keeps the FIFO
    /// place its batch admission recorded.
    pub fn spawn_task_admitted(
        self: &Arc<Self>,
        record: Arc<TaskRecord>,
        scheduler: Arc<Scheduler>,
        ticket: AdmissionTicket,
    ) {
        let this = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(record.id.clone())
            .spawn(move || this.run_task(record, Some(scheduler), Some(ticket)))
            .expect("failed to spawn task thread");
        self.handles.lock().push(handle);
    }

    /// Wait for every spawned entity thread to finish.
    pub fn join_all(&self) {
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }

    /// Number of entity threads spawned so far (including finished ones not yet joined).
    pub fn spawned_count(&self) -> usize {
        self.handles.lock().len()
    }

    // ------------------------------------------------------------------ services

    fn run_service(&self, record: Arc<ServiceRecord>, scheduler: Option<Arc<Scheduler>>) {
        if let Err(e) = self.run_service_inner(&record, scheduler) {
            if !record.state.current().is_final() {
                record.state.fail(ServiceState::Failed, e.to_string());
            }
            self.publish_state("service", &record.id, "Failed");
        }
    }

    fn run_service_inner(
        &self,
        record: &Arc<ServiceRecord>,
        scheduler: Option<Arc<Scheduler>>,
    ) -> Result<(), RuntimeError> {
        let desc = &record.description;
        let platform_spec = record.platform.spec();
        let is_local = matches!(desc.placement, ServicePlacement::LocalPilot);

        // ② scheduling / placement.
        record.state.transition(ServiceState::Scheduling)?;
        self.publish_state("service", &record.id, "Scheduling");
        let slot = if is_local {
            let scheduler = scheduler.ok_or_else(|| {
                RuntimeError::InvalidState("local service submitted without an active pilot".into())
            })?;
            let wait_start = std::time::Instant::now();
            let slot =
                scheduler.allocate(&desc.resources, Priority::Service, DEPENDENCY_TIMEOUT)?;
            self.metrics.record_scalar(
                "service.placement_wait_secs",
                wait_start.elapsed().as_secs_f64(),
            );
            *record.slot.lock() = Some(slot.clone());
            Some((scheduler, slot))
        } else {
            None
        };

        // ③ launch the service executable on its target resources.
        record.state.transition(ServiceState::Launching)?;
        self.publish_state("service", &record.id, "Launching");
        let mut rng = StdRng::seed_from_u64(self.next_seed());
        let launch_watch = Stopwatch::start(Arc::clone(&self.clock));
        let in_flight = self.concurrent_launches.fetch_add(1, Ordering::AcqRel) + 1;
        let launch_model = platform_spec.launcher.model();
        let launch_duration = launch_model.sample_launch(in_flight, &mut rng);
        self.clock.sleep(launch_duration);
        let launch_secs = launch_watch.elapsed_secs();

        // ⑤ instantiate the ML capability: load + initialise the model replicas.
        record.state.transition(ServiceState::Initializing)?;
        let init_result = (|| -> Result<(Vec<Arc<ModelHost>>, f64), RuntimeError> {
            let init_watch = Stopwatch::start(Arc::clone(&self.clock));
            let replicas = desc.serving.replicas.max(1);
            let hosts: Vec<Arc<ModelHost>> = (0..replicas)
                .map(|_| {
                    Arc::new(ModelHost::from_spec(
                        desc.model.clone(),
                        Arc::clone(&self.clock),
                        self.next_seed(),
                    ))
                })
                .collect();
            if let Some((_, slot)) = &slot {
                if slot.num_gpus() > 0 {
                    // All replicas host the same model spec; one fit check covers the
                    // whole gang (member nodes are homogeneous within a platform).
                    hosts[0]
                        .check_gpu_fit(platform_spec.node.gpu_mem_gib)
                        .map_err(|e| RuntimeError::Failed(e.to_string()))?;
                }
            }
            if hosts.len() == 1 {
                hosts[0].load();
            } else {
                // Replicas load in parallel on their gang members, so init time is the
                // slowest load, not the sum.
                let loaders: Vec<std::thread::JoinHandle<()>> = hosts
                    .iter()
                    .map(|h| {
                        let h = Arc::clone(h);
                        std::thread::spawn(move || {
                            h.load();
                        })
                    })
                    .collect();
                for loader in loaders {
                    let _ = loader.join();
                }
            }
            Ok((hosts, init_watch.elapsed_secs()))
        })();
        let (hosts, init_secs) = match init_result {
            Ok(v) => v,
            Err(e) => {
                self.concurrent_launches.fetch_sub(1, Ordering::AcqRel);
                if let Some((scheduler, slot)) = &slot {
                    let _ = scheduler.release(slot);
                }
                return Err(e);
            }
        };

        // ④ publish the service endpoint.
        record.state.transition(ServiceState::Publishing)?;
        let publish_watch = Stopwatch::start(Arc::clone(&self.clock));
        let endpoint = ReqRepServer::new(record.endpoint_name());
        let mut metadata = BTreeMap::new();
        metadata.insert(META_MODEL.to_string(), desc.model.name.clone());
        metadata.insert(
            META_PLATFORM.to_string(),
            record.platform.short_name().to_string(),
        );
        metadata.insert(META_SERVICE_ID.to_string(), record.id.clone());
        let publish_overhead = self.publish_overhead.sample(&mut rng).max(0.0);
        self.clock.sleep(Duration::from_secs_f64(publish_overhead));
        let register_result =
            self.registry
                .register(record.endpoint_name(), endpoint.handle(), metadata);
        self.concurrent_launches.fetch_sub(1, Ordering::AcqRel);
        if let Err(e) = register_result {
            if let Some((scheduler, slot)) = &slot {
                let _ = scheduler.release(slot);
            }
            return Err(RuntimeError::Comm(e));
        }
        let publish_secs = publish_watch.elapsed_secs();

        // Record the bootstrap breakdown before announcing readiness so that waiters
        // woken by the Ready transition always observe it (local ephemeral services
        // only — remote models are persistent and are not bootstrapped per
        // application, §IV).
        let bootstrap = BootstrapTimes {
            launch_secs,
            init_secs,
            publish_secs,
        };
        *record.bootstrap.lock() = Some(bootstrap);
        if is_local {
            self.metrics.record_bootstrap(&record.id, bootstrap);
        }
        record.state.transition(ServiceState::Ready)?;
        self.publish_state("service", &record.id, "Ready");

        // Serve until asked to stop. Serving-plane metrics flow into the runtime
        // metrics store alongside the task/service scalars.
        let metrics = Arc::clone(&self.metrics);
        let sink: hpcml_serving::SharedMetricsSink =
            Arc::new(move |name: &str, value: f64| metrics.record_scalar(name, value));
        let service = InferenceService::with_config(
            record.description.name.clone(),
            hosts,
            Arc::clone(&self.clock),
            self.next_seed(),
            desc.serving.clone(),
            sink,
        );
        let served = service.serve(&endpoint, &record.stop);
        *record.requests_served.lock() = served;

        // Orderly teardown.
        self.registry.unregister(&record.endpoint_name());
        if record.state.current() == ServiceState::Ready {
            record.state.transition(ServiceState::Stopping)?;
        }
        if record.state.current() == ServiceState::Stopping {
            record.state.transition(ServiceState::Stopped)?;
        }
        self.publish_state("service", &record.id, "Stopped");
        if let Some((scheduler, slot)) = &slot {
            scheduler.release(slot)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------ tasks

    fn run_task(
        &self,
        record: Arc<TaskRecord>,
        scheduler: Option<Arc<Scheduler>>,
        mut ticket: Option<AdmissionTicket>,
    ) {
        // Retry loop for node-failure evictions: a task that lost its slot re-enters
        // scheduling (at the front of its wait queue) up to `max_retries` times, with
        // exponential backoff on the session clock between attempts. Any other error
        // — and an eviction once the budget is spent — fails the task.
        let mut attempt = 0u32;
        loop {
            let err =
                match self.run_task_inner(&record, scheduler.clone(), attempt > 0, &mut ticket) {
                    Ok(()) => return,
                    Err(e) => e,
                };
            // A pre-admitted ticket the attempt never consumed must leave its
            // queue, or it would sit at its shard's head forever, blocking the
            // FIFO behind it.
            if let (Some(unused), Some(s)) = (ticket.take(), scheduler.as_ref()) {
                s.cancel_admitted(unused);
            }
            let evicted = matches!(err, RuntimeError::Resource(ResourceError::NodeFailed(_)));
            if evicted && attempt < record.description.max_retries {
                attempt += 1;
                record.retries.fetch_add(1, Ordering::Relaxed);
                self.metrics.record_scalar("task.retries", 1.0);
                self.publish_state("task", &record.id, "Scheduling");
                let backoff = RETRY_BACKOFF_BASE_SECS * f64::from(1u32 << (attempt - 1).min(16));
                self.clock.sleep(Duration::from_secs_f64(backoff));
                continue;
            }
            if !record.state.current().is_final() {
                record.state.fail(TaskState::Failed, err.to_string());
            }
            self.publish_state("task", &record.id, "Failed");
            return;
        }
    }

    fn run_task_inner(
        &self,
        record: &Arc<TaskRecord>,
        scheduler: Option<Arc<Scheduler>>,
        requeue: bool,
        ticket: &mut Option<AdmissionTicket>,
    ) -> Result<(), RuntimeError> {
        let desc = record.description.clone();

        record.state.transition(TaskState::Scheduling)?;
        self.publish_state("task", &record.id, "Scheduling");

        // Readiness relations: every service named in `after_services` must have
        // published its endpoint before this task starts.
        for service_name in &desc.after_services {
            self.registry
                .wait_for(&format!("service.{service_name}"), DEPENDENCY_TIMEOUT)
                .map_err(RuntimeError::Comm)?;
        }

        let scheduler = scheduler.ok_or_else(|| {
            RuntimeError::InvalidState("task submitted without an active pilot".into())
        })?;
        let wait_start = std::time::Instant::now();
        // A retry after a node failure re-enters its wait queue at the front: the
        // task already waited its turn before the eviction. A batch-admitted task
        // consumes its ticket instead of enqueueing again (first attempt only —
        // the ticket is gone once consumed).
        let (slot, placement) = if let Some(admitted) = ticket.take() {
            scheduler.allocate_admitted_with_stats(admitted, DEPENDENCY_TIMEOUT)?
        } else if requeue {
            scheduler.requeue_with_stats(&desc.resources, Priority::Task, DEPENDENCY_TIMEOUT)?
        } else {
            scheduler.allocate_with_stats(&desc.resources, Priority::Task, DEPENDENCY_TIMEOUT)?
        };
        let wait_secs = wait_start.elapsed().as_secs_f64();
        self.metrics
            .record_scalar("task.placement_wait_secs", wait_secs);
        // Shard-probe cost of the successful placement: 1 means the two-choice
        // probe hit on its first allocator shard; values toward the allocation's
        // shard count mean summary misses, a fallback sweep, or a cross-shard gang.
        self.metrics
            .record_scalar("task.placement.shard_probes", placement.shard_probes as f64);
        if slot.is_gang() {
            // Gang placements queue for multi-node capacity, so their behaviour is
            // tracked separately from single-node placement waits — including how
            // often narrower requests overtook the gang, how many members landed on
            // partially free nodes (co-resident with other slots), and how long the
            // gang spent in backfill-draining mode before enough nodes were reserved
            // (recorded whether the reservation completed via idle transitions or
            // via partial-headroom pinning).
            self.metrics
                .record_scalar("task.gang.placement_wait_secs", wait_secs);
            self.metrics
                .record_scalar("task.gang.nodes", slot.num_nodes() as f64);
            self.metrics
                .record_scalar("task.gang.partial_nodes", slot.partial_nodes() as f64);
            self.metrics
                .record_scalar("task.gang.overtakes", placement.overtakes as f64);
            if let Some(drain_secs) = placement.drain_secs {
                self.metrics
                    .record_scalar("task.gang.drain_secs", drain_secs);
            }
        }
        *record.slot.lock() = Some(slot.clone());

        let finish = |result: Result<(), RuntimeError>| -> Result<(), RuntimeError> {
            match scheduler.release(&slot) {
                Ok(()) => result,
                // The node died after the work completed: the eviction already
                // reclaimed the slot's resources, so the task's outcome stands.
                Err(RuntimeError::Resource(ResourceError::NodeFailed(_))) if result.is_ok() => {
                    result
                }
                Err(e) => Err(e),
            }
        };

        // Input staging.
        if !desc.stage_in.is_empty() {
            record.state.transition(TaskState::StagingInput)?;
            self.data.stage_all(&desc.stage_in);
        }

        // Execution.
        record.state.transition(TaskState::Executing)?;
        self.publish_state("task", &record.id, "Executing");
        let exec_watch = Stopwatch::start(Arc::clone(&self.clock));
        let exec_result = self.execute_kind(record, &desc.kind);
        self.metrics
            .record_scalar("task.exec_secs", exec_watch.elapsed_secs());
        if let Err(e) = exec_result {
            return finish(Err(e));
        }

        // Node-failure detection: the slot may have been evicted while the task ran,
        // in which case the work is lost and the task must be requeued. Release
        // retires the evicted slot and reports which node failed.
        if scheduler.slot_lost(&slot) {
            return Err(scheduler.release(&slot).err().unwrap_or_else(|| {
                RuntimeError::Resource(ResourceError::NodeFailed(slot.node_index()))
            }));
        }

        // Output staging.
        if !desc.stage_out.is_empty() {
            record.state.transition(TaskState::StagingOutput)?;
            self.data.stage_all(&desc.stage_out);
        }

        record.state.transition(TaskState::Done)?;
        self.publish_state("task", &record.id, "Done");
        finish(Ok(()))
    }

    fn execute_kind(&self, record: &Arc<TaskRecord>, kind: &TaskKind) -> Result<(), RuntimeError> {
        match kind {
            TaskKind::Noop => Ok(()),
            TaskKind::Compute { duration_secs } => {
                let mut rng = StdRng::seed_from_u64(self.next_seed());
                let duration = duration_secs.sample_secs(&mut rng);
                self.clock.sleep(duration);
                Ok(())
            }
            TaskKind::InferenceClient {
                selector,
                requests,
                prompt_words,
                max_tokens,
                think_time_secs,
            } => self.run_inference_client(
                record,
                selector,
                *requests,
                *prompt_words,
                *max_tokens,
                think_time_secs,
            ),
        }
    }

    fn resolve_targets(
        &self,
        selector: &ServiceSelector,
    ) -> Result<Vec<EndpointEntry>, RuntimeError> {
        match selector {
            ServiceSelector::Named(names) => {
                let mut entries = Vec::with_capacity(names.len());
                for name in names {
                    let entry = self
                        .registry
                        .wait_for(&format!("service.{name}"), DEPENDENCY_TIMEOUT)
                        .map_err(RuntimeError::Comm)?;
                    entries.push(entry);
                }
                Ok(entries)
            }
            ServiceSelector::ByModel(model) => {
                let deadline = std::time::Instant::now() + DEPENDENCY_TIMEOUT;
                loop {
                    let entries = self.registry.find_by_metadata(META_MODEL, model);
                    if !entries.is_empty() {
                        return Ok(entries);
                    }
                    if std::time::Instant::now() >= deadline {
                        return Err(RuntimeError::Comm(hpcml_comm::CommError::EndpointNotFound(
                            format!("no service hosting model {model}"),
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            ServiceSelector::Any => {
                let deadline = std::time::Instant::now() + DEPENDENCY_TIMEOUT;
                loop {
                    let names = self.registry.names();
                    if !names.is_empty() {
                        return Ok(names
                            .iter()
                            .filter_map(|n| self.registry.lookup(n))
                            .collect());
                    }
                    if std::time::Instant::now() >= deadline {
                        return Err(RuntimeError::Comm(hpcml_comm::CommError::EndpointNotFound(
                            "no service registered".to_string(),
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
    }

    /// The network link between a client task and a service endpoint: intra-platform
    /// latency when both sit on the same platform, WAN latency otherwise (the paper's
    /// local vs remote deployment scenarios).
    fn client_link(&self, task_platform: PlatformId, entry: &EndpointEntry, seed: u64) -> Link {
        let spec = task_platform.spec();
        let service_platform = entry
            .metadata
            .get(META_PLATFORM)
            .map(String::as_str)
            .unwrap_or("");
        let profile = if service_platform == task_platform.short_name() {
            spec.intra_latency
        } else {
            spec.wan_latency
        };
        Link::new(
            format!("{}->{}", task_platform.short_name(), service_platform),
            Arc::clone(&self.clock),
            profile,
            seed,
        )
    }

    fn run_inference_client(
        &self,
        record: &Arc<TaskRecord>,
        selector: &ServiceSelector,
        requests: u32,
        prompt_words: u32,
        max_tokens: u32,
        think_time: &Dist,
    ) -> Result<(), RuntimeError> {
        let entries = self.resolve_targets(selector)?;
        let mut rng = StdRng::seed_from_u64(self.next_seed());
        let clients: Vec<(String, hpcml_comm::ReqRepClient)> = entries
            .iter()
            .map(|entry| {
                let link = self.client_link(record.platform, entry, self.next_seed());
                (entry.name.clone(), entry.handle.connect(link))
            })
            .collect();
        if clients.is_empty() {
            return Err(RuntimeError::Failed(
                "inference client has no target services".into(),
            ));
        }

        let prompt: String = {
            let mut words = Vec::with_capacity(prompt_words as usize);
            for i in 0..prompt_words {
                words.push(format!("w{i}"));
            }
            words.join(" ")
        };

        // Stagger the round-robin starting point per client so that concurrent clients
        // do not hit the same service in lockstep (rudimentary load balancing, as in
        // the paper's prototype).
        let start_offset = (self.seed_counter.load(Ordering::Relaxed) as usize) % clients.len();
        let mut errors = 0u32;
        for i in 0..requests {
            let (endpoint_name, client) = &clients[(start_offset + i as usize) % clients.len()];
            let request =
                InferenceRequest::new(prompt.clone(), max_tokens).from_client(record.id.clone());
            let request_id = request.request_id.clone();
            let watch = Stopwatch::start(Arc::clone(&self.clock));
            let mut reply = client
                .request(inference_request_message(endpoint_name, &request))
                .map_err(RuntimeError::Comm)?;
            // An overloaded service sheds instead of queueing past the deadline; honor
            // its retry-after hint a bounded number of times on the virtual clock.
            let mut shed_retries = 0u32;
            while reply.kind == KIND_SHED && shed_retries < MAX_SHED_RETRIES {
                shed_retries += 1;
                self.metrics.record_scalar("client.shed_retries", 1.0);
                let retry_after = reply
                    .f64_header(HDR_RETRY_AFTER_SECS)
                    .unwrap_or(0.1)
                    .max(0.001);
                self.clock.sleep(Duration::from_secs_f64(retry_after));
                reply = client
                    .request(inference_request_message(endpoint_name, &request))
                    .map_err(RuntimeError::Comm)?;
            }
            let response_secs = watch.elapsed_secs();
            if reply.kind == KIND_ERROR || reply.kind == KIND_SHED {
                errors += 1;
                self.metrics.record_scalar("client.error_replies", 1.0);
                continue;
            }
            let service_secs = reply.f64_header(HDR_SERVICE_SECS).unwrap_or(0.0);
            let inference_secs = reply.f64_header(HDR_INFERENCE_SECS).unwrap_or(0.0);
            let communication_secs = (response_secs - service_secs - inference_secs).max(0.0);
            self.metrics.record_response(
                &request_id,
                communication_secs,
                service_secs,
                inference_secs,
            );
            let pause = think_time.sample_secs(&mut rng);
            if !pause.is_zero() {
                self.clock.sleep(pause);
            }
        }
        if errors == requests && requests > 0 {
            return Err(RuntimeError::Failed(format!(
                "all {requests} inference requests failed"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::{ServiceDescription, TaskDescription};
    use hpcml_platform::batch::{AllocationRequest, BatchSystem};
    use hpcml_serving::ModelSpec;
    use hpcml_sim::clock::ClockSpec;

    struct Fixture {
        clock: SharedClock,
        metrics: Arc<RuntimeMetrics>,
        registry: Arc<EndpointRegistry>,
        executor: Arc<Executor>,
        scheduler: Arc<Scheduler>,
    }

    fn fixture(platform: PlatformId, nodes: usize, scale: f64) -> Fixture {
        let clock = ClockSpec::scaled(scale).build();
        let metrics = RuntimeMetrics::new();
        let registry = Arc::new(EndpointRegistry::new());
        let data = Arc::new(DataManager::new(
            Arc::clone(&clock),
            Arc::clone(&metrics),
            1,
        ));
        let executor = Executor::new(
            Arc::clone(&clock),
            Arc::clone(&metrics),
            Arc::clone(&registry),
            data,
            Publisher::new(),
            42,
        );
        let batch = BatchSystem::new(platform.spec(), Arc::clone(&clock), 2);
        let alloc = batch.submit(AllocationRequest::nodes(nodes)).unwrap();
        let scheduler = Arc::new(Scheduler::new(alloc));
        Fixture {
            clock,
            metrics,
            registry,
            executor,
            scheduler,
        }
    }

    fn service_record(
        fx: &Fixture,
        name: &str,
        model: ModelSpec,
        platform: PlatformId,
    ) -> Arc<ServiceRecord> {
        ServiceRecord::new(
            format!("service.x-{name}"),
            ServiceDescription::new(name).model(model).gpus(1),
            platform,
            Arc::clone(&fx.clock),
        )
    }

    #[test]
    fn local_service_bootstraps_and_serves() {
        // Delta: MPI/PRRTE launcher, so launch (~2 s) clearly exceeds publish (~0.35 s).
        let fx = fixture(PlatformId::Delta, 1, 2000.0);
        let record = service_record(&fx, "llm-0", ModelSpec::sim_llama_8b(), PlatformId::Delta);
        fx.executor
            .spawn_service(Arc::clone(&record), Some(Arc::clone(&fx.scheduler)));

        // Wait for readiness.
        record
            .state
            .wait_until(|s| s == ServiceState::Ready, Duration::from_secs(30))
            .unwrap();
        let bt = record.bootstrap.lock().unwrap();
        assert!(bt.init_secs > bt.launch_secs, "init {bt:?} must dominate");
        assert!(
            bt.publish_secs < bt.launch_secs,
            "publish must stay below launch: {bt:?}"
        );
        assert_eq!(fx.metrics.bootstrap_count(), 1);
        assert!(fx.registry.lookup("service.llm-0").is_some());

        // Stop and verify teardown.
        record.request_stop();
        fx.executor.join_all();
        assert_eq!(record.state.current(), ServiceState::Stopped);
        assert!(fx.registry.lookup("service.llm-0").is_none());
        assert_eq!(fx.scheduler.outstanding_slots(), 0);
    }

    #[test]
    fn service_fails_when_model_does_not_fit_gpu() {
        let fx = fixture(PlatformId::Local, 1, 10_000.0); // local GPUs have 16 GiB
        let record = service_record(&fx, "big", ModelSpec::sim_llama_70b(), PlatformId::Local);
        fx.executor
            .spawn_service(Arc::clone(&record), Some(Arc::clone(&fx.scheduler)));
        let state = record
            .state
            .wait_until(|s| s.is_final(), Duration::from_secs(30));
        assert!(state.is_err() || state.unwrap() == ServiceState::Failed);
        assert_eq!(record.state.current(), ServiceState::Failed);
        assert!(record.state.error().unwrap().contains("GPU"));
        fx.executor.join_all();
        // The slot must have been released on failure.
        assert_eq!(fx.scheduler.outstanding_slots(), 0);
    }

    #[test]
    fn duplicate_endpoint_name_fails_second_service() {
        let fx = fixture(PlatformId::Local, 2, 10_000.0);
        let a = service_record(&fx, "dup", ModelSpec::noop(), PlatformId::Local);
        let b = service_record(&fx, "dup", ModelSpec::noop(), PlatformId::Local);
        fx.executor
            .spawn_service(Arc::clone(&a), Some(Arc::clone(&fx.scheduler)));
        a.state
            .wait_until(|s| s == ServiceState::Ready, Duration::from_secs(20))
            .unwrap();
        fx.executor
            .spawn_service(Arc::clone(&b), Some(Arc::clone(&fx.scheduler)));
        let _ = b
            .state
            .wait_until(|s| s.is_final(), Duration::from_secs(20));
        assert_eq!(b.state.current(), ServiceState::Failed);
        a.request_stop();
        fx.executor.join_all();
    }

    #[test]
    fn noop_task_and_compute_task_complete() {
        let fx = fixture(PlatformId::Local, 1, 10_000.0);
        let noop = TaskRecord::new(
            "task.noop".into(),
            TaskDescription::new("noop"),
            PlatformId::Local,
            Arc::clone(&fx.clock),
        );
        let compute = TaskRecord::new(
            "task.compute".into(),
            TaskDescription::new("compute")
                .kind(TaskKind::compute_secs(5.0))
                .cores(2),
            PlatformId::Local,
            Arc::clone(&fx.clock),
        );
        fx.executor
            .spawn_task(Arc::clone(&noop), Some(Arc::clone(&fx.scheduler)));
        fx.executor
            .spawn_task(Arc::clone(&compute), Some(Arc::clone(&fx.scheduler)));
        fx.executor.join_all();
        assert_eq!(noop.state.current(), TaskState::Done);
        assert_eq!(compute.state.current(), TaskState::Done);
        // The compute task must have spent its virtual 5 seconds.
        let exec = fx.metrics.scalar_values("task.exec_secs");
        assert!(exec.iter().any(|v| *v >= 4.5), "exec times {exec:?}");
        assert_eq!(fx.scheduler.outstanding_slots(), 0);
    }

    #[test]
    fn task_without_pilot_fails() {
        let fx = fixture(PlatformId::Local, 1, 10_000.0);
        let t = TaskRecord::new(
            "task.nopilot".into(),
            TaskDescription::new("t"),
            PlatformId::Local,
            Arc::clone(&fx.clock),
        );
        fx.executor.spawn_task(Arc::clone(&t), None);
        fx.executor.join_all();
        assert_eq!(t.state.current(), TaskState::Failed);
        assert!(t.state.error().unwrap().contains("pilot"));
    }

    #[test]
    fn inference_client_records_response_breakdown() {
        let fx = fixture(PlatformId::Local, 2, 2000.0);
        let svc = service_record(&fx, "noop-0", ModelSpec::noop(), PlatformId::Local);
        fx.executor
            .spawn_service(Arc::clone(&svc), Some(Arc::clone(&fx.scheduler)));

        let client = TaskRecord::new(
            "task.client".into(),
            TaskDescription::new("client")
                .kind(TaskKind::inference_client("noop-0", 10))
                .after_service("noop-0"),
            PlatformId::Local,
            Arc::clone(&fx.clock),
        );
        fx.executor
            .spawn_task(Arc::clone(&client), Some(Arc::clone(&fx.scheduler)));
        client
            .state
            .wait_until(|s| s.is_final(), Duration::from_secs(60))
            .unwrap();
        assert_eq!(client.state.current(), TaskState::Done);
        assert_eq!(fx.metrics.response_count(), 10);
        let summaries = fx.metrics.response_summaries();
        // NOOP: communication dominates inference (which is zero).
        assert!(summaries["communication"].mean > summaries["inference"].mean);
        svc.request_stop();
        fx.executor.join_all();
    }

    #[test]
    fn inference_client_selects_services_by_model() {
        let fx = fixture(PlatformId::Local, 2, 2000.0);
        let a = service_record(&fx, "noop-a", ModelSpec::noop(), PlatformId::Local);
        let b = service_record(&fx, "noop-b", ModelSpec::noop(), PlatformId::Local);
        fx.executor
            .spawn_service(Arc::clone(&a), Some(Arc::clone(&fx.scheduler)));
        fx.executor
            .spawn_service(Arc::clone(&b), Some(Arc::clone(&fx.scheduler)));
        a.state
            .wait_until(|s| s == ServiceState::Ready, Duration::from_secs(30))
            .unwrap();
        b.state
            .wait_until(|s| s == ServiceState::Ready, Duration::from_secs(30))
            .unwrap();

        let entries = fx
            .executor
            .resolve_targets(&ServiceSelector::ByModel("noop".into()))
            .unwrap();
        assert_eq!(entries.len(), 2);
        let any = fx.executor.resolve_targets(&ServiceSelector::Any).unwrap();
        assert_eq!(any.len(), 2);

        a.request_stop();
        b.request_stop();
        fx.executor.join_all();
    }

    #[test]
    fn task_evicted_by_node_failure_retries_and_completes() {
        let fx = fixture(PlatformId::Local, 2, 1000.0);
        let task = TaskRecord::new(
            "task.retry".into(),
            TaskDescription::new("retry")
                .kind(TaskKind::compute_secs(60.0))
                .cores(8)
                .max_retries(2),
            PlatformId::Local,
            Arc::clone(&fx.clock),
        );
        fx.executor
            .spawn_task(Arc::clone(&task), Some(Arc::clone(&fx.scheduler)));
        task.state
            .wait_until(|s| s == TaskState::Executing, Duration::from_secs(10))
            .unwrap();
        let node = task.slot.lock().as_ref().unwrap().node_index();
        fx.scheduler.allocation().fail_node(node).unwrap();
        task.state
            .wait_until(|s| s == TaskState::Done, Duration::from_secs(60))
            .unwrap();
        fx.executor.join_all();
        assert_eq!(
            task.retries.load(Ordering::Relaxed),
            1,
            "one eviction, one retry"
        );
        assert_eq!(fx.metrics.scalar_values("task.retries").len(), 1);
        assert_eq!(fx.scheduler.outstanding_slots(), 0);
        // The replacement attempt must have avoided the failed node.
        let placed = task.slot.lock().as_ref().unwrap().node_index();
        assert_ne!(placed, node);
    }

    #[test]
    fn eviction_without_retry_budget_fails_the_task() {
        let fx = fixture(PlatformId::Local, 1, 1000.0);
        let task = TaskRecord::new(
            "task.noretry".into(),
            TaskDescription::new("noretry")
                .kind(TaskKind::compute_secs(60.0))
                .cores(8),
            PlatformId::Local,
            Arc::clone(&fx.clock),
        );
        fx.executor
            .spawn_task(Arc::clone(&task), Some(Arc::clone(&fx.scheduler)));
        task.state
            .wait_until(|s| s == TaskState::Executing, Duration::from_secs(10))
            .unwrap();
        let node = task.slot.lock().as_ref().unwrap().node_index();
        fx.scheduler.allocation().fail_node(node).unwrap();
        let _ = task
            .state
            .wait_until(|s| s.is_final(), Duration::from_secs(60));
        fx.executor.join_all();
        assert_eq!(task.state.current(), TaskState::Failed);
        assert!(
            task.state.error().unwrap().contains("failed"),
            "error must name the node failure: {:?}",
            task.state.error()
        );
        assert_eq!(task.retries.load(Ordering::Relaxed), 0);
        assert_eq!(fx.scheduler.outstanding_slots(), 0);
    }
}
