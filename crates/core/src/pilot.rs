//! The pilot manager: acquiring platform resources for the session.
//!
//! A pilot decouples resource acquisition from task/service execution: the session
//! submits a [`crate::describe::PilotDescription`], the pilot manager obtains an
//! allocation from the platform's batch system (modelling queue wait if requested), and
//! the allocation then backs a [`crate::scheduler::Scheduler`] onto which tasks and
//! services are placed.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use hpcml_platform::batch::{AllocationRequest, BatchSystem};
use hpcml_platform::PlatformId;
use hpcml_sim::clock::SharedClock;

use crate::error::RuntimeError;
use crate::records::PilotRecord;
use crate::states::PilotState;

/// Manages pilots across one or more platforms.
pub struct PilotManager {
    clock: SharedClock,
    seed: u64,
    batch_systems: Mutex<BTreeMap<String, Arc<BatchSystem>>>,
}

impl std::fmt::Debug for PilotManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PilotManager")
            .field(
                "platforms",
                &self
                    .batch_systems
                    .lock()
                    .keys()
                    .cloned()
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl PilotManager {
    /// Create a pilot manager.
    pub fn new(clock: SharedClock, seed: u64) -> Self {
        PilotManager {
            clock,
            seed,
            batch_systems: Mutex::new(BTreeMap::new()),
        }
    }

    /// The batch system for `platform`, creating it lazily.
    pub fn batch_system(&self, platform: PlatformId) -> Arc<BatchSystem> {
        let mut map = self.batch_systems.lock();
        let key = platform.short_name().to_string();
        Arc::clone(map.entry(key).or_insert_with(|| {
            Arc::new(BatchSystem::new(
                platform.spec(),
                Arc::clone(&self.clock),
                self.seed,
            ))
        }))
    }

    /// Drive a pilot record from `New` to `Active`, acquiring its allocation.
    pub fn activate(&self, record: &Arc<PilotRecord>) -> Result<(), RuntimeError> {
        let desc = record.description;
        record.state.transition(PilotState::Queued)?;
        let batch = self.batch_system(desc.platform);
        let mut request = AllocationRequest::nodes(desc.nodes)
            .with_walltime_secs(desc.runtime_secs)
            .with_queue_wait(desc.model_queue_wait);
        request.config.shards = desc.allocator_shards;
        match batch.submit(request) {
            Ok(allocation) => {
                *record.allocation.lock() = Some(allocation);
                record.state.transition(PilotState::Active)?;
                Ok(())
            }
            Err(e) => {
                record.state.fail(PilotState::Failed, e.to_string());
                Err(RuntimeError::Batch(e))
            }
        }
    }

    /// Resize an active pilot to `target` nodes. Growing charges fresh nodes
    /// against the platform's free pool and appends them to the allocation
    /// ([`hpcml_platform::batch::Allocation::expand`]); shrinking retires failed
    /// nodes first, then fully idle ones
    /// ([`hpcml_platform::batch::Allocation::shrink`]), shedding the retired count
    /// from the pool. Returns the number of attached nodes after the resize.
    pub fn resize(&self, record: &Arc<PilotRecord>, target: usize) -> Result<usize, RuntimeError> {
        if record.state.current() != PilotState::Active {
            return Err(RuntimeError::InvalidState(format!(
                "cannot resize a pilot in state {:?}",
                record.state.current()
            )));
        }
        let alloc =
            record.allocation.lock().clone().ok_or_else(|| {
                RuntimeError::InvalidState("pilot active without allocation".into())
            })?;
        let batch = self.batch_system(record.description.platform);
        let attached = alloc.attached_nodes();
        if target > attached {
            let n = target - attached;
            batch.grow(n).map_err(RuntimeError::Batch)?;
            if let Err(e) = alloc.expand(n) {
                // The allocation refused the new nodes (e.g. a concurrent resize):
                // return the charge to the free pool before surfacing the error.
                batch.shed(n);
                return Err(RuntimeError::Resource(e));
            }
        } else if target < attached {
            let retired = alloc
                .shrink(attached - target)
                .map_err(RuntimeError::Resource)?;
            batch.shed(retired.len());
        }
        Ok(alloc.attached_nodes())
    }

    /// Terminate an active pilot, releasing its nodes back to the platform.
    pub fn terminate(&self, record: &Arc<PilotRecord>) -> Result<(), RuntimeError> {
        let allocation = record.allocation.lock().clone();
        if let Some(alloc) = allocation {
            self.batch_system(record.description.platform)
                .release(&alloc);
        }
        if !record.state.current().is_final() {
            record.state.transition(PilotState::Done)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::PilotDescription;
    use hpcml_sim::clock::ClockSpec;

    fn manager() -> PilotManager {
        PilotManager::new(ClockSpec::scaled(10_000.0).build(), 11)
    }

    #[test]
    fn activate_and_terminate_pilot() {
        let pm = manager();
        let record = PilotRecord::new(
            "pilot.000000".into(),
            PilotDescription::new(PlatformId::Delta).nodes(4),
            ClockSpec::Manual.build(),
        );
        pm.activate(&record).unwrap();
        assert_eq!(record.state.current(), PilotState::Active);
        let alloc = record.allocation.lock().clone().unwrap();
        assert_eq!(alloc.num_nodes(), 4);
        assert_eq!(pm.batch_system(PlatformId::Delta).nodes_in_use(), 4);
        pm.terminate(&record).unwrap();
        assert_eq!(record.state.current(), PilotState::Done);
        assert_eq!(pm.batch_system(PlatformId::Delta).nodes_in_use(), 0);
    }

    #[test]
    fn oversized_pilot_fails() {
        let pm = manager();
        let record = PilotRecord::new(
            "pilot.000001".into(),
            PilotDescription::new(PlatformId::Local).nodes(1000),
            ClockSpec::Manual.build(),
        );
        let err = pm.activate(&record).unwrap_err();
        assert!(matches!(err, RuntimeError::Batch(_)));
        assert_eq!(record.state.current(), PilotState::Failed);
        assert!(record.state.error().unwrap().contains("nodes"));
        // Terminating a failed pilot is harmless.
        pm.terminate(&record).unwrap();
        assert_eq!(record.state.current(), PilotState::Failed);
    }

    #[test]
    fn batch_systems_are_shared_per_platform() {
        let pm = manager();
        let a = pm.batch_system(PlatformId::Frontier);
        let b = pm.batch_system(PlatformId::Frontier);
        assert!(Arc::ptr_eq(&a, &b));
        let c = pm.batch_system(PlatformId::Delta);
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(format!("{pm:?}").contains("frontier"));
    }

    #[test]
    fn queue_wait_modelled_when_requested() {
        let clock = ClockSpec::scaled(1_000_000.0).build();
        let pm = PilotManager::new(Arc::clone(&clock), 13);
        let record = PilotRecord::new(
            "pilot.000002".into(),
            PilotDescription::new(PlatformId::Frontier)
                .nodes(2)
                .with_queue_wait(true),
            Arc::clone(&clock),
        );
        pm.activate(&record).unwrap();
        let alloc = record.allocation.lock().clone().unwrap();
        assert!(alloc.queue_wait_secs() > 0.0);
    }
}
